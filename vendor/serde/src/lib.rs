//! A minimal, dependency-free stand-in for `serde`, vendored so the
//! workspace builds in fully offline environments.
//!
//! The data model is a JSON value tree ([`Value`]): [`Serialize`] renders a
//! type into a [`Value`], [`Deserialize`] rebuilds a type from one. The
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros (re-exported
//! from `serde_derive`) cover plain structs and externally-tagged enums,
//! which is the full surface this workspace uses. Rendering values to JSON
//! text and parsing them back lives in the sibling `serde_json` shim.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b || (a.is_nan() && b.is_nan()),
            // Mixed integer representations of the same number are equal.
            (Number::U64(a), Number::I64(b)) | (Number::I64(b), Number::U64(a)) => {
                i64::try_from(*a).is_ok_and(|a| a == *b)
            }
            _ => false,
        }
    }
}

/// A JSON value. Object keys keep insertion order (like `serde_json` with
/// `preserve_order`), so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key/value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as ordered object fields, if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

/// A deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: extracts and deserializes field `key` of a struct.
/// Missing keys deserialize from `null` so `Option` fields default to
/// `None`.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| DeError::new(format!("field `{key}`: {e}")))
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Number(Number::I64(v))
                } else {
                    Value::Number(Number::U64(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U64(*self as u64))
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| DeError::new("expected usize"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_i64()
            .and_then(|n| isize::try_from(n).ok())
            .ok_or_else(|| DeError::new("expected isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected duration object"))?;
        let secs: u64 = field(obj, "secs")?;
        let nanos: u32 = field(obj, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
