//! A minimal, dependency-free stand-in for `proptest`, vendored so the
//! workspace's property tests run in fully offline environments.
//!
//! Each `proptest!` test runs its body against `cases` deterministic
//! pseudo-random inputs (seeded from the test's name, so failures are
//! stable across runs). There is no shrinking: a failing case reports its
//! case number and the generated inputs' `Debug` form where available.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift* PRNG used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from `name` (stable across runs and platforms).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, mixed so short names diverge.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Object-safe strategy facade so heterogeneous strategies can be boxed
/// (the combinator methods on [`Strategy`] make it non-object-safe).
pub trait StrategyObj<T> {
    /// Generates one value.
    fn gen_boxed(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn gen_boxed(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// Boxes a strategy for use in [`Union`] (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn StrategyObj<S::Value>> {
    Box::new(s)
}

/// `prop_map` adapter.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn StrategyObj<T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be nonempty.
    pub fn new(arms: Vec<Box<dyn StrategyObj<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_boxed(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Types with a canonical random generator (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward small magnitudes half the time: uniform
                // 64-bit values almost never exercise carry/boundary-free
                // paths, and real proptest biases similarly.
                let raw = rng.next_u64();
                if raw & 1 == 0 {
                    (raw >> 1) as $t
                } else {
                    (rng.below(256)) as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated strings readable.
        char::from_u32(0x20 + (rng.below(0x5f)) as u32).unwrap_or('?')
    }
}

/// `any::<T>()` strategy.
#[derive(Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary + Debug> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary + Debug>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace (collection and sample strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Size bounds for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }
        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }
        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Generates `Vec`s of `elem` with a size drawn from `size`.
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// A strategy for vectors of `elem` values.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.elem.gen_value(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// An index into a collection of as-yet-unknown size.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Projects onto `[0, len)`; `len` must be nonzero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// A failed or rejected test case (mirrors proptest's type so bodies can
/// `return Err(TestCaseError::fail(..))`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the message explains why.
    Fail(String),
    /// The generated case is invalid and should not count.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property-test functions (see crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                let __guard = $crate::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                // The closure lets bodies use proptest's Result form
                // (`return Err(TestCaseError::fail(..))`); plain bodies
                // fall through to the trailing Ok.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                match __result {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("{e}"),
                }
                ::std::mem::forget(__guard);
            }
        }
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Prints which generated case failed when a property panics.
#[doc(hidden)]
pub struct CaseReporter {
    /// Test name.
    pub test: &'static str,
    /// 0-based case number.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        // Only reached when the case body panicked (success paths
        // `mem::forget` the reporter).
        eprintln!(
            "proptest: {} failed at deterministic case {} (re-run reproduces it)",
            self.test, self.case
        );
    }
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 5u64..=9, n in any::<u8>()) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((5..=9).contains(&b));
            let _ = n;
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(1u8), Just(2), (3u8..10).prop_map(|v| v)],
        ) {
            prop_assert!((1..10).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = super::TestRng::deterministic("seed");
        let mut b = super::TestRng::deterministic("seed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
