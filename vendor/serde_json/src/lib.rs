//! A minimal, dependency-free stand-in for `serde_json`, vendored so the
//! workspace builds in fully offline environments.
//!
//! Provides JSON text rendering ([`to_string`], [`to_string_pretty`]) and
//! parsing ([`from_str`]) over the vendored `serde` shim's [`Value`] data
//! model.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports; the `Result` return
/// mirrors `serde_json`'s signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the value model this shim supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a decimal point on integral floats ("1.0"),
                // matching serde_json's output.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(unit) = indent {
            out.push('\n');
            for _ in 0..d {
                out.push_str(unit);
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // shim's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn round_trip_structures() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn big_u64_precision_survives() {
        let n = u64::MAX;
        let v: Value = from_str(&n.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
