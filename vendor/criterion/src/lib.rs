//! A minimal, dependency-free stand-in for `criterion`, vendored so the
//! workspace's micro-benchmarks run in fully offline environments.
//!
//! Measures wall-clock time per iteration (after a warm-up phase) and
//! prints one line per benchmark:
//!
//! ```text
//! bench pt/branches/encode_100k_branches ... 1.2345 ms/iter (81.0 Melem/s)
//! ```
//!
//! There is no statistical analysis, HTML report, or baseline comparison;
//! the numbers are indicative, which is all the offline harness needs.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-rate unit attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Mean time per iteration from the measurement phase.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `inner`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut inner: R) {
        // Warm-up: run until ~50ms elapses to stabilize caches/branch
        // predictors, and learn how many iterations fit the budget.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(inner());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Measurement: aim for ~200ms of timed work in one batch so
        // per-iteration Instant overhead is amortized (crucial for
        // sub-nanosecond routines).
        let target = 0.2_f64;
        let iters = ((target / per_iter).ceil() as u64).clamp(1, 1_000_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(inner());
        }
        self.elapsed_per_iter = start.elapsed().div_f64(iters as f64);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us/iter", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

fn format_rate(per_iter: Duration, throughput: Option<Throughput>) -> String {
    let Some(tp) = throughput else {
        return String::new();
    };
    let secs = per_iter.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    let (count, unit) = match tp {
        Throughput::Elements(n) => (n as f64, "elem"),
        Throughput::Bytes(n) => (n as f64, "B"),
    };
    let rate = count / secs;
    if rate >= 1e9 {
        format!(" ({:.1} G{unit}/s)", rate / 1e9)
    } else if rate >= 1e6 {
        format!(" ({:.1} M{unit}/s)", rate / 1e6)
    } else if rate >= 1e3 {
        format!(" ({:.1} K{unit}/s)", rate / 1e3)
    } else {
        format!(" ({rate:.1} {unit}/s)")
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {label} ... {}{}",
        format_duration(b.elapsed_per_iter),
        format_rate(b.elapsed_per_iter, throughput)
    );
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-rate reported next to each result.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; mirrors criterion's API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }
}

/// Declares a group-runner function invoking each listed benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
///
/// Honors cargo's bench/test plumbing: under `cargo test` (which passes
/// `--test`), benchmarks are skipped so the suite stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                println!("(criterion shim: skipping benches under test mode)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut measured = Duration::ZERO;
        run_one("self_test", None, |b| {
            // The benched body must cost well over a nanosecond per
            // iteration: `elapsed_per_iter` is truncated to whole
            // nanoseconds, so a sub-ns closure can legitimately measure
            // zero and turn this self-test flaky.
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i).wrapping_mul(3));
                }
                acc
            });
            measured = b.elapsed_per_iter;
        });
        assert!(measured > Duration::ZERO);
    }

    #[test]
    fn formatting_covers_scales() {
        assert!(format_duration(Duration::from_nanos(5)).contains("ns/iter"));
        assert!(format_duration(Duration::from_micros(5)).contains("us/iter"));
        assert!(format_duration(Duration::from_millis(5)).contains("ms/iter"));
        let rate = format_rate(Duration::from_nanos(10), Some(Throughput::Elements(100)));
        assert!(rate.contains("elem/s"), "{rate}");
    }
}
