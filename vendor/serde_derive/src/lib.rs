//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! The input grammar is deliberately small — exactly what this workspace
//! derives on: non-generic structs (named, tuple, or unit) and non-generic
//! enums whose variants are unit, tuple, or struct-like. Enums use serde's
//! externally-tagged representation (`"Variant"`, `{"Variant": ...}`).
//! Parsing walks the raw `TokenStream` (no `syn`/`quote`, which are
//! unavailable offline); generation builds Rust source as a string and
//! re-parses it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple arity.
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc: skip the parenthesized scope.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses named fields `{ attrs vis name: Type, ... }` into field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!("serde_derive: expected field name, got {:?}", tokens.get(i));
        };
        fields.push(name.to_string());
        // Skip past the type: everything up to a top-level comma. Generic
        // angle brackets never contain commas at punct-depth 0 in the
        // types this shim supports (e.g. `Vec<u8>`), except multi-param
        // generics — track `<`/`>` depth to be safe.
        i += 2; // name + ':'
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts tuple fields in `( Type, Type, ... )`.
fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        arity += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    arity
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types (deriving on `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_arity(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = tokens.get(i) else {
                panic!("serde_derive: expected enum body");
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body_tokens.len() {
                j = skip_attrs_and_vis(&body_tokens, j);
                let Some(TokenTree::Ident(vname)) = body_tokens.get(j) else {
                    panic!(
                        "serde_derive: expected variant name, got {:?}",
                        body_tokens.get(j)
                    );
                };
                let vname = vname.to_string();
                j += 1;
                let fields = match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Fields::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        Fields::Tuple(parse_tuple_arity(g))
                    }
                    _ => Fields::Unit,
                };
                // Discriminant values (`Variant = 3`) are unsupported.
                if matches!(body_tokens.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    panic!("serde_derive shim: explicit discriminants unsupported on `{name}`");
                }
                if matches!(body_tokens.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive on `{other}`"),
    }
}

/// `#[derive(Serialize)]`: renders the type into a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n"
            ));
            out.push_str(&serialize_fields_expr("self", fields, None));
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            {name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            pairs.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n    }\n}\n");
        }
    }
    out.parse().expect("serde_derive: generated code parses")
}

fn serialize_fields_expr(receiver: &str, fields: &Fields, _variant: Option<&str>) -> String {
    match fields {
        Fields::Unit => "        ::serde::Value::Null\n".to_string(),
        Fields::Named(fs) => {
            let pairs: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "            (\"{f}\".to_string(), ::serde::Serialize::to_value(&{receiver}.{f})),"
                    )
                })
                .collect();
            format!(
                "        ::serde::Value::Object(vec![\n{}\n        ])\n",
                pairs.join("\n")
            )
        }
        Fields::Tuple(1) => {
            format!("        ::serde::Serialize::to_value(&{receiver}.0)\n")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&{receiver}.{k})"))
                .collect();
            format!(
                "        ::serde::Value::Array(vec![{}])\n",
                elems.join(", ")
            )
        }
    }
}

/// `#[derive(Deserialize)]`: rebuilds the type from a `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            match fields {
                Fields::Unit => out.push_str(&format!("        let _ = v;\n        Ok({name})\n")),
                Fields::Named(fs) => {
                    out.push_str(&format!(
                        "        let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n        Ok({name} {{\n"
                    ));
                    for f in fs {
                        out.push_str(&format!(
                            "            {f}: ::serde::field(obj, \"{f}\")?,\n"
                        ));
                    }
                    out.push_str("        })\n");
                }
                Fields::Tuple(1) => out.push_str(&format!(
                    "        Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                )),
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "        let arr = v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n        if arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}\")); }}\n        Ok({name}(\n"
                    ));
                    for k in 0..*n {
                        out.push_str(&format!(
                            "            ::serde::Deserialize::from_value(&arr[{k}])?,\n"
                        ));
                    }
                    out.push_str("        ))\n");
                }
            }
            out.push_str("    }\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        if let Some(s) = v.as_str() {{\n            return match s {{\n"
            ));
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!("                \"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            out.push_str(&format!(
                "                other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n            }};\n        }}\n"
            ));
            out.push_str(&format!(
                "        let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected string or object for {name}\"))?;\n        let (tag, inner) = obj.first().ok_or_else(|| ::serde::DeError::new(\"empty object for {name}\"))?;\n        match tag.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            \"{vn}\" => {{ let _ = inner; Ok({name}::{vn}) }}\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            \"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&arr[{k}])?")
                            })
                            .collect();
                        out.push_str(&format!(
                            "            \"{vn}\" => {{\n                let arr = inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n                if arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\")); }}\n                Ok({name}::{vn}({}))\n            }}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(iobj, \"{f}\")?"))
                            .collect();
                        out.push_str(&format!(
                            "            \"{vn}\" => {{\n                let iobj = inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n                Ok({name}::{vn} {{ {} }})\n            }}\n",
                            pairs.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "            other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n        }}\n    }}\n}}\n"
            ));
        }
    }
    out.parse().expect("serde_derive: generated code parses")
}
