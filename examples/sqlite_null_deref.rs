//! Debugging a Table-1 workload: the SQLite-7be932d NULL-pointer
//! dereference, reproduced through ER's full iterative loop.
//!
//! This failure needs data-value recording: the first shepherded run stalls
//! on symbolic-table constraints, ER selects key data values, instruments
//! the program with `ptwrite`, and finishes on a later reoccurrence —
//! exactly the paper's §3.3 workflow.
//!
//! Run with: `cargo run --release --example sqlite_null_deref`

use er::core::reconstruct::{Outcome, Reconstructor};
use er::workloads::{by_name, Scale};

fn main() {
    let workload = by_name("SQLite-7be932d").expect("registered workload");
    println!(
        "workload: {} ({}) — {}",
        workload.name, workload.app, workload.bug_type
    );

    let deployment = workload.deployment(Scale::TEST);
    let report = Reconstructor::new(workload.er_config()).reconstruct(&deployment);

    println!("\niterations:");
    for it in &report.iterations {
        println!(
            "  occurrence {} (production run {}): {} instrs, trace {} B, symbex {:?}",
            it.occurrence, it.run_index, it.instr_count, it.trace_bytes, it.symbex_wall
        );
        match &it.stalled {
            Some(reason) => {
                println!("    stalled: {reason}");
                println!(
                    "    selected {} new ptwrite site(s), recording {} B/run: {:?}",
                    it.sites_selected, it.recorded_bytes, it.new_sites
                );
            }
            None => println!("    completed and solved"),
        }
    }

    match &report.outcome {
        Outcome::Reproduced(test_case) => {
            println!("\nreproduced after {} occurrence(s)", report.occurrences);
            println!(
                "generated test case: {} input bytes across {} stream(s)",
                test_case.input_bytes(),
                test_case.inputs.len()
            );
            let verdict = test_case.verify(deployment.program());
            println!("replay verification: {verdict:?}");
            assert!(verdict.reproduced());
            // The paper's point about accuracy: the generated input is
            // typically NOT the production input, but it is guaranteed to
            // drive the same control flow into the same failure.
            let expected = &test_case.expected;
            println!(
                "failure identity: {} at {} (call stack depth {})",
                expected.fault,
                expected.at,
                expected.call_stack.len()
            );
        }
        Outcome::GaveUp(reason) => panic!("reconstruction failed: {reason:?}"),
    }
}
