//! Reproducing a multithreaded production failure: the
//! Memcached-2019-11596-style NULL dereference, where a racing eviction
//! thread momentarily nulls a pointer-table slot.
//!
//! Two things have to line up for this crash: the *input* (the lookup key
//! must alias the evicted slot) and the *schedule* (the lookup must land in
//! the eviction window). ER reconstructs both — the input via shepherded
//! symbolic execution, the interleaving via the PT-style per-chunk
//! thread-resume packets (paper §3.4).
//!
//! Run with: `cargo run --release --example race_reproduction`

use er::core::reconstruct::{Outcome, Reconstructor};
use er::minilang::interp::{Machine, RunOutcome};
use er::workloads::{by_name, Scale};

fn main() {
    let workload = by_name("Memcached-2019-11596").expect("registered workload");
    println!(
        "workload: {} ({}) — {}, multithreaded: {}",
        workload.name, workload.app, workload.bug_type, workload.multithreaded
    );

    let deployment = workload.deployment(Scale::TEST);
    let report = Reconstructor::new(workload.er_config()).reconstruct(&deployment);

    let Outcome::Reproduced(test_case) = &report.outcome else {
        panic!("reconstruction failed: {:?}", report.outcome);
    };
    println!(
        "reproduced after {} occurrence(s); schedule: quantum {} seed {}",
        report.occurrences, test_case.sched.quantum, test_case.sched.seed
    );

    // The same inputs under a *different* schedule usually do not crash —
    // the race needs its interleaving. Count how many schedules reproduce.
    let program = deployment.program();
    let mut crashes = 0;
    let total = 20;
    for seed in 0..total {
        // Coarser quanta let the lookup finish before the eviction window
        // even opens; the race disappears for most schedules.
        let sched = er::minilang::interp::SchedConfig {
            quantum: 6_000,
            seed: seed + 1000,
            ..test_case.sched
        };
        let outcome = Machine::new(program, test_case.env())
            .with_sched(sched)
            .run();
        if matches!(outcome.outcome, RunOutcome::Failure(_)) {
            crashes += 1;
        }
    }
    println!(
        "same input under {total} coarser schedules: {crashes} crash(es) — the schedule matters"
    );
    assert!(crashes < total, "some schedule must dodge the race");

    // Under the reconstructed schedule it must crash, identically.
    let verdict = test_case.verify(program);
    println!("replay under the reconstructed schedule: {verdict:?}");
    assert!(verdict.reproduced());
}
