//! Using ER as a substrate for other reliability tools (paper §5.4):
//! MIMIC-style invariant-based failure localization on the mini `od`.
//!
//! The tool mines likely invariants from passing runs; when production
//! fails, ER reconstructs an executable failing input, and the localizer
//! reports which invariants it violates — the same verdicts the real
//! failing input produces, without ever shipping that input off the
//! production machine.
//!
//! Run with: `cargo run --release --example failure_localization`

use er::core::deploy::Deployment;
use er::core::reconstruct::{Outcome, Reconstructor};
use er::invariants::{observe, observe_with_sched, InvariantSet, MineOptions};
use er::minilang::env::Env;
use er::minilang::interp::RunOutcome;
use er::workloads::coreutils;

fn clone_env(env: &Env) -> Env {
    let mut out = Env::new();
    for s in env.sources() {
        out.push_input(s, env.stream_data(s).unwrap_or(&[]));
    }
    out
}

fn main() {
    let program = coreutils::od_program();

    // 1. Mine likely invariants from passing executions (offline, in-house;
    //    the paper uses existing integration/unit tests for this).
    let passing: Vec<_> = coreutils::od_passing_envs()
        .into_iter()
        .map(|env| {
            let (outcome, obs) = observe(&program, env);
            assert!(matches!(outcome, RunOutcome::Completed));
            obs
        })
        .collect();
    let invariants = InvariantSet::mine_with_options(
        &program,
        &passing,
        MineOptions {
            include_ranges: false,
        },
    );
    println!(
        "mined {} likely invariants from 4 passing runs",
        invariants.len()
    );

    // 2. Production hits the bug (`od -j <skip>` with skip > length). ER
    //    reconstructs an executable failing input from traces alone.
    let deployment = Deployment::new(program.clone(), |_| clone_env(&coreutils::od_failing_env()));
    let report = Reconstructor::default().reconstruct(&deployment);
    let Outcome::Reproduced(test_case) = &report.outcome else {
        panic!("reconstruction failed: {:?}", report.outcome);
    };
    println!(
        "ER reproduced the od failure in {} occurrence(s)",
        report.occurrences
    );

    // 3. Feed the reconstructed execution to the localizer.
    let (outcome, obs) = observe_with_sched(&program, test_case.env(), test_case.sched);
    assert!(matches!(outcome, RunOutcome::Failure(_)));
    let violations = invariants.violations(&obs);
    println!("\nroot-cause candidates (violated invariants):");
    for v in &violations {
        println!("  {v}");
    }
    assert!(
        violations
            .iter()
            .any(|v| v.func_name == "dump" && v.invariant.to_string() == "v1 <= v0"),
        "the skip <= length invariant is the root cause"
    );
    println!("\n=> `dump` was entered with skip > length: the wrapped-count bug.");
}
