//! Quickstart: reproduce a production failure end-to-end with ER.
//!
//! This walks the paper's Fig. 2 pipeline on a small program: a deployment
//! runs under always-on PT-style tracing, a failure occurs, shepherded
//! symbolic execution follows the shipped trace, and ER emits a concrete,
//! replay-verified test case.
//!
//! Run with: `cargo run --release --example quickstart`

use er::core::deploy::Deployment;
use er::core::reconstruct::{ErConfig, Outcome, Reconstructor};
use er::minilang::compile;
use er::minilang::env::Env;

fn main() {
    // 1. The "application": crashes when the two halves of a request id
    //    multiply to a magic value. The failure depends on input data, so a
    //    crash dump alone would not tell you which request did it.
    let program = compile(
        r#"
        fn checksum(hi: u32, lo: u32) -> u32 {
            return hi * 31 + lo;
        }

        fn handle(request: u32) {
            let hi: u32 = request >> 8;
            let lo: u32 = request & 255;
            if checksum(hi, lo) == 297 {
                abort("request corrupted the session table");
            }
            print(request);
        }

        fn main() {
            let request: u32 = input_u32(0);
            handle(request);
        }
        "#,
    )
    .expect("the demo program compiles");

    // 2. The "production deployment": every run receives a different
    //    request. Run 2322 will turn out to be fatal, but ER does not know
    //    that — it just watches traces.
    let deployment = Deployment::new(program, |run| {
        let mut env = Env::new();
        let request = (run as u32) % 65_536; // request 0x0912 = 2322 is fatal
        env.push_input(0, &request.to_le_bytes());
        env
    });

    // 3. Reconstruct. ER waits for the failure, ships the trace to
    //    shepherded symbolic execution, and solves for a failing input.
    let report = Reconstructor::new(ErConfig::default()).reconstruct(&deployment);

    println!(
        "failure observed: {:?}",
        report.target.as_ref().map(|f| f.fault.to_string())
    );
    println!("occurrences consumed: {}", report.occurrences);
    println!("total symbex time: {:?}", report.total_symbex);
    match &report.outcome {
        Outcome::Reproduced(test_case) => {
            println!("reproduced! generated input streams:");
            for (source, bytes) in &test_case.inputs {
                println!("  stream {source}: {bytes:?}");
            }
            // 4. The guarantee: the generated input may differ from the one
            //    production saw, but it replays to the same failure. Verify
            //    it one more time here.
            let verdict = test_case.verify(deployment.program());
            println!("replay verification: {verdict:?}");
            assert!(verdict.reproduced());
        }
        Outcome::GaveUp(reason) => panic!("reconstruction failed: {reason:?}"),
    }
}
