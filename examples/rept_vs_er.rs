//! REPT vs ER on the same crash (the paper's §2 motivation, §5.2
//! comparison): reverse-executing a crash dump loses and corrupts values as
//! the window grows, while ER's iterative reconstruction produces an exact,
//! replayable test case.
//!
//! Run with: `cargo run --release --example rept_vs_er`

use er::baselines::rept::{ConcreteTape, ReptAnalysis};
use er::core::deploy::Deployment;
use er::core::reconstruct::{Outcome, Reconstructor};
use er::minilang::compile;
use er::minilang::env::Env;

fn failing_env() -> Env {
    let mut env = Env::new();
    for i in 0..2_000u32 {
        env.push_input(0, &i.wrapping_mul(2654435761).to_le_bytes());
    }
    env.push_input(0, &110u32.to_le_bytes()); // 110 % 97 == 13: fatal
    env
}

fn main() {
    // A session that digests two thousand requests (overwriting its
    // working set constantly) and then crashes on a bad final request.
    let program = compile(
        r#"
        global RING: [u32; 16];
        fn main() {
            let acc: u32 = 0;
            for i: u32 = 0; i < 2000; i = i + 1 {
                let v: u32 = input_u32(0);
                acc = (acc ^ v) * 2654435761;
                RING[i % 16] = acc;
            }
            let last: u32 = input_u32(0);
            if last % 97 == 13 { abort("bad request"); }
            print(acc);
        }
        "#,
    )
    .expect("compiles");

    // --- REPT: reverse execution from the crash dump. ---
    let tape = ConcreteTape::record(&program, failing_env(), 100_000).expect("single-threaded");
    assert!(tape.faulted);
    println!(
        "crash tape: {} value-defining instructions",
        tape.entries.len()
    );
    for window in [200usize, 2_000, 20_000] {
        let r = ReptAnalysis::default().analyze(&tape, window);
        println!(
            "REPT window {window:>6}: {:5.1}% correct, {:4.1}% wrong, {:4.1}% unknown",
            r.correct_rate() * 100.0,
            100.0 * r.wrong as f64 / r.total.max(1) as f64,
            100.0 * r.unknown as f64 / r.total.max(1) as f64,
        );
    }
    println!("(and REPT's output is not executable: no replay, no dynamic tools)\n");

    // --- ER: iterative reconstruction to a concrete test case. ---
    let deployment = Deployment::new(program.clone(), |_| failing_env());
    let report = Reconstructor::default().reconstruct(&deployment);
    let Outcome::Reproduced(tc) = &report.outcome else {
        panic!("ER failed: {:?}", report.outcome);
    };
    println!(
        "ER: reproduced in {} occurrence(s); generated {} input bytes",
        report.occurrences,
        tc.input_bytes()
    );
    let verdict = tc.verify(&program);
    println!("ER replay verification: {verdict:?}");
    assert!(verdict.reproduced());
    // The final request in the generated input satisfies the crash
    // condition even though it need not equal the production value.
    let bytes = &tc.inputs[0].1;
    let last = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    println!("generated final request: {last} (mod 97 = {})", last % 97);
    assert_eq!(last % 97, 13);
}
