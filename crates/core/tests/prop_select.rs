//! Property tests for constraint-graph analysis and key data value
//! selection over randomly shaped write chains.

use er_core::graph::{ConstraintGraph, Deducibility};
use er_core::select::{self, SelectionInput};
use er_minilang::ir::{BlockId, FuncId, InstrId};
use er_solver::expr::{BvOp, ExprPool, ExprRef};
use proptest::prelude::*;
use std::collections::HashMap;

fn site(i: usize) -> InstrId {
    InstrId {
        func: FuncId(0),
        block: BlockId(0),
        index: i,
    }
}

/// Builds a pool with `n_chains` write chains of the given lengths over
/// tables of the given sizes, all indices derived from registered inputs.
#[allow(clippy::type_complexity)]
fn build(
    chains: &[(u64, usize)], // (table len, chain length)
) -> (
    ExprPool,
    HashMap<ExprRef, InstrId>,
    HashMap<InstrId, u64>,
    Vec<ExprRef>,
) {
    let mut pool = ExprPool::new();
    let mut origins = HashMap::new();
    let mut counts = HashMap::new();
    let mut inputs = Vec::new();
    let mut next = 0usize;
    for (c, &(len, depth)) in chains.iter().enumerate() {
        let mut arr = pool.array(format!("T{c}"), len, 8, None);
        for d in 0..depth {
            let v = pool.var(format!("k{c}_{d}"), 64);
            origins.insert(v, site(next));
            counts.insert(site(next), 1);
            next += 1;
            inputs.push(v);
            let eight = pool.bv_const(8, 64);
            let idx = pool.bin(BvOp::Mul, v, eight);
            origins.insert(idx, site(next));
            counts.insert(site(next), 1);
            next += 1;
            let val = pool.bv_const(d as u64, 8);
            arr = pool.write(arr, idx, val);
        }
        // One read through the chain.
        let p = pool.var(format!("p{c}"), 64);
        origins.insert(p, site(next));
        counts.insert(site(next), 1);
        next += 1;
        let r = pool.read(arr, p);
        if pool.as_const(r).is_none() {
            origins.insert(r, site(next));
            counts.insert(site(next), 1);
            next += 1;
        }
        inputs.push(p);
    }
    (pool, origins, counts, inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The recording set never costs more than naively recording the whole
    /// bottleneck set, and it renders every bottleneck element deducible.
    #[test]
    fn recording_set_is_cheaper_and_sufficient(
        chains in prop::collection::vec((4u64..64, 1usize..6), 1..4),
    ) {
        let (pool, origins, counts, _) = build(&chains);
        let graph = ConstraintGraph::analyze(&pool);
        prop_assert!(graph.has_chains());
        prop_assert!(!graph.bottleneck.is_empty());
        let input = SelectionInput {
            pool: &pool,
            origins: &origins,
            site_counts: &counts,
        };
        let set = select::select_key_values(&graph, &input);
        prop_assert!(!set.is_empty());

        // Cost bound: paper's goal is to beat naive bottleneck recording.
        let naive: u64 = graph
            .bottleneck
            .iter()
            .filter_map(|b| {
                let s = origins.get(&b.expr)?;
                Some(b.size_bytes * counts.get(s).copied().unwrap_or(1))
            })
            .sum();
        if naive > 0 {
            prop_assert!(
                set.total_cost() <= naive,
                "recording {} must not exceed naive {naive}",
                set.total_cost()
            );
        }

        // Sufficiency: given the recorded expressions, every bottleneck
        // element is deducible.
        let recorded: Vec<ExprRef> = set.sites.iter().map(|s| s.expr).collect();
        let mut ded = Deducibility::new(&pool, recorded);
        for b in &graph.bottleneck {
            prop_assert!(
                ded.deducible(b.expr),
                "bottleneck element {} must be deducible",
                pool.display(b.expr)
            );
        }
    }

    /// The longest chain reported really is the deepest, and the largest
    /// object chain really has the largest object.
    #[test]
    fn chain_extremes_are_correct(
        chains in prop::collection::vec((4u64..64, 1usize..6), 1..4),
    ) {
        let (pool, _, _, _) = build(&chains);
        let graph = ConstraintGraph::analyze(&pool);
        let longest = graph.longest_chain.as_ref().unwrap();
        let max_depth = chains.iter().map(|&(_, d)| d as u64).max().unwrap();
        prop_assert_eq!(longest.len, max_depth);
        let largest = graph.largest_object_chain.as_ref().unwrap();
        let max_obj = chains.iter().map(|&(l, _)| l).max().unwrap();
        prop_assert_eq!(largest.object_bytes, max_obj);
    }
}

#[test]
fn largest_object_chain_prefers_a_different_base_on_ties() {
    // Two equal-size tables: the two-chain heuristic must cover both.
    let (pool, _, _, _) = build(&[(32, 4), (32, 2)]);
    let graph = ConstraintGraph::analyze(&pool);
    let longest = graph.longest_chain.as_ref().unwrap();
    let largest = graph.largest_object_chain.as_ref().unwrap();
    assert_eq!(longest.object_name, "T0", "deeper chain");
    assert_eq!(
        largest.object_name, "T1",
        "tied object size must break toward the other base"
    );
}
