//! Shepherded symbolic execution and final input solving (paper §3.2).
//!
//! The per-instruction trace-following engine lives in [`er_symex`]; this
//! module drives it for ER: decode the shipped trace, follow it, and — when
//! the whole path has been executed — solve the accumulated path constraint
//! for concrete failure-inducing inputs.

use er_minilang::error::Failure;
use er_minilang::ir::Program;
use er_pt::sink::PtTrace;
use er_solver::solve::{Budget, SatResult, Solver, StallReason};
use er_symex::{MachineState, SymConfig, SymMachine, SymRunResult};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A shepherded run plus wall-clock accounting (Table 1's "Symbex Time").
#[derive(Debug)]
pub struct ShepherdReport {
    /// The symbolic run.
    pub run: SymRunResult,
    /// Wall-clock time of the shepherded execution.
    pub wall: Duration,
    /// Decoded event count.
    pub event_count: usize,
}

/// Decodes `trace` and follows it symbolically.
///
/// # Errors
///
/// Returns the trace decoder's error if the byte stream is corrupt.
pub fn shepherd(
    program: &Program,
    trace: &PtTrace,
    failure: Option<&Failure>,
    config: SymConfig,
) -> Result<ShepherdReport, er_pt::DecodeError> {
    let decoded = {
        let _span = er_telemetry::span!("shepherd.decode");
        trace.decode()?
    };
    Ok(shepherd_events(program, &decoded.events, failure, config))
}

/// Follows already-decoded events symbolically.
pub fn shepherd_events(
    program: &Program,
    events: &[er_pt::TraceEvent],
    failure: Option<&Failure>,
    config: SymConfig,
) -> ShepherdReport {
    let _span = er_telemetry::span!("shepherd.symbex");
    let start = Instant::now();
    let run = SymMachine::new(program, config).run(events, failure);
    ShepherdReport {
        run,
        wall: start.elapsed(),
        event_count: events.len(),
    }
}

/// Follows already-decoded events symbolically, resuming from a snapshot
/// taken on an earlier trace of the same program. The caller must have
/// verified the event prefix up to `state.cursor()` is identical and
/// remapped instruction sites if instrumentation changed.
pub fn shepherd_resume(
    program: &Program,
    events: &[er_pt::TraceEvent],
    failure: Option<&Failure>,
    config: SymConfig,
    state: MachineState,
) -> ShepherdReport {
    let _span = er_telemetry::span!("shepherd.symbex");
    let start = Instant::now();
    let run = SymMachine::resume(program, config, state).run(events, failure);
    ShepherdReport {
        run,
        wall: start.elapsed(),
        event_count: events.len(),
    }
}

/// Why final input solving failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveFailure {
    /// The solver stalled on the final query — treated like any other
    /// stall: select more data values and wait for a reoccurrence.
    Stall(StallReason),
    /// The path constraint is unsatisfiable (indicates an engine bug or a
    /// corrupted trace).
    Unsat,
}

/// Solves the run's path constraint (plus failure constraint) and extracts
/// concrete input streams.
///
/// # Errors
///
/// Returns [`SolveFailure`] on a stall or an unsatisfiable path.
pub fn solve_inputs(
    run: &mut SymRunResult,
    budget: &Budget,
) -> Result<Vec<(u32, Vec<u8>)>, SolveFailure> {
    let _span = er_telemetry::span!("shepherd.solve");
    er_solver::cancel::begin_phase(er_solver::cancel::Phase::Solve);
    let assertions: Vec<_> = run
        .path
        .iter()
        .copied()
        .chain(run.failure_constraint)
        .collect();
    let mut solver = Solver::new(&mut run.pool);
    for c in assertions {
        solver.assert(c);
    }
    let model = match solver.check(budget) {
        SatResult::Sat(m) => m,
        SatResult::Unsat => return Err(SolveFailure::Unsat),
        SatResult::Unknown(reason) => return Err(SolveFailure::Stall(reason)),
    };
    let mut streams: HashMap<u32, Vec<u8>> = HashMap::new();
    let mut recs = run.inputs.clone();
    recs.sort_by_key(|r| (r.source, r.offset));
    for rec in recs {
        let v = model.eval(&run.pool, rec.var);
        let stream = streams.entry(rec.source).or_default();
        debug_assert_eq!(stream.len(), rec.offset, "inputs are consumed in order");
        stream.extend_from_slice(&v.to_le_bytes()[..rec.width.bytes() as usize]);
    }
    let mut out: Vec<(u32, Vec<u8>)> = streams.into_iter().collect();
    out.sort_by_key(|(s, _)| *s);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;
    use er_minilang::env::Env;
    use er_minilang::interp::{Machine, RunOutcome};
    use er_pt::sink::{PtConfig, PtSink};
    use er_symex::ShepherdStatus;

    #[test]
    fn shepherd_and_solve_end_to_end() {
        let program = compile(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                let b: u32 = input_u32(0);
                if a * b == 391 {
                    if a < b { abort("factored"); }
                }
            }
            "#,
        )
        .unwrap();
        let mut env = Env::new();
        env.push_input(0, &[17u32.to_le_bytes(), 23u32.to_le_bytes()].concat());
        let report = Machine::with_sink(&program, env, PtSink::new(PtConfig::default())).run();
        let RunOutcome::Failure(f) = report.outcome else {
            panic!("17 * 23 == 391 crashes")
        };
        let trace = report.sink.finish();
        let mut rep = shepherd(&program, &trace, Some(&f), SymConfig::default()).unwrap();
        assert_eq!(rep.run.status, ShepherdStatus::Completed);
        assert!(rep.event_count > 0);
        let inputs = solve_inputs(&mut rep.run, &Budget::default()).unwrap();
        // Verify the solved inputs crash identically.
        let mut env2 = Env::new();
        for (s, b) in &inputs {
            env2.push_input(*s, b);
        }
        let RunOutcome::Failure(f2) = Machine::new(&program, env2).run().outcome else {
            panic!("solved inputs must crash")
        };
        assert!(f2.same_failure(&f));
    }

    #[test]
    fn unsat_reported_when_constraints_contradict() {
        let program = compile(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a == 1 { abort("one"); }
            }
            "#,
        )
        .unwrap();
        let mut env = Env::new();
        env.push_input(0, &1u32.to_le_bytes());
        let report = Machine::with_sink(&program, env, PtSink::new(PtConfig::default())).run();
        let RunOutcome::Failure(f) = report.outcome else {
            panic!()
        };
        let trace = report.sink.finish();
        let mut rep = shepherd(&program, &trace, Some(&f), SymConfig::default()).unwrap();
        // Inject a contradiction.
        let fl = rep.run.pool.bool_const(false);
        rep.run.path.push(fl);
        assert_eq!(
            solve_inputs(&mut rep.run, &Budget::default()),
            Err(SolveFailure::Unsat)
        );
    }
}
