//! The `ptwrite` instrumentation pass (paper §3.3.3 / §4).
//!
//! The original system implements this as a 156-line LLVM pass that inserts
//! `ptwrite` instructions and redeploys the application. Here the pass
//! clones the IR program and inserts [`Instr::PtWrite`] immediately after
//! each selected value-defining instruction. Because insertion shifts the
//! indices of later instructions in the same block, the pass also produces
//! the bidirectional [`InstrId`] maps needed to compare failure identities
//! and accumulate recording sites across iterations in *original* program
//! coordinates.

use er_minilang::ir::{Instr, InstrId, Operand, Program};
use std::collections::HashMap;
use std::fmt;

/// A recording site that does not name a location in the program — the
/// symptom of mixing coordinate spaces (instrumented vs. original) or of
/// selecting against a stale binary. Surfaced as a typed error so callers
/// can degrade (deploy uninstrumented) instead of dying on an index panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentError {
    /// The offending site (original-program coordinates).
    pub site: InstrId,
    /// Which coordinate was out of range.
    pub what: &'static str,
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot instrument {:?}:{:?}[{}]: {}",
            self.site.func, self.site.block, self.site.index, self.what
        )
    }
}

impl std::error::Error for InstrumentError {}

/// An instrumented program plus coordinate maps.
#[derive(Debug, Clone)]
pub struct InstrumentedProgram {
    /// The program with `PtWrite` instructions inserted.
    pub program: Program,
    /// Instrumented id → original id (inserted `PtWrite`s map to `None`
    /// and are absent).
    to_original: HashMap<InstrId, InstrId>,
    /// Original id → instrumented id.
    from_original: HashMap<InstrId, InstrId>,
    /// Sites instrumented (original coordinates).
    pub sites: Vec<InstrId>,
}

impl InstrumentedProgram {
    /// Instruments `program` with `ptwrite` after each of `sites`
    /// (original-program coordinates). Sites without a destination register
    /// are skipped — there is no value to record.
    ///
    /// # Panics
    ///
    /// Panics if any site names a function or block the program does not
    /// have; use [`try_new`](Self::try_new) to get a typed error instead.
    pub fn new(program: &Program, sites: &[InstrId]) -> InstrumentedProgram {
        Self::try_new(program, sites).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`new`](Self::new), but rejects sites outside the program's
    /// function/block bounds with a typed [`InstrumentError`] instead of an
    /// index panic. (A site whose *instruction* index is past the block end
    /// is still silently skipped, matching the dst-less-site rule.)
    pub fn try_new(
        program: &Program,
        sites: &[InstrId],
    ) -> Result<InstrumentedProgram, InstrumentError> {
        if er_telemetry::enabled() {
            er_telemetry::counter!("instrument.rebuilds").incr();
            er_telemetry::counter!("instrument.sites_requested").add(sites.len() as u64);
        }
        let mut program = program.clone();
        let mut to_original = HashMap::new();
        let mut from_original = HashMap::new();
        let mut by_block: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        let mut applied: Vec<InstrId> = Vec::new();
        for site in sites {
            if site.index == InstrId::TERMINATOR {
                continue;
            }
            let func = program
                .funcs
                .get(site.func.0 as usize)
                .ok_or(InstrumentError {
                    site: *site,
                    what: "function index out of range",
                })?;
            if func.blocks.get(site.block.0 as usize).is_none() {
                return Err(InstrumentError {
                    site: *site,
                    what: "block index out of range",
                });
            }
            by_block
                .entry((site.func.0, site.block.0))
                .or_default()
                .push(site.index);
        }
        for ((func, block), mut indices) in by_block {
            indices.sort_unstable();
            indices.dedup();
            let blk = &mut program.funcs[func as usize].blocks[block as usize];
            // Insert from the back so earlier indices stay valid, tracking
            // the shift for the id maps afterwards.
            let mut inserted_at: Vec<usize> = Vec::new();
            for &idx in indices.iter().rev() {
                let Some(instr) = blk.instrs.get(idx) else {
                    continue;
                };
                let Some(dst) = instr.dst() else {
                    continue;
                };
                blk.instrs.insert(
                    idx + 1,
                    Instr::PtWrite {
                        value: Operand::Reg(dst),
                    },
                );
                inserted_at.push(idx);
                applied.push(InstrId {
                    func: er_minilang::ir::FuncId(func),
                    block: er_minilang::ir::BlockId(block),
                    index: idx,
                });
            }
            inserted_at.reverse(); // ascending original indices
                                   // Build the id maps for this block.
            let f = er_minilang::ir::FuncId(func);
            let b = er_minilang::ir::BlockId(block);
            let n_original = blk.instrs.len() - inserted_at.len();
            let mut shift = 0usize;
            let mut next_insert = 0usize;
            for orig_idx in 0..n_original {
                let inst_idx = orig_idx + shift;
                let o = InstrId {
                    func: f,
                    block: b,
                    index: orig_idx,
                };
                let i = InstrId {
                    func: f,
                    block: b,
                    index: inst_idx,
                };
                to_original.insert(i, o);
                from_original.insert(o, i);
                if next_insert < inserted_at.len() && inserted_at[next_insert] == orig_idx {
                    shift += 1;
                    next_insert += 1;
                }
            }
        }
        applied.sort_unstable();
        Ok(InstrumentedProgram {
            program,
            to_original,
            from_original,
            sites: applied,
        })
    }

    /// An identity instrumentation (first ER iteration: control flow only).
    pub fn unmodified(program: &Program) -> InstrumentedProgram {
        InstrumentedProgram {
            program: program.clone(),
            to_original: HashMap::new(),
            from_original: HashMap::new(),
            sites: Vec::new(),
        }
    }

    /// Maps an instrumented-program id back to original coordinates.
    /// Returns `None` only for inserted `PtWrite` instructions.
    pub fn to_original(&self, id: InstrId) -> Option<InstrId> {
        if self.sites.is_empty() {
            return Some(id);
        }
        if id.index == InstrId::TERMINATOR {
            return Some(id);
        }
        if let Some(&o) = self.to_original.get(&id) {
            return Some(o);
        }
        // Blocks never touched keep their ids; touched blocks have every
        // original instruction in the map, so a miss there is a PtWrite.
        let touched = self
            .sites
            .iter()
            .any(|s| s.func == id.func && s.block == id.block);
        (!touched).then_some(id)
    }

    /// Maps an original-program id into instrumented coordinates.
    pub fn from_original(&self, id: InstrId) -> InstrId {
        if id.index == InstrId::TERMINATOR {
            return id;
        }
        self.from_original.get(&id).copied().unwrap_or(id)
    }

    /// Translates a failure recorded against the instrumented program into
    /// original coordinates (for cross-iteration identity).
    pub fn failure_to_original(
        &self,
        failure: &er_minilang::error::Failure,
    ) -> er_minilang::error::Failure {
        let mut f = failure.clone();
        if let Some(o) = self.to_original(f.at) {
            f.at = o;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;
    use er_minilang::env::Env;
    use er_minilang::interp::Machine;
    use er_minilang::ir::{BlockId, FuncId};
    use er_minilang::trace::VecSink;

    fn site(func: u32, block: u32, index: usize) -> InstrId {
        InstrId {
            func: FuncId(func),
            block: BlockId(block),
            index,
        }
    }

    #[test]
    fn inserts_ptwrite_after_site() {
        let p = compile("fn main() { let x: u32 = 1 + 2; let y: u32 = x * 3; print(y); }").unwrap();
        // Record the first instruction's value.
        let inst = InstrumentedProgram::new(&p, &[site(0, 0, 0)]);
        let blk = &inst.program.funcs[0].blocks[0];
        assert!(matches!(blk.instrs[1], Instr::PtWrite { .. }));
        assert_eq!(blk.instrs.len(), p.funcs[0].blocks[0].instrs.len() + 1);
        // Instrumented run emits the value.
        let r = Machine::with_sink(&inst.program, Env::new(), VecSink::new()).run();
        assert_eq!(r.sink.ptwrites(), vec![3]);
    }

    #[test]
    fn id_maps_round_trip() {
        let p = compile("fn main() { let x: u32 = 1 + 2; let y: u32 = x * 3; print(y); }").unwrap();
        let n = p.funcs[0].blocks[0].instrs.len();
        let inst = InstrumentedProgram::new(&p, &[site(0, 0, 0)]);
        for i in 0..n {
            let o = site(0, 0, i);
            let mapped = inst.from_original(o);
            assert_eq!(inst.to_original(mapped), Some(o));
        }
        // Index 0 unshifted; later ones shifted by one.
        assert_eq!(inst.from_original(site(0, 0, 0)), site(0, 0, 0));
        assert_eq!(inst.from_original(site(0, 0, 1)), site(0, 0, 2));
        // The inserted PtWrite has no original.
        assert_eq!(inst.to_original(site(0, 0, 1)), None);
    }

    #[test]
    fn multiple_sites_one_block() {
        let p = compile(
            "fn main() { let a: u32 = 1 + 1; let b: u32 = a + 1; let c: u32 = b + 1; print(c); }",
        )
        .unwrap();
        // Lowering materializes each `let` as a compute + move pair, so
        // index 0 computes `a = 2` and index 2 computes `b = 3`.
        let inst = InstrumentedProgram::new(&p, &[site(0, 0, 0), site(0, 0, 2)]);
        let r = Machine::with_sink(&inst.program, Env::new(), VecSink::new()).run();
        assert_eq!(r.sink.ptwrites(), vec![2, 3]);
        // Maps stay consistent.
        assert_eq!(inst.from_original(site(0, 0, 1)), site(0, 0, 2));
        assert_eq!(inst.from_original(site(0, 0, 2)), site(0, 0, 3));
        assert_eq!(inst.to_original(site(0, 0, 3)), Some(site(0, 0, 2)));
    }

    #[test]
    fn sites_without_destinations_are_skipped() {
        let p = compile("fn main() { print(7); }").unwrap();
        let inst = InstrumentedProgram::new(&p, &[site(0, 0, 0)]);
        assert!(inst.sites.is_empty());
        assert_eq!(
            inst.program.funcs[0].blocks[0].instrs.len(),
            p.funcs[0].blocks[0].instrs.len()
        );
    }

    #[test]
    fn untouched_blocks_map_identically() {
        let p =
            compile("fn main() { let a: u32 = 1 + 1; if a == 2 { print(1); } else { print(0); } }")
                .unwrap();
        let inst = InstrumentedProgram::new(&p, &[site(0, 0, 0)]);
        // Block 1 untouched.
        assert_eq!(inst.to_original(site(0, 1, 0)), Some(site(0, 1, 0)));
        assert_eq!(inst.from_original(site(0, 1, 0)), site(0, 1, 0));
    }

    #[test]
    fn out_of_range_sites_are_typed_errors() {
        let p = compile("fn main() { let x: u32 = 1 + 2; print(x); }").unwrap();
        let err = InstrumentedProgram::try_new(&p, &[site(7, 0, 0)]).unwrap_err();
        assert_eq!(err.what, "function index out of range");
        assert_eq!(err.site, site(7, 0, 0));
        let err = InstrumentedProgram::try_new(&p, &[site(0, 9, 0)]).unwrap_err();
        assert_eq!(err.what, "block index out of range");
        // An in-bounds block with an out-of-range *instruction* index stays
        // a silent skip (same rule as dst-less sites).
        let inst = InstrumentedProgram::try_new(&p, &[site(0, 0, 999)]).unwrap();
        assert!(inst.sites.is_empty());
    }

    #[test]
    fn failure_ids_translate() {
        let src = r#"
            fn main() {
                let a: u32 = 1 + 2;
                abort("crash");
            }
        "#;
        let p = compile(src).unwrap();
        let inst = InstrumentedProgram::new(&p, &[site(0, 0, 0)]);
        let r = Machine::new(&inst.program, Env::new()).run();
        let er_minilang::interp::RunOutcome::Failure(f) = r.outcome else {
            panic!("instrumented abort workload must fail, got {:?}", r.outcome)
        };
        let orig = inst.failure_to_original(&f);
        // The abort shifted by one in the instrumented program.
        assert_eq!(orig.at.index + 1, f.at.index);
    }
}
