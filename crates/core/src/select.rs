//! Key data value selection (paper §3.3.2): from the bottleneck set to a
//! minimal-cost recording set.
//!
//! Each candidate value `E_i` has recording cost
//! `C_i = sizeof(E_i) × Count(E_i)`, where the count is the number of times
//! its defining site executes in the recorded control-flow trace (every
//! execution emits a `ptwrite`). A depth-first search over the constraint
//! graph replaces an element by a cheaper set of descendants whenever the
//! descendants determine it; finally, elements deducible from the rest of
//! the set are dropped (the paper's `V[x]` reduction).

use crate::graph::{children, ConstraintGraph, Deducibility};
use er_minilang::ir::InstrId;
use er_solver::expr::{ExprPool, ExprRef, Node};
use std::collections::{HashMap, HashSet};

/// One site to instrument with `ptwrite`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingSite {
    /// The instruction whose result value is recorded.
    pub site: InstrId,
    /// Bytes per recorded occurrence.
    pub size_bytes: u64,
    /// Dynamic executions of the site in the analyzed trace.
    pub count: u64,
    /// The expression that motivated recording this site.
    pub expr: ExprRef,
}

impl RecordingSite {
    /// Total bytes this site adds to one failing trace.
    pub fn cost(&self) -> u64 {
        self.size_bytes * self.count
    }
}

/// The chosen set of recording sites.
#[derive(Debug, Clone, Default)]
pub struct RecordingSet {
    /// Sites to instrument.
    pub sites: Vec<RecordingSite>,
}

impl RecordingSet {
    /// Total recording cost in bytes per failing run.
    pub fn total_cost(&self) -> u64 {
        self.sites.iter().map(RecordingSite::cost).sum()
    }

    /// The instruction ids to instrument.
    pub fn site_ids(&self) -> Vec<InstrId> {
        let mut ids: Vec<InstrId> = self.sites.iter().map(|s| s.site).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Whether nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// Which selection strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectorKind {
    /// The paper's key data value selection.
    #[default]
    KeyValue,
    /// Random data selection with a matched byte budget (the §5.2
    /// ablation baseline).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Context needed to cost and place recordings.
#[derive(Debug)]
pub struct SelectionInput<'a> {
    /// The expression pool (constraint graph nodes).
    pub pool: &'a ExprPool,
    /// First definition site of each symbolic expression.
    pub origins: &'a HashMap<ExprRef, InstrId>,
    /// Dynamic execution count per site.
    pub site_counts: &'a HashMap<InstrId, u64>,
}

impl<'a> SelectionInput<'a> {
    fn cost_of(&self, e: ExprRef) -> Option<u64> {
        let site = self.origins.get(&e)?;
        let count = self.site_counts.get(site).copied().unwrap_or(1).max(1);
        let size = u64::from(self.pool.sort(e).bits().div_ceil(8));
        Some(size * count)
    }

    fn site_of(&self, e: ExprRef) -> Option<RecordingSite> {
        let site = *self.origins.get(&e)?;
        let count = self.site_counts.get(&site).copied().unwrap_or(1).max(1);
        let size = u64::from(self.pool.sort(e).bits().div_ceil(8));
        Some(RecordingSite {
            site,
            size_bytes: size,
            count,
            expr: e,
        })
    }
}

/// Runs key data value selection over an analyzed constraint graph.
pub fn select_key_values(graph: &ConstraintGraph, input: &SelectionInput<'_>) -> RecordingSet {
    let elements: Vec<ExprRef> = graph.bottleneck.iter().map(|b| b.expr).collect();
    select_from_elements(&elements, input)
}

/// Runs cost-minimizing selection starting from an explicit element set.
///
/// This also powers the *stall-site fallback* (an extension beyond the
/// paper): when a stall occurs before any write chain exists — e.g. the
/// solver chokes on heavy pure-bitvector arithmetic — the bottleneck set is
/// empty, and ER instead seeds selection with the symbolic values appearing
/// in the path constraints themselves.
pub fn select_from_elements(elements: &[ExprRef], input: &SelectionInput<'_>) -> RecordingSet {
    // Step 1: replace each element by the cheapest recordable determining
    // set found by DFS.
    let mut chosen: Vec<ExprRef> = Vec::new();
    let mut seen: HashSet<ExprRef> = HashSet::new();
    let mut memo: HashMap<ExprRef, (u64, Vec<ExprRef>)> = HashMap::new();
    for &elem in elements {
        let (_, set) = best_cover(input, elem, &mut memo);
        for e in set {
            if seen.insert(e) {
                chosen.push(e);
            }
        }
    }

    // Step 2: drop elements deducible from the rest (paper's V[x] rule).
    // Process most-expensive first so costly redundancies go first.
    chosen.sort_by_key(|&e| std::cmp::Reverse(input.cost_of(e).unwrap_or(0)));
    let mut kept: Vec<ExprRef> = chosen.clone();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i];
        let others = kept
            .iter()
            .copied()
            .filter(|&e| e != candidate)
            .collect::<Vec<_>>();
        let mut ded = Deducibility::new(input.pool, others);
        if ded.deducible(candidate) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }

    let mut sites: Vec<RecordingSite> = kept.into_iter().filter_map(|e| input.site_of(e)).collect();
    sites.sort_by_key(|s| (s.site, s.expr));
    sites.dedup_by_key(|s| s.site);
    RecordingSet { sites }
}

/// The cheapest set of recordable expressions determining `e`:
/// `min(record e itself, sum of the cheapest covers of its children)`.
fn best_cover(
    input: &SelectionInput<'_>,
    e: ExprRef,
    memo: &mut HashMap<ExprRef, (u64, Vec<ExprRef>)>,
) -> (u64, Vec<ExprRef>) {
    const INFINITE: u64 = u64::MAX / 4;
    if let Some(hit) = memo.get(&e) {
        return hit.clone();
    }
    if input.pool.as_const(e).is_some() {
        return (0, vec![]);
    }
    // Guard against re-entry (the DAG has no cycles, but memoize early to
    // keep the traversal linear).
    memo.insert(e, (INFINITE, vec![e]));

    let self_cost = input.cost_of(e).unwrap_or(INFINITE);
    let kids = children(input.pool, e);
    let (child_cost, child_set) = if kids.is_empty() {
        (INFINITE, vec![])
    } else {
        let mut total = 0u64;
        let mut set: Vec<ExprRef> = Vec::new();
        let mut seen: HashSet<ExprRef> = HashSet::new();
        for k in kids {
            let (c, s) = best_cover(input, k, memo);
            total = total.saturating_add(c);
            for e2 in s {
                if seen.insert(e2) {
                    set.push(e2);
                }
            }
        }
        (total, set)
    };

    // Ties go to the descendants: recording values closer to the inputs
    // concretizes strictly more downstream state for the same bytes.
    let result = if self_cost < child_cost {
        (self_cost, vec![e])
    } else {
        (child_cost, child_set)
    };
    memo.insert(e, result.clone());
    result
}

/// The §5.2 ablation: records randomly chosen graph values whose total
/// byte cost matches `budget`.
pub fn select_random(input: &SelectionInput<'_>, budget: u64, seed: u64) -> RecordingSet {
    // Candidates: any symbolic expression with a recordable site.
    let mut candidates: Vec<ExprRef> = (0..input.pool.len() as u32)
        .map(ExprRef)
        .filter(|e| {
            input.origins.contains_key(e)
                && input.pool.as_const(*e).is_none()
                && !matches!(input.pool.node(*e), Node::Var { .. } if false)
        })
        .collect();
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    // Fisher-Yates shuffle.
    for i in (1..candidates.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        candidates.swap(i, j);
    }
    let mut sites = Vec::new();
    let mut spent = 0u64;
    let mut used: HashSet<InstrId> = HashSet::new();
    for e in candidates {
        if spent >= budget {
            break;
        }
        if let Some(site) = input.site_of(e) {
            if used.insert(site.site) {
                spent += site.cost();
                sites.push(site);
            }
        }
    }
    RecordingSet { sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::ir::{BlockId, FuncId};
    use er_solver::expr::BvOp;

    fn site(i: usize) -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            index: i,
        }
    }

    /// Rebuilds the paper's running example selection scenario:
    /// bottleneck {x, λc, V[x]} reduces to recording {x, λc}.
    #[test]
    fn paper_reduction_drops_deducible_read() {
        let mut p = ExprPool::new();
        let la = p.var("a", 32);
        let lb = p.var("b", 32);
        let lc = p.var("c", 32);
        let x = p.bin(BvOp::Add, la, lb);
        let v = p.array("V", 1024, 8, None);
        let x64 = p.zext(x, 64);
        let lc64 = p.zext(lc, 64);
        let one = p.bv_const(1, 8);
        let w2 = p.write(v, x64, one);
        let v512 = p.bv_const(0x99, 8);
        let w3 = p.write(w2, lc64, v512);
        let r4 = p.read(w3, x64); // V[x]
        let r4_64 = p.zext(r4, 64);
        let x8 = p.trunc(x, 8);
        let _w4 = p.write(w3, r4_64, x8);

        let mut origins = HashMap::new();
        origins.insert(la, site(0));
        origins.insert(lb, site(1));
        origins.insert(lc, site(2));
        origins.insert(x, site(3));
        origins.insert(r4, site(4));
        let mut site_counts = HashMap::new();
        for i in 0..5 {
            site_counts.insert(site(i), 1);
        }
        let input = SelectionInput {
            pool: &p,
            origins: &origins,
            site_counts: &site_counts,
        };
        let graph = ConstraintGraph::analyze(&p);
        let set = select_key_values(&graph, &input);
        let chosen: HashSet<InstrId> = set.sites.iter().map(|s| s.site).collect();
        // x (site 3) is cheaper than {a, b} (sites 0+1 cost 8 > 4).
        assert!(chosen.contains(&site(3)), "records x: {set:?}");
        // λc (site 2) is a leaf input.
        assert!(chosen.contains(&site(2)), "records λc: {set:?}");
        // V[x] (site 4) is deducible from x and λc, so it is dropped.
        assert!(!chosen.contains(&site(4)), "V[x] must be dropped: {set:?}");
        assert_eq!(set.total_cost(), 8);
    }

    #[test]
    fn dfs_prefers_cheaper_children() {
        // e = a + b where e's site runs 100 times but a, b run once:
        // recording a and b (8 bytes) beats recording e (400 bytes).
        let mut p = ExprPool::new();
        let a = p.var("a", 32);
        let b = p.var("b", 32);
        let e = p.bin(BvOp::Add, a, b);
        let mut origins = HashMap::new();
        origins.insert(a, site(0));
        origins.insert(b, site(1));
        origins.insert(e, site(2));
        let mut counts = HashMap::new();
        counts.insert(site(0), 1);
        counts.insert(site(1), 1);
        counts.insert(site(2), 100);
        let input = SelectionInput {
            pool: &p,
            origins: &origins,
            site_counts: &counts,
        };
        let mut memo = HashMap::new();
        let (cost, set) = best_cover(&input, e, &mut memo);
        assert_eq!(cost, 8);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn unrecordable_values_fall_through_to_children() {
        let mut p = ExprPool::new();
        let a = p.var("a", 32);
        let two = p.bv_const(2, 32);
        let e = p.bin(BvOp::Mul, a, two);
        // e has no origin; a does.
        let mut origins = HashMap::new();
        origins.insert(a, site(0));
        let mut counts = HashMap::new();
        counts.insert(site(0), 1);
        let input = SelectionInput {
            pool: &p,
            origins: &origins,
            site_counts: &counts,
        };
        let mut memo = HashMap::new();
        let (cost, set) = best_cover(&input, e, &mut memo);
        assert_eq!(cost, 4);
        assert_eq!(set, vec![a]);
    }

    #[test]
    fn random_selector_respects_budget_and_seed() {
        let mut p = ExprPool::new();
        let mut origins = HashMap::new();
        let mut counts = HashMap::new();
        for i in 0..20 {
            let v = p.var(format!("v{i}"), 32);
            origins.insert(v, site(i));
            counts.insert(site(i), 1);
        }
        let input = SelectionInput {
            pool: &p,
            origins: &origins,
            site_counts: &counts,
        };
        let a = select_random(&input, 12, 7);
        assert!(a.total_cost() >= 12, "keeps selecting until budget met");
        assert!(a.total_cost() <= 16);
        let b = select_random(&input, 12, 7);
        assert_eq!(a.sites, b.sites, "same seed, same choice");
        let c = select_random(&input, 12, 8);
        assert!(a.sites != c.sites || a.sites.is_empty());
    }
}
