//! The iterative reconstruction driver (paper Fig. 2 and §3.3.4).
//!
//! Each iteration waits for the failure to reoccur in the deployment,
//! shepherds symbolic execution along the shipped trace, and either solves
//! for a concrete test case or — on a stall — selects key data values,
//! instruments the program, and redeploys. The loop is guaranteed to make
//! progress because every iteration concretizes at least the newly recorded
//! values; it gives up only on divergence or after `max_occurrences`.

use crate::deploy::{Deployment, DeploymentSource, FailureOccurrence, FailureSource};
use crate::graph::ConstraintGraph;
use crate::instrument::InstrumentedProgram;
use crate::select::{self, RecordingSet, SelectionInput, SelectorKind};
use crate::shepherd::{self, SolveFailure};
use crate::testcase::{TestCase, VerifyResult};
use er_minilang::error::Failure;
use er_minilang::interp::SchedConfig;
use er_minilang::ir::{InstrId, Program};
use er_pt::TraceEvent;
use er_solver::solve::Budget;
use er_symex::{MachineState, ShepherdStatus, SymConfig, TraceDivergence};
use std::collections::HashMap;
use std::time::Duration;

/// Configuration of the reconstruction loop.
#[derive(Debug, Clone, Copy)]
pub struct ErConfig {
    /// Shepherded-symbolic-execution configuration (per-query budget).
    pub sym: SymConfig,
    /// Budget for the final input solve.
    pub final_budget: Budget,
    /// Maximum failure occurrences to harvest before giving up.
    pub max_occurrences: u32,
    /// Maximum production runs to wait for each reoccurrence.
    pub max_runs_per_occurrence: u64,
    /// Data-value selection strategy.
    pub selector: SelectorKind,
    /// Observe this many failures *without* tracing before enabling the
    /// always-on trace (paper §3.1: "developers can configure ER to enable
    /// tracing only after a failure is observed multiple times"). These
    /// count toward the reported occurrences.
    pub tracing_warmup: u32,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            sym: SymConfig::default(),
            final_budget: Budget::default(),
            max_occurrences: 16,
            max_runs_per_occurrence: 50_000,
            selector: SelectorKind::KeyValue,
            tracing_warmup: 0,
        }
    }
}

/// Why reconstruction gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum GiveUpReason {
    /// The deployment never produced (a reoccurrence of) the failure.
    NoFailureObserved,
    /// `max_occurrences` exhausted while still stalling.
    OccurrenceLimit,
    /// Shepherded execution disagreed with the trace.
    Diverged(TraceDivergence),
    /// The path constraint was unsatisfiable.
    Unsat,
    /// The trace could not be decoded.
    TraceDecode(String),
    /// A stall occurred but selection produced no new site to record.
    NothingToRecord,
    /// The generated test case failed replay verification.
    VerificationFailed,
    /// The watchdog cancelled this session's iterations until its
    /// escalation ladder was exhausted — every retry, each with a larger
    /// phase budget, tripped again.
    WatchdogExhausted {
        /// The phase whose budget tripped on the final attempt.
        phase: &'static str,
        /// Escalations spent before giving up.
        escalations: u32,
    },
}

/// Final outcome of a reconstruction.
#[derive(Debug)]
pub enum Outcome {
    /// A verified failure-reproducing test case.
    Reproduced(TestCase),
    /// Reconstruction failed.
    GaveUp(GiveUpReason),
}

impl Outcome {
    /// The test case, if reproduction succeeded.
    pub fn test_case(&self) -> Option<&TestCase> {
        match self {
            Outcome::Reproduced(tc) => Some(tc),
            Outcome::GaveUp(_) => None,
        }
    }
}

/// Per-iteration statistics (feeds Table 1 and §5.3).
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// 1-based occurrence number.
    pub occurrence: u32,
    /// Which production run failed.
    pub run_index: u64,
    /// Dynamic instructions in the failing run.
    pub instr_count: u64,
    /// Trace bytes shipped.
    pub trace_bytes: u64,
    /// Wall-clock time of shepherded symbolic execution.
    pub symbex_wall: Duration,
    /// Instructions symbolically executed.
    pub symbex_steps: u64,
    /// Solver work units expended.
    pub solver_work: u64,
    /// Stall description, if the iteration stalled.
    pub stalled: Option<String>,
    /// Constraint-graph node count at analysis time.
    pub graph_nodes: usize,
    /// Longest symbolic write chain observed.
    pub longest_chain: u64,
    /// Sites selected for the next iteration.
    pub sites_selected: usize,
    /// Projected recording cost (bytes/run) of the cumulative set.
    pub recorded_bytes: u64,
    /// Newly selected sites (original coordinates).
    pub new_sites: Vec<InstrId>,
}

/// The full reconstruction record.
#[derive(Debug)]
pub struct ReconstructionReport {
    /// Outcome.
    pub outcome: Outcome,
    /// Failure occurrences consumed (Table 1's `#Occur`).
    pub occurrences: u32,
    /// Per-iteration details.
    pub iterations: Vec<IterationStats>,
    /// Total shepherded-symbolic-execution wall time (Table 1's
    /// "Symbex Time", summed over iterations).
    pub total_symbex: Duration,
    /// The target failure (original coordinates), once observed.
    pub target: Option<Failure>,
}

impl ReconstructionReport {
    /// Whether a verified test case was produced.
    pub fn reproduced(&self) -> bool {
        matches!(self.outcome, Outcome::Reproduced(_))
    }
}

/// Everything the driver retains from one shepherded occurrence so the
/// next one can resume mid-trace instead of re-executing the shared
/// prefix (the tentpole of the checkpoint/resume optimization): the
/// decoded events (to find the longest common prefix with the new trace),
/// the instrumentation that produced them (to remap instruction
/// coordinates), and the machine snapshots taken along the way.
#[derive(Debug, Clone)]
struct ResumeCache {
    events: Vec<TraceEvent>,
    inst: InstrumentedProgram,
    checkpoints: Vec<MachineState>,
}

/// Walks two event streams of the same program in lockstep and returns
/// cursor-mapping ranges `(old_from, old_to, new_cursor)`: machine state at
/// any old-trace cursor in `[old_from, old_to]` equals machine state at
/// `new_cursor` in the new trace. The walk tolerates *scheduling noise* —
/// timestamps, and a resume of the thread that is already running — which
/// the production scheduler injects at per-run positions (quantum
/// boundaries drift between runs) and which the symbolic machine skips
/// without touching state. Everything else (branches, recorded values,
/// real thread switches) must match exactly; the ranges stop at the first
/// semantic difference.
fn align_schedules(a: &[TraceEvent], b: &[TraceEvent]) -> Vec<(usize, usize, usize)> {
    let noise = |ev: &TraceEvent, running: Option<u64>| match ev {
        TraceEvent::Timestamp(_) => true,
        TraceEvent::ThreadResume(t) => Some(*t) == running,
        _ => false,
    };
    let mut ranges = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    // The tid last handed the CPU. A repeat resume of it is a quantum
    // boundary: the interpreter cannot re-resume a *blocked* thread without
    // an intervening switch to whoever unblocks it, so tracking the last
    // resume is enough to classify without simulating thread states.
    let mut running: Option<u64> = None;
    loop {
        let from = i;
        while a.get(i).is_some_and(|ev| noise(ev, running)) {
            i += 1;
        }
        while b.get(j).is_some_and(|ev| noise(ev, running)) {
            j += 1;
        }
        ranges.push((from, i, j));
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) if x == y => {
                if let TraceEvent::ThreadResume(t) = x {
                    running = Some(*t);
                }
                i += 1;
                j += 1;
            }
            _ => return ranges,
        }
    }
}

/// Metadata of one failure occurrence, minus the trace itself. The fleet
/// path stores traces compressed and re-derives events later, so the
/// session accepts `(OccurrenceInfo, events)` instead of a raw
/// [`FailureOccurrence`].
#[derive(Debug, Clone, PartialEq)]
pub struct OccurrenceInfo {
    /// Which production run failed.
    pub run_index: u64,
    /// Dynamic instructions of the failing run.
    pub instr_count: u64,
    /// Trace bytes shipped (before compression).
    pub trace_bytes: u64,
    /// Scheduler configuration of the failing run.
    pub sched: SchedConfig,
    /// Failure identity in original coordinates.
    pub failure: Failure,
    /// Failure identity in instrumented coordinates.
    pub failure_instrumented: Failure,
}

impl OccurrenceInfo {
    /// The metadata of `occ`.
    pub fn of(occ: &FailureOccurrence) -> Self {
        OccurrenceInfo {
            run_index: occ.run_index,
            instr_count: occ.instr_count,
            trace_bytes: occ.pt_stats.bytes,
            sched: occ.sched,
            failure: occ.failure.clone(),
            failure_instrumented: occ.failure_instrumented.clone(),
        }
    }
}

/// What a [`ReconstructionSession`] needs next after consuming an
/// occurrence.
///
/// `Done` carries the full report inline: it is constructed once per
/// session, so boxing it would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SessionStep {
    /// Feed another occurrence, produced under
    /// [`ReconstructionSession::instrumented`] (which changed if
    /// `reinstrumented` is true — redeploy before collecting).
    NeedOccurrence {
        /// The recording set grew; instances must roll out the new binary.
        reinstrumented: bool,
    },
    /// Terminal: reconstruction finished (reproduced or gave up).
    Done(ReconstructionReport),
}

/// One failure investigation, resumable between occurrences.
///
/// This is the per-failure-group state the fleet scheduler parks between
/// reoccurrences: the accumulated recording set, the target failure, the
/// iteration log, and the checkpoint cache. [`consume`](Self::consume) runs
/// exactly one iteration of the paper's loop; the serial driver
/// ([`Reconstructor::reconstruct`]) is now a thin wrapper that feeds it
/// from a [`DeploymentSource`].
#[derive(Debug, Clone)]
pub struct ReconstructionSession {
    config: ErConfig,
    program: Program,
    sites: Vec<InstrId>,
    target: Option<Failure>,
    iterations: Vec<IterationStats>,
    total_symbex: Duration,
    prev: Option<ResumeCache>,
    occurrences: u32,
}

impl ReconstructionSession {
    /// A fresh investigation of `program`.
    pub fn new(config: ErConfig, program: Program) -> Self {
        ReconstructionSession {
            config,
            program,
            sites: Vec::new(),
            target: None,
            iterations: Vec::new(),
            total_symbex: Duration::ZERO,
            prev: None,
            occurrences: 0,
        }
    }

    /// The original (uninstrumented) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The target failure, once one has been observed.
    pub fn target(&self) -> Option<&Failure> {
        self.target.as_ref()
    }

    /// Occurrences consumed so far (including untraced warmups).
    pub fn occurrences(&self) -> u32 {
        self.occurrences
    }

    /// The accumulated recording set (original coordinates).
    pub fn sites(&self) -> &[InstrId] {
        &self.sites
    }

    /// How many iterations stalled so far — the "how much more data does
    /// this group still need" signal the fleet scheduler prioritizes by.
    pub fn stall_depth(&self) -> u32 {
        self.iterations
            .iter()
            .filter(|it| it.stalled.is_some())
            .count() as u32
    }

    /// Whether another occurrence may still be consumed.
    pub fn wants_more(&self) -> bool {
        self.occurrences < self.config.max_occurrences
    }

    /// Event cursors of the symbex snapshots retained from the last
    /// consumed occurrence — what a durability layer records to prove (and
    /// later assert) that a restarted session resumes mid-trace rather
    /// than from occurrence zero.
    pub fn checkpoint_cursors(&self) -> Vec<usize> {
        self.prev
            .as_ref()
            .map(|cache| cache.checkpoints.iter().map(MachineState::cursor).collect())
            .unwrap_or_default()
    }

    /// The most recently completed iteration's statistics.
    pub fn last_iteration(&self) -> Option<&IterationStats> {
        self.iterations.last()
    }

    /// Records an *untraced* warmup observation (paper §3.1): counts toward
    /// occurrences and pins the target, but is not analyzed.
    pub fn note_untraced(&mut self, failure: Failure) {
        self.occurrences += 1;
        self.target.get_or_insert(failure);
    }

    /// Builds the binary the deployment must run for the next occurrence:
    /// the program instrumented with the accumulated recording set.
    pub fn instrumented(&self) -> InstrumentedProgram {
        let _s = er_telemetry::span!("phase.instrument");
        if self.sites.is_empty() {
            return InstrumentedProgram::unmodified(&self.program);
        }
        match InstrumentedProgram::try_new(&self.program, &self.sites) {
            Ok(inst) => inst,
            Err(e) => {
                // Degraded: a bogus recording site must not kill the
                // investigation. Deploy the uninstrumented binary instead —
                // the first-iteration posture (control flow only).
                er_telemetry::counter!("instrument.rejected").incr();
                er_telemetry::log!(
                    warn,
                    "instrumentation rejected ({e}); deploying uninstrumented"
                );
                InstrumentedProgram::unmodified(&self.program)
            }
        }
    }

    /// Consumes one traced occurrence: decodes the trace and runs one
    /// iteration of the reconstruction loop. `inst` must be the
    /// instrumentation that produced `occ` (i.e. a binary built by
    /// [`instrumented`](Self::instrumented) since the last
    /// `reinstrumented` step).
    pub fn consume(&mut self, inst: &InstrumentedProgram, occ: FailureOccurrence) -> SessionStep {
        let info = OccurrenceInfo::of(&occ);
        let decoded = {
            let _s = er_telemetry::span!("shepherd.decode");
            occ.trace.decode()
        };
        match decoded {
            Ok(d) => self.consume_events(inst, info, d.events),
            Err(e) => self.note_undecodable(info, e.to_string()),
        }
    }

    /// Consumes an occurrence whose trace could not be decoded — the fleet
    /// ingestion path reports these without shipping events. A corrupt or
    /// truncated trace costs one occurrence, not the investigation: the
    /// failure will reoccur (the reoccurrence hypothesis of §3.1) and the
    /// next trace may decode. Only when the occurrence budget is spent does
    /// the session close with [`GiveUpReason::TraceDecode`].
    pub fn note_undecodable(&mut self, info: OccurrenceInfo, error: String) -> SessionStep {
        self.occurrences += 1;
        self.target.get_or_insert(info.failure);
        if self.wants_more() {
            er_telemetry::counter!("reconstruct.retry.undecodable").incr();
            return SessionStep::NeedOccurrence {
                reinstrumented: false,
            };
        }
        SessionStep::Done(self.report(Outcome::GaveUp(GiveUpReason::TraceDecode(error))))
    }

    /// Like [`consume`](Self::consume), but on pre-decoded events — the
    /// fleet ingestion path stores packets compressed and flattens them
    /// with [`er_pt::packets_to_events`], which reproduces
    /// [`er_pt::PtTrace::decode`] bit-for-bit.
    pub fn consume_events(
        &mut self,
        inst: &InstrumentedProgram,
        info: OccurrenceInfo,
        events: Vec<TraceEvent>,
    ) -> SessionStep {
        // IterationStats are derived from telemetry counter snapshots (one
        // source of truth), so collection must be live even when the user
        // asked for no telemetry output.
        let _counters = er_telemetry::ensure_counters();
        self.occurrences += 1;
        let occurrence = self.occurrences;
        self.target.get_or_insert(info.failure.clone());

        // Checkpoint resume: if a previous occurrence left snapshots and
        // the new trace agrees with the old one on a prefix, pick the
        // latest snapshot inside that prefix and remap its instruction
        // coordinates from the old instrumentation to the new one
        // (through original coordinates). A snapshot parked on an
        // instruction that no longer exists remaps to `None` and the
        // next-older one is tried.
        let resume_state = self
            .prev
            .as_ref()
            .filter(|_| self.config.sym.checkpoint_every > 0)
            .and_then(|cache| {
                let aligned = align_schedules(&cache.events, &events);
                cache
                    .checkpoints
                    .iter()
                    .rev()
                    .filter_map(|s| {
                        let c = s.cursor();
                        let &(_, _, new_cursor) = aligned
                            .iter()
                            .find(|&&(from, to, _)| from <= c && c <= to)?;
                        Some((s, new_cursor))
                    })
                    .find_map(|(s, new_cursor)| {
                        s.clone()
                            .remap_sites(&inst.program, |id| {
                                cache.inst.to_original(id).map(|o| inst.from_original(o))
                            })
                            .map(|s| s.with_cursor(new_cursor))
                    })
            });

        // Counter deltas around the shepherded execution are the single
        // source of truth for per-iteration effort: the same numbers
        // feed IterationStats here and the journal's span events.
        let snap_before = er_telemetry::local_snapshot();
        er_solver::cancel::begin_phase(er_solver::cancel::Phase::Shepherd);
        let report = match resume_state {
            Some(state) => {
                er_telemetry::counter!("symex.checkpoint_resumes").incr();
                shepherd::shepherd_resume(
                    &inst.program,
                    &events,
                    Some(&info.failure_instrumented),
                    self.config.sym,
                    state,
                )
            }
            None => shepherd::shepherd_events(
                &inst.program,
                &events,
                Some(&info.failure_instrumented),
                self.config.sym,
            ),
        };
        let shepherd_delta = er_telemetry::local_snapshot().delta(&snap_before);
        self.total_symbex += report.wall;
        let mut run = report.run;
        let checkpoints = std::mem::take(&mut run.checkpoints);
        let mut stats = IterationStats {
            occurrence,
            run_index: info.run_index,
            instr_count: info.instr_count,
            trace_bytes: info.trace_bytes,
            symbex_wall: report.wall,
            symbex_steps: shepherd_delta.get("symex.steps"),
            solver_work: shepherd_delta.get("solver.work_units"),
            stalled: None,
            graph_nodes: run.pool.len(),
            longest_chain: run.longest_chain,
            sites_selected: 0,
            recorded_bytes: 0,
            new_sites: Vec::new(),
        };

        let stalled = match &run.status {
            ShepherdStatus::Completed => {
                match shepherd::solve_inputs(&mut run, &self.config.final_budget) {
                    Ok(inputs) => {
                        let tc = TestCase {
                            inputs,
                            sched: info.sched,
                            expected: self.target.clone().expect("target set"),
                        };
                        let verify = tc.verify(&self.program);
                        self.iterations.push(stats);
                        if matches!(verify, VerifyResult::Reproduced { .. }) {
                            return SessionStep::Done(self.report(Outcome::Reproduced(tc)));
                        }
                        // A non-reproducing test case means the solved
                        // inputs exercised a schedule- or trace-sensitive
                        // path; another occurrence may verify.
                        if self.wants_more() {
                            er_telemetry::counter!("reconstruct.retry.verification").incr();
                            return SessionStep::NeedOccurrence {
                                reinstrumented: false,
                            };
                        }
                        return SessionStep::Done(
                            self.report(Outcome::GaveUp(GiveUpReason::VerificationFailed)),
                        );
                    }
                    Err(SolveFailure::Stall(reason)) => format!("final solve: {reason}"),
                    Err(SolveFailure::Unsat) => {
                        // Unsat from the final solve usually means the
                        // occurrence's trace (or an injected stall budget)
                        // over-constrained the path; the next occurrence
                        // solves a fresh constraint set.
                        stats.stalled = Some("final solve: unsat".to_string());
                        self.iterations.push(stats);
                        if self.wants_more() {
                            er_telemetry::counter!("reconstruct.retry.unsat").incr();
                            return SessionStep::NeedOccurrence {
                                reinstrumented: false,
                            };
                        }
                        return SessionStep::Done(
                            self.report(Outcome::GaveUp(GiveUpReason::Unsat)),
                        );
                    }
                }
            }
            ShepherdStatus::Stalled { reason, at } => format!("{reason} at {at}"),
            ShepherdStatus::Diverged(d) => {
                // Most divergences come from interleavings finer than
                // the chunk order can express (§3.4). The paper's remedy
                // is the iterative loop itself: wait for the failure to
                // reoccur — the next occurrence's schedule may satisfy
                // the coarse-interleaving hypothesis.
                stats.stalled = Some(format!("diverged: {d:?}"));
                self.iterations.push(stats);
                self.prev = Some(ResumeCache {
                    events,
                    inst: inst.clone(),
                    checkpoints,
                });
                return self.need_more(false);
            }
        };
        stats.stalled = Some(stalled);

        // Key data value selection on the constraint graph, with ids
        // translated back to original program coordinates.
        let set = {
            let _s = er_telemetry::span!("phase.select");
            er_solver::cancel::begin_phase(er_solver::cancel::Phase::Select);
            // Selection cost scales with the constraint graph; bill it up
            // front in pool-node units. A trip here surfaces through the
            // supervisor's post-iteration check, not mid-selection.
            er_solver::cancel::tick(run.pool.len() as u64);
            self.select(&run, inst, occurrence)
        };
        let new_sites: Vec<InstrId> = set
            .site_ids()
            .into_iter()
            .filter(|s| !self.sites.contains(s))
            .collect();
        stats.sites_selected = new_sites.len();
        stats.recorded_bytes = set.total_cost();
        stats.new_sites = new_sites.clone();
        self.iterations.push(stats);
        if new_sites.is_empty() {
            // Selection found nothing new to record for *this* stall; a
            // different occurrence (schedule, inputs) may stall elsewhere
            // and yield fresh sites, so spend the budget before giving up.
            if self.wants_more() {
                er_telemetry::counter!("reconstruct.retry.nothing_to_record").incr();
                self.prev = Some(ResumeCache {
                    events,
                    inst: inst.clone(),
                    checkpoints,
                });
                return SessionStep::NeedOccurrence {
                    reinstrumented: false,
                };
            }
            return SessionStep::Done(self.report(Outcome::GaveUp(GiveUpReason::NothingToRecord)));
        }
        self.sites.extend(new_sites);
        self.sites.sort_unstable();
        self.sites.dedup();
        self.prev = Some(ResumeCache {
            events,
            inst: inst.clone(),
            checkpoints,
        });
        self.need_more(true)
    }

    /// Either asks for another occurrence or, at the occurrence limit,
    /// closes the investigation exactly like the serial loop's exit.
    fn need_more(&mut self, reinstrumented: bool) -> SessionStep {
        if self.occurrences >= self.config.max_occurrences {
            SessionStep::Done(self.give_up(GiveUpReason::OccurrenceLimit))
        } else {
            SessionStep::NeedOccurrence { reinstrumented }
        }
    }

    /// Closes the investigation unsuccessfully (e.g. the source stopped
    /// producing occurrences). The session is spent afterwards.
    pub fn give_up(&mut self, reason: GiveUpReason) -> ReconstructionReport {
        // The serial loop reports the occurrence *limit* when it exhausts
        // the budget, even if warmups overshot it.
        let occurrences = if matches!(reason, GiveUpReason::OccurrenceLimit) {
            self.config.max_occurrences
        } else {
            self.occurrences
        };
        let mut report = self.report(Outcome::GaveUp(reason));
        report.occurrences = occurrences;
        report
    }

    fn report(&mut self, outcome: Outcome) -> ReconstructionReport {
        ReconstructionReport {
            outcome,
            occurrences: self.occurrences,
            iterations: std::mem::take(&mut self.iterations),
            total_symbex: self.total_symbex,
            target: self.target.clone(),
        }
    }

    fn select(
        &self,
        run: &er_symex::SymRunResult,
        inst: &InstrumentedProgram,
        occurrence: u32,
    ) -> RecordingSet {
        // Translate origins and counts into original coordinates so sites
        // accumulate stably across differently instrumented iterations.
        let mut origins: HashMap<er_solver::ExprRef, InstrId> = HashMap::new();
        for (&e, &site) in &run.origins {
            if let Some(o) = inst.to_original(site) {
                origins.insert(e, o);
            }
        }
        let mut site_counts: HashMap<InstrId, u64> = HashMap::new();
        for (&site, &count) in &run.site_counts {
            if let Some(o) = inst.to_original(site) {
                *site_counts.entry(o).or_insert(0) += count;
            }
        }
        let input = SelectionInput {
            pool: &run.pool,
            origins: &origins,
            site_counts: &site_counts,
        };
        let graph = ConstraintGraph::analyze(&run.pool);
        // The stalled query's subject always joins the element set: the
        // value whose resolution timed out is by definition worth knowing.
        let mut elements: Vec<er_solver::ExprRef> =
            graph.bottleneck.iter().map(|b| b.expr).collect();
        elements.extend(run.stall_subject);
        let mut key = select::select_from_elements(&elements, &input);
        if key.is_empty() {
            // Stall-site fallback: no write chains to blame, so seed
            // selection with the symbolic operands of the path constraints.
            let mut elements: Vec<er_solver::ExprRef> = Vec::new();
            for &c in &run.path {
                for child in crate::graph::children(&run.pool, c) {
                    if run.pool.as_const(child).is_none() {
                        elements.push(child);
                    }
                }
            }
            elements.sort_unstable();
            elements.dedup();
            key = select::select_from_elements(&elements, &input);
        }
        match self.config.selector {
            SelectorKind::KeyValue => key,
            SelectorKind::Random { seed } => {
                // The ablation records the *same amount of data*, chosen
                // randomly from the graph (paper §5.2); a fresh draw each
                // occurrence, like re-instrumenting with new random values.
                select::select_random(
                    &input,
                    key.total_cost().max(1),
                    seed.wrapping_add(u64::from(occurrence).wrapping_mul(0x9e37_79b9)),
                )
            }
        }
    }
}

/// The ER analysis engine.
#[derive(Debug, Clone, Default)]
pub struct Reconstructor {
    config: ErConfig,
}

impl Reconstructor {
    /// An engine with the given configuration.
    pub fn new(config: ErConfig) -> Self {
        Reconstructor { config }
    }

    /// Reconstructs the first failure the deployment produces.
    pub fn reconstruct(&self, deployment: &Deployment) -> ReconstructionReport {
        let mut source = DeploymentSource::new(deployment, self.config.max_runs_per_occurrence);
        self.reconstruct_from(&mut source)
    }

    /// Reconstructs the first failure `source` produces — the fleet-aware
    /// entry point: any [`FailureSource`] (one deployment, or a pool of
    /// instances) can feed the loop.
    pub fn reconstruct_from(&self, source: &mut dyn FailureSource) -> ReconstructionReport {
        // Counter collection must be live even when the user asked for no
        // telemetry output; the guard raises `off` to `counters` for the
        // duration of this call only.
        let _counters = er_telemetry::ensure_counters();
        let _span = er_telemetry::span!("reconstruct");
        let mut session = ReconstructionSession::new(self.config, source.program().clone());

        // Optional unmonitored warm-up: confirm the failure actually
        // reoccurs before paying for always-on tracing.
        if self.config.tracing_warmup > 0 {
            let inst = InstrumentedProgram::unmodified(session.program());
            for _ in 0..self.config.tracing_warmup {
                let target = session.target().cloned();
                match source.next_untraced(&inst, target.as_ref()) {
                    Some((_, failure)) => session.note_untraced(failure),
                    None => return session.give_up(GiveUpReason::NoFailureObserved),
                }
            }
        }

        loop {
            if !session.wants_more() {
                return session.give_up(GiveUpReason::OccurrenceLimit);
            }
            let _iter_span = er_telemetry::span!("reconstruct.iteration");
            let inst = session.instrumented();
            let deployed = {
                let _s = er_telemetry::span!("phase.deploy");
                let target = session.target().cloned();
                source.next_occurrence(&inst, target.as_ref())
            };
            let Some(occ) = deployed else {
                return session.give_up(GiveUpReason::NoFailureObserved);
            };
            match session.consume(&inst, occ) {
                SessionStep::Done(report) => return report,
                SessionStep::NeedOccurrence { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;
    use er_minilang::env::Env;

    fn deploy(src: &str, input_gen: impl Fn(u64) -> Env + Send + Sync + 'static) -> Deployment {
        Deployment::new(compile(src).unwrap(), input_gen)
    }

    #[test]
    fn single_occurrence_reproduction() {
        // Purely control-flow-determined failure: one occurrence suffices.
        let d = deploy(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a * 3 == 21 { abort("boom"); }
                print(a);
            }
            "#,
            |run| {
                let mut env = Env::new();
                env.push_input(0, &(run as u32).to_le_bytes());
                env
            },
        );
        let report = Reconstructor::default().reconstruct(&d);
        assert!(report.reproduced(), "outcome: {:?}", report.outcome);
        assert_eq!(report.occurrences, 1);
        let tc = report.outcome.test_case().unwrap();
        assert_eq!(tc.inputs[0].1, 7u32.to_le_bytes().to_vec());
    }

    #[test]
    fn iterative_reconstruction_with_stalls() {
        // A paper-style aliasing bug over a large object: trace-only symbex
        // stalls under a small budget; recorded key values fix it. Masked
        // indexing keeps containment provable so the write chain forms.
        let src = r#"
            global TBL: [u64; 2048];
            fn main() {
                let a: u64 = input_u64(0);
                let b: u64 = input_u64(0);
                let i: u64 = a & 2047;
                let j: u64 = b & 2047;
                TBL[i] = 41;
                if TBL[j] == 41 { abort("aliased"); }
                print(i);
            }
        "#;
        let d = deploy(src, |run| {
            let mut env = Env::new();
            // Failures occur when i == j; make that happen every 7th run.
            let a = run * 13 + 5;
            let b = if run % 7 == 3 { a } else { a + 1 };
            env.push_input(0, &a.to_le_bytes());
            env.push_input(0, &b.to_le_bytes());
            env
        });
        let config = ErConfig {
            sym: SymConfig {
                solver_budget: Budget::small(),
                max_steps: 50_000_000,
                always_concretize: false,
                ..SymConfig::default()
            },
            final_budget: Budget::small(),
            ..ErConfig::default()
        };
        let report = Reconstructor::new(config).reconstruct(&d);
        assert!(report.reproduced(), "outcome: {:?}", report.outcome);
        assert!(
            report.occurrences >= 2,
            "expected at least one stall iteration, got {}",
            report.occurrences
        );
        assert!(report.iterations[0].stalled.is_some());
        assert!(report.iterations[0].sites_selected > 0);
        assert!(report.iterations[0].longest_chain > 0);
    }

    #[test]
    fn checkpoint_resume_fires_and_preserves_outcome() {
        // A long input-independent crunch prefix (identical events across
        // occurrences) followed by the aliasing stall: the second
        // occurrence must resume from a snapshot inside the shared prefix,
        // and the reproduction must be bit-identical to the uncached,
        // checkpoint-free baseline.
        let _l = er_telemetry::counters::test_mutex().lock().unwrap();
        let src = r#"
            global TBL: [u64; 2048];
            fn main() {
                let h: u64 = 1;
                for k: u64 = 0; k < 300; k = k + 1 {
                    if (h & 1) == 1 { h = h * 3 + 1; } else { h = h / 2 + k; }
                }
                let a: u64 = input_u64(0);
                let b: u64 = input_u64(0);
                let i: u64 = a & 2047;
                let j: u64 = b & 2047;
                TBL[i] = 41;
                if TBL[j] == 41 { abort("aliased"); }
                print(i + h);
            }
        "#;
        let gen = |run: u64| {
            let mut env = Env::new();
            let a = run * 13 + 5;
            let b = if run % 7 == 3 { a } else { a + 1 };
            env.push_input(0, &a.to_le_bytes());
            env.push_input(0, &b.to_le_bytes());
            env
        };
        let run_with = |sym: SymConfig| {
            let d = deploy(src, gen);
            let config = ErConfig {
                sym,
                final_budget: Budget::small(),
                ..ErConfig::default()
            };
            Reconstructor::new(config).reconstruct(&d)
        };
        let _g = er_telemetry::ensure_counters();
        let before = er_telemetry::local_snapshot();
        let optimized = run_with(SymConfig {
            solver_budget: Budget::small(),
            checkpoint_every: 64,
            ..SymConfig::default()
        });
        let resumes = er_telemetry::local_snapshot()
            .delta(&before)
            .get("symex.checkpoint_resumes");
        assert!(resumes > 0, "expected at least one checkpoint resume");
        let baseline = run_with(SymConfig {
            solver_budget: Budget::small(),
            incremental_solver: false,
            checkpoint_every: 0,
            ..SymConfig::default()
        });
        assert!(optimized.reproduced(), "{:?}", optimized.outcome);
        assert!(baseline.reproduced(), "{:?}", baseline.outcome);
        assert_eq!(optimized.occurrences, baseline.occurrences);
        assert_eq!(
            optimized.outcome.test_case().unwrap().inputs,
            baseline.outcome.test_case().unwrap().inputs
        );
        let summarize = |r: &ReconstructionReport| {
            r.iterations
                .iter()
                .map(|it| {
                    (
                        it.recorded_bytes,
                        it.new_sites.clone(),
                        it.stalled.is_some(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(summarize(&optimized), summarize(&baseline));
    }

    #[test]
    fn wrapped_ring_buffer_cannot_be_shepherded() {
        // The paper sizes the 64 MB ring to the largest trace it collects
        // (§4); an undersized ring drops the trace prefix and shepherding
        // correctly refuses to follow the gap rather than mis-replaying.
        let d = deploy(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                let h: u32 = a;
                for i: u32 = 0; i < 20000; i = i + 1 {
                    if (h & 1) == 1 { h = h * 3 + 1; } else { h = h / 2 + i; }
                }
                if a == 3 { abort("three"); }
                print(h);
            }
            "#,
            |run| {
                let mut env = Env::new();
                env.push_input(0, &(run as u32).to_le_bytes());
                env
            },
        )
        .with_pt_config(er_pt::sink::PtConfig {
            ring_bytes: 512, // far too small: the trace wraps
            ..er_pt::sink::PtConfig::default()
        });
        let config = ErConfig {
            max_occurrences: 3,
            // This failure is one-shot (a == 3 happens on exactly one run),
            // so the gap-stall retry would otherwise scan the full default
            // reoccurrence window before giving up.
            max_runs_per_occurrence: 100,
            ..ErConfig::default()
        };
        let report = Reconstructor::new(config).reconstruct(&d);
        assert!(!report.reproduced());
        // Every iteration sees the gap and is retried until the limit.
        assert!(report.iterations.iter().all(|it| it
            .stalled
            .as_deref()
            .is_some_and(|s| s.contains("TraceGap"))));
    }

    #[test]
    fn tracing_warmup_defers_monitoring() {
        let d = deploy(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a % 3 == 1 { abort("mod3"); }
                print(a);
            }
            "#,
            |run| {
                let mut env = Env::new();
                env.push_input(0, &(run as u32).to_le_bytes());
                env
            },
        );
        let config = ErConfig {
            tracing_warmup: 2,
            ..ErConfig::default()
        };
        let report = Reconstructor::new(config).reconstruct(&d);
        assert!(report.reproduced(), "{:?}", report.outcome);
        // Two untraced observations + one traced reconstruction.
        assert_eq!(report.occurrences, 3);
        assert_eq!(
            report.iterations.len(),
            1,
            "only the traced occurrence is analyzed"
        );
        // The traced occurrence is the third failing run (runs 1, 4, 7).
        assert_eq!(report.iterations[0].run_index, 7);
    }

    #[test]
    fn gives_up_without_failures() {
        let d = deploy("fn main() { print(1); }", |_| Env::new());
        let config = ErConfig {
            max_runs_per_occurrence: 5,
            ..ErConfig::default()
        };
        let report = Reconstructor::new(config).reconstruct(&d);
        assert!(matches!(
            report.outcome,
            Outcome::GaveUp(GiveUpReason::NoFailureObserved)
        ));
    }

    #[test]
    fn random_selector_can_be_configured() {
        let d = deploy(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a == 3 { abort("three"); }
            }
            "#,
            |run| {
                let mut env = Env::new();
                env.push_input(0, &(run as u32).to_le_bytes());
                env
            },
        );
        let config = ErConfig {
            selector: SelectorKind::Random { seed: 42 },
            ..ErConfig::default()
        };
        // This failure solves on the first trace, so the selector is moot;
        // the test checks the configuration path.
        let report = Reconstructor::new(config).reconstruct(&d);
        assert!(report.reproduced());
    }
}
