//! Constraint-graph analysis (paper §3.2-§3.3.1).
//!
//! The "constraint graph" is the expression DAG the shepherded run built:
//! nodes are operations, constants, symbolic inputs, arrays, and symbolic
//! memory reads/writes; edges are operand dependencies. This module finds
//! the two patterns the paper identifies as the main sources of constraint
//! complexity — the **longest symbolic write chain** and the chain updating
//! the **largest symbolic memory object** — and extracts the *bottleneck
//! set*: every symbolic value read or written by operations in those
//! chains.

use er_solver::expr::{ArrayNode, ArrayRef, ExprPool, ExprRef, Node};
use std::collections::{HashMap, HashSet};

/// One symbolic value in the bottleneck set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BottleneckElement {
    /// The symbolic value.
    pub expr: ExprRef,
    /// Its size in bytes (the `sizeof` factor of the recording cost).
    pub size_bytes: u64,
}

/// A symbolic write chain: the `Write` nodes from a chain top down to the
/// base array.
#[derive(Debug, Clone)]
pub struct WriteChain {
    /// Topmost array node of the chain.
    pub top: ArrayRef,
    /// Number of `Write` nodes.
    pub len: u64,
    /// The base array's size in bytes.
    pub object_bytes: u64,
    /// The base array's diagnostic name.
    pub object_name: String,
}

/// The analyzed constraint graph.
#[derive(Debug)]
pub struct ConstraintGraph {
    /// Total expression nodes (paper §5.3 reports graph sizes).
    pub node_count: usize,
    /// Total array nodes.
    pub array_node_count: usize,
    /// Longest symbolic write chain found.
    pub longest_chain: Option<WriteChain>,
    /// Chain updating the largest symbolic object (may equal
    /// `longest_chain`).
    pub largest_object_chain: Option<WriteChain>,
    /// The bottleneck set (paper §3.3.2).
    pub bottleneck: Vec<BottleneckElement>,
}

impl ConstraintGraph {
    /// Analyzes the pool built by a shepherded run.
    ///
    /// `path` is consulted so that only arrays actually involved in the
    /// run's constraints are considered.
    pub fn analyze(pool: &ExprPool) -> ConstraintGraph {
        // Depth of every array node (number of Write nodes down to base).
        let n_arrays = pool.array_count();
        let mut depth = vec![0u64; n_arrays];
        let mut has_parent = vec![false; n_arrays];
        for i in 0..n_arrays {
            if let ArrayNode::Store { arr, .. } = pool.array_node(ArrayRef(i as u32)) {
                depth[i] = depth[arr.0 as usize] + 1;
                has_parent[arr.0 as usize] = true;
            }
        }
        // Chain tops: store nodes no other store builds on. (Intermediate
        // states are prefixes of their top's chain.) Base arrays that are
        // *read* through a symbolic index also participate — "the size of
        // the accessed symbolic memory" (§3.3.1) burdens the solver whether
        // or not the object was ever symbolically written.
        let mut tops: Vec<ArrayRef> = (0..n_arrays)
            .filter(|&i| {
                !has_parent[i]
                    && matches!(pool.array_node(ArrayRef(i as u32)), ArrayNode::Store { .. })
            })
            .map(|i| ArrayRef(i as u32))
            .collect();
        let mut read_bases: Vec<ArrayRef> = (0..pool.len() as u32)
            .map(ExprRef)
            .filter_map(|e| match pool.node(e) {
                Node::Read { arr, index } if pool.as_const(*index).is_none() => {
                    Some(base_of(pool, *arr))
                }
                _ => None,
            })
            .collect();
        read_bases.sort_unstable();
        read_bases.dedup();
        tops.extend(read_bases);
        tops.sort_unstable();
        tops.dedup();

        let describe = |top: ArrayRef| -> WriteChain {
            let base = base_of(pool, top);
            let ArrayNode::Base(id) = pool.array_node(base) else {
                unreachable!("base_of returns a base");
            };
            let decl = pool.array_decl(*id);
            WriteChain {
                top,
                len: depth[top.0 as usize],
                object_bytes: decl.len * u64::from(decl.elem_bits) / 8,
                object_name: decl.name.clone(),
            }
        };

        let longest_chain = tops
            .iter()
            .max_by_key(|t| depth[t.0 as usize])
            .map(|&t| describe(t));
        // The largest-object chain breaks ties toward a *different* base
        // array than the longest chain: when two equally large objects are
        // in play (e.g. a hash table and the pointer table it guards), the
        // two-chain heuristic should cover both, or selection starves on
        // whichever object it ignored.
        let longest_base = longest_chain.as_ref().map(|c| base_of(pool, c.top));
        let largest_object_chain = tops
            .iter()
            .map(|&t| (base_of(pool, t), describe(t)))
            .max_by_key(|(base, c)| (c.object_bytes, Some(*base) != longest_base, c.len))
            .map(|(_, c)| c);

        // The bottleneck set: symbolic values read/written by operations in
        // the two chains.
        let mut chain_arrays: HashSet<ArrayRef> = HashSet::new();
        for chain in [&longest_chain, &largest_object_chain]
            .into_iter()
            .flatten()
        {
            let mut cur = chain.top;
            loop {
                chain_arrays.insert(cur);
                match pool.array_node(cur) {
                    ArrayNode::Store { arr, .. } => cur = *arr,
                    ArrayNode::Base(_) => break,
                }
            }
        }

        let mut bottleneck: Vec<BottleneckElement> = Vec::new();
        let mut seen: HashSet<ExprRef> = HashSet::new();
        let push = |pool: &ExprPool,
                    e: ExprRef,
                    out: &mut Vec<BottleneckElement>,
                    seen: &mut HashSet<ExprRef>| {
            if pool.as_const(e).is_some() || !seen.insert(e) {
                return;
            }
            out.push(BottleneckElement {
                expr: e,
                size_bytes: u64::from(pool.sort(e).bits().div_ceil(8)),
            });
        };
        // Writes in the chains: their indices and values.
        for &a in &chain_arrays {
            if let ArrayNode::Store { index, value, .. } = pool.array_node(a) {
                push(pool, *index, &mut bottleneck, &mut seen);
                push(pool, *value, &mut bottleneck, &mut seen);
            }
        }
        // Reads over the chains: their indices and the read results
        // themselves (the paper's `V[x]` element).
        for i in 0..pool.len() {
            let e = ExprRef(i as u32);
            if let Node::Read { arr, index } = pool.node(e) {
                if chain_arrays.contains(arr) {
                    push(pool, *index, &mut bottleneck, &mut seen);
                    push(pool, e, &mut bottleneck, &mut seen);
                }
            }
        }
        // Deterministic order for downstream processing.
        bottleneck.sort_by_key(|b| b.expr);

        if er_telemetry::enabled() {
            er_telemetry::counter!("select.graph_nodes").add(pool.len() as u64);
            er_telemetry::counter!("select.array_nodes").add(n_arrays as u64);
        }
        ConstraintGraph {
            node_count: pool.len(),
            array_node_count: n_arrays,
            longest_chain,
            largest_object_chain,
            bottleneck,
        }
    }

    /// Whether the graph exhibits either complexity pattern.
    pub fn has_chains(&self) -> bool {
        self.longest_chain.is_some()
    }
}

/// The base array underneath `a`.
pub fn base_of(pool: &ExprPool, mut a: ArrayRef) -> ArrayRef {
    while let ArrayNode::Store { arr, .. } = pool.array_node(a) {
        a = *arr;
    }
    a
}

/// The direct sub-expressions of `e`, including (for reads) the indices and
/// values of every store on the underlying chain — the graph's "address
/// dependency" edges from Fig. 4.
pub fn children(pool: &ExprPool, e: ExprRef) -> Vec<ExprRef> {
    match pool.node(e) {
        Node::Const { .. } | Node::BoolConst(_) | Node::Var { .. } => vec![],
        Node::Bin { a, b, .. } | Node::Cmp { a, b, .. } => vec![*a, *b],
        Node::AndB(a, b) | Node::OrB(a, b) => vec![*a, *b],
        Node::Not(a) | Node::ZExt { a, .. } | Node::Trunc { a, .. } | Node::BoolToBv { a, .. } => {
            vec![*a]
        }
        Node::Ite {
            cond,
            then_e,
            else_e,
        } => vec![*cond, *then_e, *else_e],
        Node::Read { arr, index } => {
            let mut deps = vec![*index];
            let mut cur = *arr;
            while let ArrayNode::Store { arr, index, value } = pool.array_node(cur) {
                deps.push(*index);
                deps.push(*value);
                cur = *arr;
            }
            deps
        }
    }
}

/// Computes which expressions become concrete ("deducible") once every
/// expression in `given` is known — the closure used both to shrink the
/// recording set (paper's `V[x]` example) and to validate selections.
#[derive(Debug)]
pub struct Deducibility<'p> {
    pool: &'p ExprPool,
    given: HashSet<ExprRef>,
    memo: HashMap<ExprRef, bool>,
}

impl<'p> Deducibility<'p> {
    /// A checker treating `given` as known values.
    pub fn new(pool: &'p ExprPool, given: impl IntoIterator<Item = ExprRef>) -> Self {
        Deducibility {
            pool,
            given: given.into_iter().collect(),
            memo: HashMap::new(),
        }
    }

    /// Whether `e`'s concrete value is determined by the given set.
    pub fn deducible(&mut self, e: ExprRef) -> bool {
        if let Some(&d) = self.memo.get(&e) {
            return d;
        }
        // Break potential (impossible in a DAG) cycles pessimistically.
        self.memo.insert(e, false);
        let d = if self.given.contains(&e) || self.pool.as_const(e).is_some() {
            true
        } else {
            match self.pool.node(e) {
                Node::Var { .. } => false,
                Node::Read { arr, index } => {
                    let idx = *index;
                    let mut ok = self.deducible(idx);
                    let mut cur = *arr;
                    while ok {
                        match self.pool.array_node(cur) {
                            ArrayNode::Store { arr, index, value } => {
                                let (i2, v2, below) = (*index, *value, *arr);
                                ok = self.deducible(i2) && self.deducible(v2);
                                cur = below;
                            }
                            ArrayNode::Base(_) => break,
                        }
                    }
                    ok
                }
                _ => {
                    let kids = children(self.pool, e);
                    kids.into_iter().all(|c| self.deducible(c))
                }
            }
        };
        self.memo.insert(e, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_solver::expr::{BvOp, CmpKind};

    /// Builds the paper's Fig. 3/4 constraint structure by hand.
    fn fig4_pool() -> (ExprPool, [ExprRef; 5]) {
        let mut p = ExprPool::new();
        let la = p.var("a", 32);
        let lb = p.var("b", 32);
        let lc = p.var("c", 32);
        let ld = p.var("d", 32);
        let x = p.bin(BvOp::Add, la, lb);
        let v = p.array("V", 1024, 8, None);
        let x64 = p.zext(x, 64);
        let one = p.bv_const(1, 8);
        // Write2 = Write(V, x, 1)
        let w2 = p.write(v, x64, one);
        // Read3 = Read(Write2, c); Eq3: Read3 == 0
        let lc64 = p.zext(lc, 64);
        let r3 = p.read(w2, lc64);
        let zero8 = p.bv_const(0, 8);
        let _eq3 = p.cmp(CmpKind::Eq, r3, zero8);
        // Write3 = Write(Write2, c, 512->8bit truncated stand-in)
        let v512 = p.bv_const(0xff, 8);
        let w3 = p.write(w2, lc64, v512);
        // Read4 = Read(Write3, x); Write4 = Write(Write3, Read4, x)
        let r4 = p.read(w3, x64);
        let r4_64 = p.zext(r4, 64);
        let x8 = p.trunc(x, 8);
        let w4 = p.write(w3, r4_64, x8);
        // Read5 = Read(Write4, d)
        let ld64 = p.zext(ld, 64);
        let r5 = p.read(w4, ld64);
        let _eq5 = p.cmp(CmpKind::Eq, r5, x8);
        (p, [la, lb, lc, ld, x])
    }

    #[test]
    fn finds_longest_chain_and_object() {
        let (p, _) = fig4_pool();
        let g = ConstraintGraph::analyze(&p);
        assert!(g.has_chains());
        let chain = g.longest_chain.as_ref().unwrap();
        assert_eq!(chain.len, 3, "Write2 -> Write3 -> Write4");
        assert_eq!(chain.object_name, "V");
        assert_eq!(chain.object_bytes, 1024);
        let largest = g.largest_object_chain.as_ref().unwrap();
        assert_eq!(largest.object_name, "V");
        assert!(g.node_count > 0);
    }

    #[test]
    fn bottleneck_contains_paper_elements() {
        let (p, [_, _, lc, _, x]) = fig4_pool();
        let g = ConstraintGraph::analyze(&p);
        let exprs: HashSet<ExprRef> = g.bottleneck.iter().map(|b| b.expr).collect();
        // x (as zext to 64, the store index) and λc must be involved.
        let x64 = exprs
            .iter()
            .any(|&e| matches!(p.node(e), Node::ZExt { a, .. } if *a == x));
        assert!(x64, "x's address use is in the bottleneck set");
        let lc64 = exprs
            .iter()
            .any(|&e| matches!(p.node(e), Node::ZExt { a, .. } if *a == lc));
        assert!(lc64, "λc's address use is in the bottleneck set");
        // The Read result V[x] is in the set.
        let has_read = exprs
            .iter()
            .any(|&e| matches!(p.node(e), Node::Read { .. }));
        assert!(has_read, "a read value is in the bottleneck set");
    }

    #[test]
    fn no_chains_without_symbolic_writes() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let _s = p.bin(BvOp::Add, x, y);
        let g = ConstraintGraph::analyze(&p);
        assert!(!g.has_chains());
        assert!(g.bottleneck.is_empty());
    }

    #[test]
    fn deducibility_propagates_through_ops() {
        let mut p = ExprPool::new();
        let a = p.var("a", 32);
        let b = p.var("b", 32);
        let sum = p.bin(BvOp::Add, a, b);
        let mut d = Deducibility::new(&p, [a, b]);
        assert!(d.deducible(sum));
        let mut d2 = Deducibility::new(&p, [a]);
        assert!(!d2.deducible(sum));
        let mut d3 = Deducibility::new(&p, [sum]);
        assert!(d3.deducible(sum));
        assert!(!d3.deducible(a), "a sum does not determine its operands");
    }

    #[test]
    fn deducibility_resolves_reads_with_known_chain() {
        // The paper's key example: given x and λc, V[x] becomes deducible.
        let (p, [la, lb, lc, _, _]) = fig4_pool();
        let read4 = (0..p.len())
            .map(|i| ExprRef(i as u32))
            .find(|&e| {
                // Read over a chain of length 2 (Write3).
                if let Node::Read { arr, .. } = p.node(e) {
                    let mut n = 0;
                    let mut cur = *arr;
                    while let ArrayNode::Store { arr, .. } = p.array_node(cur) {
                        n += 1;
                        cur = *arr;
                    }
                    n == 2
                } else {
                    false
                }
            })
            .expect("Read4 exists");
        // Given a, b, c: x = a+b deducible, chain indices/values deducible,
        // so Read4 (V[x]) is deducible.
        let mut d = Deducibility::new(&p, [la, lb, lc]);
        assert!(d.deducible(read4));
        // Without c, the chain's second store index is unknown.
        let mut d2 = Deducibility::new(&p, [la, lb]);
        assert!(!d2.deducible(read4));
    }

    #[test]
    fn children_of_read_cover_address_dependencies() {
        let (p, _) = fig4_pool();
        for i in 0..p.len() {
            let e = ExprRef(i as u32);
            if let Node::Read { .. } = p.node(e) {
                assert!(!children(&p, e).is_empty());
            }
        }
    }
}
