//! Execution Reconstruction (ER): the paper's primary contribution.
//!
//! ER reproduces a production failure by iterating (Fig. 2 of the paper):
//!
//! 1. **Online monitoring** — the deployed program runs under always-on
//!    PT-style control-flow tracing ([`deploy`]); when the failure occurs,
//!    the trace ships to the analysis engine.
//! 2. **Shepherded symbolic execution** — the trace steers the symbolic
//!    executor down the single failing path ([`shepherd`], built on
//!    [`er_symex`]). If the solver stalls, ER
//! 3. **builds the constraint graph** ([`graph`]) and
//! 4. **selects key data values** ([`select`]): the bottleneck set from the
//!    longest symbolic write chain and the largest accessed symbolic
//!    object, reduced to a cheaper recording set by cost-driven search.
//! 5. **Instruments** the program with `ptwrite` at the chosen sites
//!    ([`instrument`]) and redeploys, waiting for the failure to reoccur.
//!
//! When shepherded execution completes, the final constraint solve yields a
//! concrete [`testcase::TestCase`] guaranteed to drive the program down the
//! same control flow into the same failure; [`reconstruct`] wires the whole
//! loop together and verifies the test case by replaying it.
//!
//! # Example
//!
//! ```
//! use er_core::deploy::Deployment;
//! use er_core::reconstruct::{ErConfig, Outcome, Reconstructor};
//! use er_minilang::compile;
//! use er_minilang::env::Env;
//!
//! // A failure that needs input reconstruction: crash when a*3 == 21.
//! let program = compile(
//!     r#"
//!     fn main() {
//!         let a: u32 = input_u32(0);
//!         if a * 3 == 21 { abort("boom"); }
//!     }
//!     "#,
//! )?;
//! // "Production" sends a stream of requests; occurrence k carries value k.
//! let deployment = Deployment::new(program, |occurrence| {
//!     let mut env = Env::new();
//!     env.push_input(0, &(occurrence as u32).to_le_bytes());
//!     env
//! });
//! let report = Reconstructor::new(ErConfig::default()).reconstruct(&deployment);
//! let Outcome::Reproduced(test) = report.outcome else {
//!     panic!("expected reproduction");
//! };
//! assert_eq!(test.inputs[0].1, 7u32.to_le_bytes());
//! # Ok::<(), er_minilang::CompileError>(())
//! ```

pub mod deploy;
pub mod graph;
pub mod instrument;
pub mod reconstruct;
pub mod select;
pub mod shepherd;
pub mod testcase;

pub use deploy::{
    Deployment, DeploymentSource, FailureOccurrence, FailureSource, NextFailing, ReoccurrenceModel,
};
pub use graph::ConstraintGraph;
pub use instrument::{InstrumentError, InstrumentedProgram};
pub use reconstruct::{
    ErConfig, OccurrenceInfo, Outcome, ReconstructionReport, ReconstructionSession, Reconstructor,
    SessionStep,
};
pub use select::{RecordingSet, SelectorKind};
pub use testcase::TestCase;
