//! The simulated production deployment (paper Fig. 2, left half).
//!
//! A [`Deployment`] owns the original program and a model of its production
//! workload: an input generator indexed by run number (different users send
//! different requests) and a per-run schedule (different machines interleave
//! threads differently). ER runs the *instrumented* program under always-on
//! PT tracing until the target failure reoccurs.

use crate::instrument::InstrumentedProgram;
use er_minilang::env::Env;
use er_minilang::error::Failure;
use er_minilang::interp::{Machine, RunOutcome, SchedConfig};
use er_minilang::ir::Program;
use er_pt::sink::{PtConfig, PtSink, PtStats, PtTrace};

/// One observed production failure with its shipped runtime trace.
#[derive(Debug)]
pub struct FailureOccurrence {
    /// Failure identity in *original* program coordinates.
    pub failure: Failure,
    /// Failure identity in the instrumented program's coordinates (what
    /// shepherded symbolic execution must match).
    pub failure_instrumented: Failure,
    /// The runtime trace shipped to the analysis engine.
    pub trace: PtTrace,
    /// Which production run failed (0-based).
    pub run_index: u64,
    /// Scheduler configuration of the failing run.
    pub sched: SchedConfig,
    /// Dynamic instructions of the failing run (Table 1's `#Instr`).
    pub instr_count: u64,
    /// Online tracing counters for the failing run.
    pub pt_stats: PtStats,
}

/// Where the next failing run comes from, relative to a run cursor.
///
/// A predictor is an *exactness* contract: every run it skips is guaranteed
/// failure-free. Single-threaded Table-1 workloads fail on a fixed period
/// of their input stream, so their predictors are exact; multithreaded
/// workloads (schedule-dependent failures) get no predictor and fall back
/// to scanning every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextFailing {
    /// Runs fail exactly when `run % period == offset`.
    Periodic {
        /// Failing residue.
        offset: u64,
        /// Period of the failing-input pattern.
        period: u64,
    },
}

impl NextFailing {
    /// The smallest *possibly failing* run at or after `from`.
    pub fn next(&self, from: u64) -> u64 {
        match *self {
            NextFailing::Periodic { offset, period } => {
                debug_assert!(period > 0 && offset < period);
                let rem = from % period;
                if rem <= offset {
                    from + (offset - rem)
                } else {
                    from + period - rem + offset
                }
            }
        }
    }
}

/// How often failures reoccur in production, and whether the simulator may
/// skip the guaranteed-healthy runs in between.
///
/// The paper treats the wait for a reoccurrence as free (the fleet absorbs
/// it); a simulator that *executes* every healthy run serializes on it
/// instead (the wall-time domination noted in PR 2). `fast_forward` plus an
/// exact [`NextFailing`] predictor removes that cost without changing which
/// runs fail, which traces ship, or what gets reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReoccurrenceModel {
    /// Simulated inter-arrival time between production runs (drives the
    /// `deploy.sim_wait_ns` counter and fleet time-to-repro accounting).
    pub inter_arrival_ns: u64,
    /// Skip runs the predictor proves healthy instead of executing them.
    pub fast_forward: bool,
    /// Which runs can fail; `None` means every run must be executed.
    pub predictor: Option<NextFailing>,
}

impl Default for ReoccurrenceModel {
    fn default() -> Self {
        ReoccurrenceModel {
            inter_arrival_ns: 1_000_000, // 1 ms between production runs
            fast_forward: false,
            predictor: None,
        }
    }
}

impl ReoccurrenceModel {
    /// Simulated timestamp at which run `run` completes.
    pub fn sim_ns_for_run(&self, run: u64) -> u64 {
        (run + 1).saturating_mul(self.inter_arrival_ns)
    }
}

/// A simulated production environment for one application.
///
/// Generators are `Send + Sync` so one deployment can serve many concurrent
/// fleet instances (see `er-fleet`).
pub struct Deployment {
    program: Program,
    input_gen: Box<dyn Fn(u64) -> Env + Send + Sync>,
    sched_gen: Box<dyn Fn(u64) -> SchedConfig + Send + Sync>,
    pt_config: PtConfig,
    reoccurrence: ReoccurrenceModel,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("funcs", &self.program.funcs.len())
            .finish_non_exhaustive()
    }
}

impl Deployment {
    /// A deployment of `program` whose run `k` receives `input_gen(k)`.
    pub fn new(program: Program, input_gen: impl Fn(u64) -> Env + Send + Sync + 'static) -> Self {
        Deployment {
            program,
            input_gen: Box::new(input_gen),
            sched_gen: Box::new(|run| SchedConfig {
                quantum: 1_000,
                seed: run + 1,
                max_instrs: 500_000_000,
            }),
            pt_config: PtConfig::default(),
            reoccurrence: ReoccurrenceModel::default(),
        }
    }

    /// Overrides the per-run scheduler configuration.
    pub fn with_sched(
        mut self,
        sched_gen: impl Fn(u64) -> SchedConfig + Send + Sync + 'static,
    ) -> Self {
        self.sched_gen = Box::new(sched_gen);
        self
    }

    /// Overrides the PT configuration (e.g. ring-buffer size).
    pub fn with_pt_config(mut self, config: PtConfig) -> Self {
        self.pt_config = config;
        self
    }

    /// Overrides the reoccurrence inter-arrival model.
    pub fn with_reoccurrence(mut self, model: ReoccurrenceModel) -> Self {
        self.reoccurrence = model;
        self
    }

    /// The reoccurrence model in effect.
    pub fn reoccurrence(&self) -> ReoccurrenceModel {
        self.reoccurrence
    }

    /// The original (uninstrumented) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The environment production run `k` would receive.
    pub fn env_for(&self, run: u64) -> Env {
        (self.input_gen)(run)
    }

    /// The schedule production run `k` would use.
    pub fn sched_for(&self, run: u64) -> SchedConfig {
        (self.sched_gen)(run)
    }

    /// Executes one production run of `inst` under PT tracing.
    pub fn run_once(&self, inst: &InstrumentedProgram, run: u64) -> (RunOutcome, PtTrace, u64) {
        let env = self.env_for(run);
        let sched = self.sched_for(run);
        let report = Machine::with_sink(&inst.program, env, PtSink::new(self.pt_config))
            .with_sched(sched)
            .run();
        (report.outcome, report.sink.finish(), report.instr_count)
    }

    /// Executes one *unmonitored* production run (tracing disabled — the
    /// paper's §3.1 option of enabling tracing only after a failure has
    /// been observed several times).
    pub fn run_once_untraced(&self, inst: &InstrumentedProgram, run: u64) -> (RunOutcome, u64) {
        let env = self.env_for(run);
        let sched = self.sched_for(run);
        let report = Machine::new(&inst.program, env).with_sched(sched).run();
        (report.outcome, report.instr_count)
    }

    /// Fast-forward: the next run at or after `run` worth executing. Runs
    /// in between are proven healthy by the predictor and are skipped
    /// (counted, and charged simulated waiting time, but never executed).
    fn skip_healthy(&self, run: u64, end: u64) -> u64 {
        let next = match (self.reoccurrence.fast_forward, self.reoccurrence.predictor) {
            (true, Some(p)) => p.next(run).min(end),
            _ => run,
        };
        if next > run {
            er_telemetry::counter!("deploy.runs_skipped").add(next - run);
            er_telemetry::counter!("deploy.sim_wait_ns")
                .add((next - run).saturating_mul(self.reoccurrence.inter_arrival_ns));
        }
        next
    }

    /// Waits (without tracing) until a failure matching `target` occurs;
    /// returns the failing run index and the failure in original
    /// coordinates.
    pub fn observe_failure_untraced(
        &self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
        start_run: u64,
        max_runs: u64,
    ) -> Option<(u64, Failure)> {
        let end = start_run.saturating_add(max_runs);
        let mut run = start_run;
        while run < end {
            run = self.skip_healthy(run, end);
            if run >= end {
                break;
            }
            let (outcome, _) = self.run_once_untraced(inst, run);
            er_telemetry::counter!("deploy.sim_wait_ns").add(self.reoccurrence.inter_arrival_ns);
            if let RunOutcome::Failure(f) = outcome {
                let original = inst.failure_to_original(&f);
                if target.is_none_or(|t| original.same_failure(t)) {
                    return Some((run, original));
                }
            }
            run += 1;
        }
        None
    }

    /// Runs production until a failure occurs that matches `target` (any
    /// failure if `target` is `None`), starting at `start_run` and giving
    /// up after `max_runs` runs.
    pub fn run_until_failure(
        &self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
        start_run: u64,
        max_runs: u64,
    ) -> Option<FailureOccurrence> {
        let end = start_run.saturating_add(max_runs);
        let mut run = start_run;
        while run < end {
            run = self.skip_healthy(run, end);
            if run >= end {
                break;
            }
            let (outcome, mut trace, instr_count) = self.run_once(inst, run);
            er_telemetry::counter!("deploy.runs").incr();
            er_telemetry::counter!("deploy.sim_wait_ns").add(self.reoccurrence.inter_arrival_ns);
            if let RunOutcome::Failure(f) = outcome {
                er_telemetry::counter!("deploy.failures").incr();
                let original = inst.failure_to_original(&f);
                if target.is_none_or(|t| original.same_failure(t)) {
                    // Fault injection tampers with the shipped trace only
                    // (never the healthy runs in between), modeling ring
                    // corruption between the CPU and the crash handler.
                    trace.chaos_tamper();
                    let pt_stats = trace.stats;
                    return Some(FailureOccurrence {
                        failure: original,
                        failure_instrumented: f,
                        trace,
                        run_index: run,
                        sched: self.sched_for(run),
                        instr_count,
                        pt_stats,
                    });
                }
            }
            run += 1;
        }
        None
    }
}

/// A stream of failure occurrences for one investigation — the abstraction
/// that lets [`crate::Reconstructor`] consume failures from a single
/// simulated deployment *or* from a fleet of instances (`er-fleet`) without
/// knowing which.
pub trait FailureSource {
    /// The original (uninstrumented) program under investigation.
    fn program(&self) -> &Program;

    /// Blocks (in simulation terms) until the next failure matching
    /// `target` occurs on an instance running `inst`, and ships its trace.
    /// `None` means the source gave up waiting.
    fn next_occurrence(
        &mut self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
    ) -> Option<FailureOccurrence>;

    /// Like [`next_occurrence`](Self::next_occurrence) but unmonitored
    /// (tracing off) — the warmup posture of paper §3.1. Returns the
    /// failing run index and the failure in original coordinates.
    fn next_untraced(
        &mut self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
    ) -> Option<(u64, Failure)>;
}

/// The single-deployment [`FailureSource`]: a cursor over one simulated
/// production run stream.
pub struct DeploymentSource<'a> {
    deployment: &'a Deployment,
    next_run: u64,
    max_runs_per_wait: u64,
}

impl<'a> DeploymentSource<'a> {
    /// A source scanning `deployment` from run 0, giving up on any single
    /// wait after `max_runs_per_wait` runs.
    pub fn new(deployment: &'a Deployment, max_runs_per_wait: u64) -> Self {
        DeploymentSource {
            deployment,
            next_run: 0,
            max_runs_per_wait,
        }
    }

    /// The next run index the source would execute.
    pub fn cursor(&self) -> u64 {
        self.next_run
    }
}

impl FailureSource for DeploymentSource<'_> {
    fn program(&self) -> &Program {
        self.deployment.program()
    }

    fn next_occurrence(
        &mut self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
    ) -> Option<FailureOccurrence> {
        let occ = self.deployment.run_until_failure(
            inst,
            target,
            self.next_run,
            self.max_runs_per_wait,
        )?;
        self.next_run = occ.run_index + 1;
        Some(occ)
    }

    fn next_untraced(
        &mut self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
    ) -> Option<(u64, Failure)> {
        let (run, failure) = self.deployment.observe_failure_untraced(
            inst,
            target,
            self.next_run,
            self.max_runs_per_wait,
        )?;
        self.next_run = run + 1;
        Some((run, failure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;

    fn deployment() -> Deployment {
        let program = compile(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a % 5 == 3 { abort("mod5"); }
                print(a);
            }
            "#,
        )
        .unwrap();
        Deployment::new(program, |run| {
            let mut env = Env::new();
            env.push_input(0, &(run as u32).to_le_bytes());
            env
        })
    }

    #[test]
    fn waits_for_matching_failure() {
        let d = deployment();
        let inst = InstrumentedProgram::unmodified(d.program());
        let occ = d.run_until_failure(&inst, None, 0, 100).unwrap();
        assert_eq!(occ.run_index, 3, "run 3 is the first with a%5==3");
        assert!(occ.instr_count > 0);
        assert!(occ.pt_stats.branches > 0);
        // The next occurrence of the same failure.
        let occ2 = d
            .run_until_failure(&inst, Some(&occ.failure), occ.run_index + 1, 100)
            .unwrap();
        assert_eq!(occ2.run_index, 8);
        assert!(occ2.failure.same_failure(&occ.failure));
    }

    #[test]
    fn gives_up_when_no_failure() {
        let program = compile("fn main() { print(1); }").unwrap();
        let d = Deployment::new(program, |_| Env::new());
        let inst = InstrumentedProgram::unmodified(d.program());
        assert!(d.run_until_failure(&inst, None, 0, 10).is_none());
    }

    #[test]
    fn periodic_predictor_finds_next_failing_run() {
        let p = NextFailing::Periodic {
            offset: 3,
            period: 5,
        };
        assert_eq!(p.next(0), 3);
        assert_eq!(p.next(3), 3);
        assert_eq!(p.next(4), 8);
        assert_eq!(p.next(8), 8);
        assert_eq!(p.next(9), 13);
    }

    #[test]
    fn fast_forward_is_occurrence_exact() {
        // The mod-5 deployment fails exactly when run % 5 == 3, so the
        // periodic predictor is exact: fast-forwarding must yield the same
        // occurrence sequence as scanning every run.
        let scan = deployment();
        let fast = deployment().with_reoccurrence(ReoccurrenceModel {
            inter_arrival_ns: 500,
            fast_forward: true,
            predictor: Some(NextFailing::Periodic {
                offset: 3,
                period: 5,
            }),
        });
        let inst = InstrumentedProgram::unmodified(scan.program());
        let mut at = 0;
        for _ in 0..4 {
            let a = scan.run_until_failure(&inst, None, at, 100).unwrap();
            let b = fast.run_until_failure(&inst, None, at, 100).unwrap();
            assert_eq!(a.run_index, b.run_index);
            assert_eq!(a.trace.bytes, b.trace.bytes);
            assert_eq!(a.instr_count, b.instr_count);
            at = a.run_index + 1;
        }
    }

    #[test]
    fn fast_forward_respects_run_budget() {
        let fast = deployment().with_reoccurrence(ReoccurrenceModel {
            inter_arrival_ns: 500,
            fast_forward: true,
            predictor: Some(NextFailing::Periodic {
                offset: 3,
                period: 5,
            }),
        });
        let inst = InstrumentedProgram::unmodified(fast.program());
        // Budget of 3 runs starting at 0 never reaches run 3.
        assert!(fast.run_until_failure(&inst, None, 0, 3).is_none());
        assert!(fast.run_until_failure(&inst, None, 0, 4).is_some());
    }

    #[test]
    fn deployment_source_advances_cursor() {
        let d = deployment();
        let inst = InstrumentedProgram::unmodified(d.program());
        let mut src = DeploymentSource::new(&d, 100);
        let occ = src.next_occurrence(&inst, None).unwrap();
        assert_eq!(occ.run_index, 3);
        assert_eq!(src.cursor(), 4);
        let (run, failure) = src.next_untraced(&inst, Some(&occ.failure)).unwrap();
        assert_eq!(run, 8);
        assert!(failure.same_failure(&occ.failure));
        assert_eq!(src.cursor(), 9);
    }
}
