//! The simulated production deployment (paper Fig. 2, left half).
//!
//! A [`Deployment`] owns the original program and a model of its production
//! workload: an input generator indexed by run number (different users send
//! different requests) and a per-run schedule (different machines interleave
//! threads differently). ER runs the *instrumented* program under always-on
//! PT tracing until the target failure reoccurs.

use crate::instrument::InstrumentedProgram;
use er_minilang::env::Env;
use er_minilang::error::Failure;
use er_minilang::interp::{Machine, RunOutcome, SchedConfig};
use er_minilang::ir::Program;
use er_pt::sink::{PtConfig, PtSink, PtStats, PtTrace};

/// One observed production failure with its shipped runtime trace.
#[derive(Debug)]
pub struct FailureOccurrence {
    /// Failure identity in *original* program coordinates.
    pub failure: Failure,
    /// Failure identity in the instrumented program's coordinates (what
    /// shepherded symbolic execution must match).
    pub failure_instrumented: Failure,
    /// The runtime trace shipped to the analysis engine.
    pub trace: PtTrace,
    /// Which production run failed (0-based).
    pub run_index: u64,
    /// Scheduler configuration of the failing run.
    pub sched: SchedConfig,
    /// Dynamic instructions of the failing run (Table 1's `#Instr`).
    pub instr_count: u64,
    /// Online tracing counters for the failing run.
    pub pt_stats: PtStats,
}

/// A simulated production environment for one application.
pub struct Deployment {
    program: Program,
    input_gen: Box<dyn Fn(u64) -> Env>,
    sched_gen: Box<dyn Fn(u64) -> SchedConfig>,
    pt_config: PtConfig,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("funcs", &self.program.funcs.len())
            .finish_non_exhaustive()
    }
}

impl Deployment {
    /// A deployment of `program` whose run `k` receives `input_gen(k)`.
    pub fn new(program: Program, input_gen: impl Fn(u64) -> Env + 'static) -> Self {
        Deployment {
            program,
            input_gen: Box::new(input_gen),
            sched_gen: Box::new(|run| SchedConfig {
                quantum: 1_000,
                seed: run + 1,
                max_instrs: 500_000_000,
            }),
            pt_config: PtConfig::default(),
        }
    }

    /// Overrides the per-run scheduler configuration.
    pub fn with_sched(mut self, sched_gen: impl Fn(u64) -> SchedConfig + 'static) -> Self {
        self.sched_gen = Box::new(sched_gen);
        self
    }

    /// Overrides the PT configuration (e.g. ring-buffer size).
    pub fn with_pt_config(mut self, config: PtConfig) -> Self {
        self.pt_config = config;
        self
    }

    /// The original (uninstrumented) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The environment production run `k` would receive.
    pub fn env_for(&self, run: u64) -> Env {
        (self.input_gen)(run)
    }

    /// The schedule production run `k` would use.
    pub fn sched_for(&self, run: u64) -> SchedConfig {
        (self.sched_gen)(run)
    }

    /// Executes one production run of `inst` under PT tracing.
    pub fn run_once(&self, inst: &InstrumentedProgram, run: u64) -> (RunOutcome, PtTrace, u64) {
        let env = self.env_for(run);
        let sched = self.sched_for(run);
        let report = Machine::with_sink(&inst.program, env, PtSink::new(self.pt_config))
            .with_sched(sched)
            .run();
        (report.outcome, report.sink.finish(), report.instr_count)
    }

    /// Executes one *unmonitored* production run (tracing disabled — the
    /// paper's §3.1 option of enabling tracing only after a failure has
    /// been observed several times).
    pub fn run_once_untraced(&self, inst: &InstrumentedProgram, run: u64) -> (RunOutcome, u64) {
        let env = self.env_for(run);
        let sched = self.sched_for(run);
        let report = Machine::new(&inst.program, env).with_sched(sched).run();
        (report.outcome, report.instr_count)
    }

    /// Waits (without tracing) until a failure matching `target` occurs;
    /// returns the failing run index and the failure in original
    /// coordinates.
    pub fn observe_failure_untraced(
        &self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
        start_run: u64,
        max_runs: u64,
    ) -> Option<(u64, Failure)> {
        for run in start_run..start_run + max_runs {
            let (outcome, _) = self.run_once_untraced(inst, run);
            if let RunOutcome::Failure(f) = outcome {
                let original = inst.failure_to_original(&f);
                if target.is_none_or(|t| original.same_failure(t)) {
                    return Some((run, original));
                }
            }
        }
        None
    }

    /// Runs production until a failure occurs that matches `target` (any
    /// failure if `target` is `None`), starting at `start_run` and giving
    /// up after `max_runs` runs.
    pub fn run_until_failure(
        &self,
        inst: &InstrumentedProgram,
        target: Option<&Failure>,
        start_run: u64,
        max_runs: u64,
    ) -> Option<FailureOccurrence> {
        for run in start_run..start_run + max_runs {
            let (outcome, trace, instr_count) = self.run_once(inst, run);
            er_telemetry::counter!("deploy.runs").incr();
            if let RunOutcome::Failure(f) = outcome {
                er_telemetry::counter!("deploy.failures").incr();
                let original = inst.failure_to_original(&f);
                if target.is_none_or(|t| original.same_failure(t)) {
                    let pt_stats = trace.stats;
                    return Some(FailureOccurrence {
                        failure: original,
                        failure_instrumented: f,
                        trace,
                        run_index: run,
                        sched: self.sched_for(run),
                        instr_count,
                        pt_stats,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;

    fn deployment() -> Deployment {
        let program = compile(
            r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a % 5 == 3 { abort("mod5"); }
                print(a);
            }
            "#,
        )
        .unwrap();
        Deployment::new(program, |run| {
            let mut env = Env::new();
            env.push_input(0, &(run as u32).to_le_bytes());
            env
        })
    }

    #[test]
    fn waits_for_matching_failure() {
        let d = deployment();
        let inst = InstrumentedProgram::unmodified(d.program());
        let occ = d.run_until_failure(&inst, None, 0, 100).unwrap();
        assert_eq!(occ.run_index, 3, "run 3 is the first with a%5==3");
        assert!(occ.instr_count > 0);
        assert!(occ.pt_stats.branches > 0);
        // The next occurrence of the same failure.
        let occ2 = d
            .run_until_failure(&inst, Some(&occ.failure), occ.run_index + 1, 100)
            .unwrap();
        assert_eq!(occ2.run_index, 8);
        assert!(occ2.failure.same_failure(&occ.failure));
    }

    #[test]
    fn gives_up_when_no_failure() {
        let program = compile("fn main() { print(1); }").unwrap();
        let d = Deployment::new(program, |_| Env::new());
        let inst = InstrumentedProgram::unmodified(d.program());
        assert!(d.run_until_failure(&inst, None, 0, 10).is_none());
    }
}
