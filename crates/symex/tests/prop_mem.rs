//! Property test for the symbolic memory: random interleavings of concrete
//! and symbolic stores/loads must agree with a reference byte map once the
//! symbolic variables are bound to their intended values.

use er_minilang::ir::Program;
use er_minilang::value::Width;
use er_solver::expr::{ExprPool, ExprRef, VarId};
use er_solver::simplify::eval_concrete;
use er_symex::{SymMemory, SymValue};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Store a concrete value at a concrete offset.
    StoreConcrete { off: u64, w: Width, value: u64 },
    /// Store a fresh symbolic variable (with an intended value) at a
    /// concrete offset.
    StoreSymbolic { off: u64, w: Width, intended: u64 },
    /// Store through a symbolic address (base + fresh index variable with
    /// an intended value).
    StoreSymbolicAddr { idx: u64, w: Width, value: u64 },
    /// Load and check at a concrete offset.
    Load { off: u64, w: Width },
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..56, width(), any::<u64>()).prop_map(|(off, w, value)| Op::StoreConcrete {
            off,
            w,
            value
        }),
        (0u64..56, width(), any::<u64>()).prop_map(|(off, w, intended)| Op::StoreSymbolic {
            off,
            w,
            intended
        }),
        (0u64..7, width(), any::<u64>()).prop_map(|(idx, w, value)| Op::StoreSymbolicAddr {
            idx,
            w,
            value
        }),
        (0u64..56, width()).prop_map(|(off, w)| Op::Load { off, w }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn symbolic_memory_agrees_with_reference(ops in prop::collection::vec(op(), 1..40)) {
        let mut pool = ExprPool::new();
        let mut mem = SymMemory::new(&Program::default());
        let base = mem.heap_alloc(64, "obj".into());
        // Reference byte map plus intended values for every variable.
        let mut reference = [0u8; 64];
        let mut bindings: HashMap<VarId, u64> = HashMap::new();
        let mut var_n = 0u32;

        let mut fresh = |pool: &mut ExprPool, bindings: &mut HashMap<VarId, u64>, v: u64, bits: u32| -> ExprRef {
            let var = pool.var(format!("v{var_n}"), bits);
            bindings.insert(VarId(var_n), v);
            var_n += 1;
            var
        };

        for op in ops {
            match op {
                Op::StoreConcrete { off, w, value } => {
                    mem.store(&mut pool, base + off, w, SymValue::Concrete(value)).unwrap();
                    for k in 0..w.bytes() {
                        reference[(off + k) as usize] = (value >> (8 * k)) as u8;
                    }
                }
                Op::StoreSymbolic { off, w, intended } => {
                    let v = w.trunc(intended);
                    let var = fresh(&mut pool, &mut bindings, v, w.bits());
                    mem.store(&mut pool, base + off, w, SymValue::Sym(var)).unwrap();
                    for k in 0..w.bytes() {
                        reference[(off + k) as usize] = (v >> (8 * k)) as u8;
                    }
                }
                Op::StoreSymbolicAddr { idx, w, value } => {
                    // addr = base + 8 * idxvar, idxvar intended = idx.
                    let idxvar = fresh(&mut pool, &mut bindings, idx, 64);
                    let eight = pool.bv_const(8, 64);
                    let scaled = pool.bin(er_solver::expr::BvOp::Mul, idxvar, eight);
                    let basec = pool.bv_const(base, 64);
                    let addr = pool.bin(er_solver::expr::BvOp::Add, basec, scaled);
                    mem.store_symbolic(&mut pool, base, addr, w, SymValue::Concrete(value));
                    let off = idx * 8;
                    for k in 0..w.bytes() {
                        reference[(off + k) as usize] = (value >> (8 * k)) as u8;
                    }
                }
                Op::Load { off, w } => {
                    let got = mem.load(&mut pool, base + off, w).unwrap();
                    let mut expect = 0u64;
                    for k in 0..w.bytes() {
                        expect |= u64::from(reference[(off + k) as usize]) << (8 * k);
                    }
                    let bindings = bindings.clone();
                    let got_val = match got {
                        SymValue::Concrete(v) => v,
                        SymValue::Sym(e) => eval_concrete(&pool, e, &move |id| {
                            bindings.get(&id).copied().unwrap_or(0)
                        }),
                    };
                    prop_assert_eq!(got_val, expect, "load at {} width {:?}", off, w);
                }
            }
        }
    }
}
