//! Property test for the headline guarantee: for randomly generated
//! input-dependent failures, shepherded symbolic execution plus constraint
//! solving yields inputs that replay to the *same* failure.

use er_minilang::compile;
use er_minilang::env::Env;
use er_minilang::interp::{Machine, RunOutcome};
use er_pt::sink::{PtConfig, PtSink};
use er_solver::solve::{Budget, SatResult, Solver};
use er_symex::{ShepherdStatus, SymConfig, SymMachine};
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of a random arithmetic pipeline over the accumulator and a
/// fresh input word.
#[derive(Debug, Clone)]
enum Step {
    Add,
    Xor,
    Mul3,
    Shr(u8),
    Mask(u32),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Add),
        Just(Step::Xor),
        Just(Step::Mul3),
        (1u8..8).prop_map(Step::Shr),
        (0xffu32..0xffff).prop_map(Step::Mask),
    ]
}

/// Builds a program that folds `steps.len()` input words into an
/// accumulator and crashes iff the result equals a magic constant.
fn build_source(steps: &[Step]) -> String {
    let mut body = String::from("    let acc: u32 = 1;\n");
    for (i, s) in steps.iter().enumerate() {
        body.push_str(&format!("    let v{i}: u32 = input_u32(0);\n"));
        let update = match s {
            Step::Add => format!("acc + v{i}"),
            Step::Xor => format!("acc ^ v{i}"),
            Step::Mul3 => format!("acc * 3 + v{i}"),
            Step::Shr(k) => format!("(acc >> {k}) + v{i}"),
            Step::Mask(m) => format!("(acc & {m}) ^ v{i}"),
        };
        body.push_str(&format!("    acc = {update};\n"));
    }
    format!(
        "fn main() {{\n{body}    if acc == @MAGIC@ {{\n        abort(\"pipeline hit\");\n    }}\n    print(acc);\n}}\n"
    )
}

/// Runs the pipeline concretely in Rust to find the accumulator the given
/// inputs produce (so the generated magic makes the program crash).
fn reference(steps: &[Step], inputs: &[u32]) -> u32 {
    let mut acc: u32 = 1;
    for (s, &v) in steps.iter().zip(inputs) {
        acc = match s {
            Step::Add => acc.wrapping_add(v),
            Step::Xor => acc ^ v,
            Step::Mul3 => acc.wrapping_mul(3).wrapping_add(v),
            Step::Shr(k) => (acc >> k).wrapping_add(v),
            Step::Mask(m) => (acc & m) ^ v,
        };
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reconstruction guarantee on random arithmetic pipelines.
    #[test]
    fn generated_inputs_reproduce_random_failures(
        steps in prop::collection::vec(step(), 1..6),
        inputs in prop::collection::vec(any::<u32>(), 6),
    ) {
        let inputs = &inputs[..steps.len()];
        let magic = reference(&steps, inputs);
        let src = build_source(&steps).replace("@MAGIC@", &magic.to_string());
        let program = compile(&src).unwrap();

        // Production run: crashes by construction.
        let mut env = Env::new();
        for v in inputs {
            env.push_input(0, &v.to_le_bytes());
        }
        let report = Machine::with_sink(&program, env, PtSink::new(PtConfig::default())).run();
        let RunOutcome::Failure(failure) = report.outcome else {
            return Err(TestCaseError::fail("production run must crash"));
        };
        let events = report.sink.finish().decode().unwrap().events;

        // Shepherd + solve.
        let mut run = SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        prop_assert_eq!(&run.status, &ShepherdStatus::Completed);
        let assertions: Vec<_> = run.path.iter().copied().chain(run.failure_constraint).collect();
        let mut solver = Solver::new(&mut run.pool);
        for c in assertions {
            solver.assert(c);
        }
        let SatResult::Sat(model) = solver.check(&Budget::default()) else {
            return Err(TestCaseError::fail("path must be satisfiable"));
        };
        let mut streams: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut recs = run.inputs.clone();
        recs.sort_by_key(|r| (r.source, r.offset));
        for rec in recs {
            let v = model.eval(&run.pool, rec.var);
            streams
                .entry(rec.source)
                .or_default()
                .extend_from_slice(&v.to_le_bytes()[..rec.width.bytes() as usize]);
        }

        // Replay: the generated inputs must hit the same failure.
        let mut env2 = Env::new();
        for (s, b) in &streams {
            env2.push_input(*s, b);
        }
        let replay = Machine::new(&program, env2).run();
        let RunOutcome::Failure(f2) = replay.outcome else {
            return Err(TestCaseError::fail("generated inputs must crash"));
        };
        prop_assert!(f2.same_failure(&failure));
    }
}
