//! The shepherded symbolic machine: executes IR along a recorded trace.
//!
//! Where the concrete interpreter consults a scheduler and real inputs,
//! this machine consults the decoded Intel-PT-style event stream: branch
//! outcomes come from TNT bits, thread switches from PGE packets, and
//! recorded data values from PTW packets. Inputs become fresh symbolic
//! variables; every consumed event is validated so that divergence between
//! the trace and the execution is caught, not silently mis-replayed.

use crate::mem::SymMemory;
use crate::value::SymValue;
use er_minilang::error::{Failure, FailureKind, RuntimeFault};
use er_minilang::ir::*;
use er_minilang::mem::NULL_GUARD;
use er_minilang::value::Width;
use er_pt::packet::TraceEvent;
use er_solver::expr::{BvOp, CmpKind, ExprPool, ExprRef};
use er_solver::inc::IncrementalSolver;
use er_solver::solve::{Budget, SatResult, StallReason};
use std::collections::HashMap;

/// Configuration for a shepherded run.
#[derive(Debug, Clone, Copy)]
pub struct SymConfig {
    /// Budget for each solver query (address resolution); exhausting it is
    /// a stall, the analogue of the paper's 30 s timeout.
    pub solver_budget: Budget,
    /// Safety net on executed instructions.
    pub max_steps: u64,
    /// Ablation knob: concretize every symbolic address to its model value
    /// instead of keeping single-object accesses symbolic. Avoids array
    /// constraints entirely at the cost of over-constraining the generated
    /// input (DESIGN.md §6, item 4).
    pub always_concretize: bool,
    /// Reuse solver lowering and learned clauses across the run's queries
    /// (the path condition grows monotonically, so every query extends the
    /// previous one). Off = a fresh solver per query, the pre-incremental
    /// behavior kept as a baseline/ablation mode.
    pub incremental_solver: bool,
    /// Snapshot the machine every this many consumed trace events so a
    /// later occurrence of the same failure can resume shepherding from
    /// the last matching checkpoint instead of re-executing the prefix.
    /// `0` disables checkpointing.
    pub checkpoint_every: u64,
}

impl Default for SymConfig {
    fn default() -> Self {
        SymConfig {
            solver_budget: Budget::default(),
            max_steps: 500_000_000,
            always_concretize: false,
            incremental_solver: true,
            checkpoint_every: 1024,
        }
    }
}

/// A program input that became a symbolic variable.
#[derive(Debug, Clone)]
pub struct InputRecord {
    /// Input stream.
    pub source: u32,
    /// Byte offset within the stream.
    pub offset: usize,
    /// Width consumed.
    pub width: Width,
    /// The variable standing for the value.
    pub var: ExprRef,
    /// The `Input` instruction that consumed it.
    pub site: InstrId,
}

/// Ways the execution can disagree with the trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDivergence {
    /// A concrete branch condition contradicted the recorded outcome.
    BranchMismatch {
        /// Where.
        at: InstrId,
    },
    /// Expected one event kind, found another (or ran out).
    EventMismatch {
        /// What the executor needed.
        wanted: &'static str,
        /// Where in execution.
        at: InstrId,
    },
    /// A recorded call/ptwrite payload contradicted execution.
    PayloadMismatch {
        /// Where.
        at: InstrId,
    },
    /// Execution faulted somewhere the production run did not.
    UnexpectedFault {
        /// The fault.
        fault: RuntimeFault,
        /// Where.
        at: InstrId,
    },
    /// Trace ended but execution never reached the failure site.
    RanPastTraceEnd,
    /// The trace contains a gap (ring-buffer wrap) and cannot be followed.
    TraceGap,
    /// A thread-resume event referenced an unknown thread.
    UnknownThread {
        /// The thread id.
        tid: u64,
    },
    /// Step budget exceeded.
    StepBudget,
}

/// How a shepherded run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ShepherdStatus {
    /// Followed the whole trace to the failure point.
    Completed,
    /// A solver query stalled (the trigger for key data value selection).
    Stalled {
        /// Why.
        reason: StallReason,
        /// At which instruction.
        at: InstrId,
    },
    /// The execution disagreed with the trace.
    Diverged(TraceDivergence),
}

/// Work counters for a shepherded run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymStats {
    /// Instructions executed.
    pub steps: u64,
    /// Solver queries issued for address resolution.
    pub solver_queries: u64,
    /// Total solver work units across queries.
    pub work_units: u64,
    /// Symbolic addresses concretized to a unique value.
    pub concretized_addrs: u64,
    /// Accesses left symbolic within one object.
    pub symbolic_accesses: u64,
    /// Recorded (PTW) values bound.
    pub ptw_bound: u64,
    /// Symbolic branch conditions resolved by the trace instead of
    /// forking (the paper's "shepherded" path explosions).
    pub forks_shepherded: u64,
    /// Memory load instructions executed.
    pub mem_reads: u64,
    /// Memory store instructions executed.
    pub mem_writes: u64,
}

/// Everything a shepherded run produces; the ER core consumes this for
/// test-case generation or key data value selection.
#[derive(Debug)]
pub struct SymRunResult {
    /// Outcome.
    pub status: ShepherdStatus,
    /// The expression pool (the constraint graph's nodes).
    pub pool: ExprPool,
    /// Path constraints gathered along the trace.
    pub path: Vec<ExprRef>,
    /// Constraint forcing the recorded failure at the failure site.
    pub failure_constraint: Option<ExprRef>,
    /// Symbolic inputs created.
    pub inputs: Vec<InputRecord>,
    /// First definition site of each symbolic expression.
    pub origins: HashMap<ExprRef, InstrId>,
    /// Dynamic execution count per value-defining site.
    pub site_counts: HashMap<InstrId, u64>,
    /// Longest symbolic write chain (paper complexity source 1).
    pub longest_chain: u64,
    /// The expression whose solver query stalled, if any — the seed for the
    /// stall-site fallback in key data value selection.
    pub stall_subject: Option<ExprRef>,
    /// Work counters.
    pub stats: SymStats,
    /// Machine snapshots taken along the run (newest last), reusable to
    /// resume shepherding a later trace that shares an event prefix.
    pub checkpoints: Vec<MachineState>,
}

/// A resumable snapshot of the symbolic machine, taken at an event-cursor
/// boundary during a run.
///
/// A snapshot of a run over events `E` captures everything the first
/// `cursor` events determined. A later trace `E'` of the same program with
/// the same instrumentation-agnostic behavior satisfies: if
/// `E[..cursor] == E'[..cursor]`, resuming from the snapshot is
/// indistinguishable from re-executing `E'[..cursor]` from scratch —
/// branches, thread switches, and recorded PTW values are the events
/// themselves, so identical prefixes drive identical state.
///
/// When the next occurrence runs under *different instrumentation*, frame
/// positions and site references must first be translated through the two
/// instrumentation maps; see [`MachineState::remap_sites`].
#[derive(Debug, Clone)]
pub struct MachineState {
    cursor: usize,
    pool: ExprPool,
    path: Vec<ExprRef>,
    mem: SymMemory,
    threads: Vec<SymThread>,
    cur: usize,
    lock_owner: HashMap<u64, u64>,
    next_tid: u64,
    inputs: Vec<InputRecord>,
    input_offsets: HashMap<u32, usize>,
    origins: HashMap<ExprRef, InstrId>,
    site_counts: HashMap<InstrId, u64>,
    clock: u64,
    stats: SymStats,
    heap_seq: u64,
    inc: IncrementalSolver,
}

impl MachineState {
    /// The event-cursor position this snapshot was taken at: resuming is
    /// valid against any trace whose prefix is *semantically* equal to the
    /// first `cursor()` events of the snapshot's own trace (equal modulo
    /// timestamps and quantum-boundary resumes of the running thread — the
    /// same events the run loop skips without touching machine state).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Retargets the snapshot at a cursor position in a *different* trace
    /// whose prefix up to `cursor` is semantically equal to this snapshot's
    /// own prefix. The caller (the reconstruction driver) establishes that
    /// equivalence by aligning the two event streams.
    pub fn with_cursor(mut self, cursor: usize) -> MachineState {
        self.cursor = cursor;
        self
    }

    /// Translates every instruction reference through `f` (typically
    /// old-instrumentation → original → new-instrumentation), returning
    /// `None` — discard the snapshot — if any reference has no image, e.g.
    /// a frame paused exactly at an instruction the old instrumentation
    /// inserted.
    ///
    /// `new_program` is the program the resumed run will execute; it is
    /// needed to re-derive end-of-block instruction pointers, whose numeric
    /// value depends on how many instructions the new instrumentation
    /// inserted into the block.
    pub fn remap_sites(
        mut self,
        new_program: &Program,
        mut f: impl FnMut(InstrId) -> Option<InstrId>,
    ) -> Option<MachineState> {
        for t in &mut self.threads {
            for fr in &mut t.frames {
                // Snapshots store end-of-block positions as the TERMINATOR
                // sentinel (see `snapshot`), so the raw ip never needs the
                // old program's block lengths to interpret.
                let id = InstrId {
                    func: fr.func,
                    block: fr.block,
                    index: fr.ip,
                };
                let mapped = f(id)?;
                fr.func = mapped.func;
                fr.block = mapped.block;
                fr.ip = if mapped.index == InstrId::TERMINATOR {
                    new_program
                        .func(mapped.func)
                        .block(mapped.block)
                        .instrs
                        .len()
                } else {
                    mapped.index
                };
            }
        }
        let mut site_counts = HashMap::with_capacity(self.site_counts.len());
        for (site, n) in self.site_counts.drain() {
            site_counts.insert(f(site)?, n);
        }
        self.site_counts = site_counts;
        let mut origins = HashMap::with_capacity(self.origins.len());
        for (e, site) in self.origins.drain() {
            origins.insert(e, f(site)?);
        }
        self.origins = origins;
        for rec in &mut self.inputs {
            rec.site = f(rec.site)?;
        }
        Some(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedLock(u64),
    BlockedJoin(u64),
    Done,
}

#[derive(Debug, Clone)]
struct SymFrame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<SymValue>,
    ret_dst: Option<Reg>,
    stack_mark: u64,
}

#[derive(Debug, Clone)]
struct SymThread {
    tid: u64,
    frames: Vec<SymFrame>,
    state: ThreadState,
}

enum StepOutcome {
    Continue,
    Blocked,
    ThreadDone,
    /// The trace scheduled another thread; this step did not execute.
    SwitchDue,
}

enum Stop {
    Stall(StallReason, Option<ExprRef>),
    Diverge(TraceDivergence),
}

/// The shepherded symbolic executor.
#[derive(Debug)]
pub struct SymMachine<'p> {
    program: &'p Program,
    config: SymConfig,
    pool: ExprPool,
    path: Vec<ExprRef>,
    mem: SymMemory,
    threads: Vec<SymThread>,
    cur: usize,
    lock_owner: HashMap<u64, u64>,
    next_tid: u64,
    inputs: Vec<InputRecord>,
    input_offsets: HashMap<u32, usize>,
    origins: HashMap<ExprRef, InstrId>,
    site_counts: HashMap<InstrId, u64>,
    clock: u64,
    stats: SymStats,
    heap_seq: u64,
    inc: IncrementalSolver,
    checkpoints: Vec<MachineState>,
    checkpoint_interval: u64,
    next_checkpoint_at: usize,
    start_cursor: usize,
}

impl<'p> SymMachine<'p> {
    /// A machine ready to follow a trace of `program`.
    pub fn new(program: &'p Program, config: SymConfig) -> Self {
        let mem = SymMemory::new(program);
        let main = SymThread {
            tid: 0,
            frames: vec![SymFrame {
                func: program.entry,
                block: BlockId(0),
                ip: 0,
                regs: vec![SymValue::Concrete(0); program.func(program.entry).n_regs],
                ret_dst: None,
                stack_mark: mem.stack_watermark(0),
            }],
            state: ThreadState::Runnable,
        };
        SymMachine {
            program,
            config,
            pool: ExprPool::new(),
            path: Vec::new(),
            mem,
            threads: vec![main],
            cur: 0,
            lock_owner: HashMap::new(),
            next_tid: 1,
            inputs: Vec::new(),
            input_offsets: HashMap::new(),
            origins: HashMap::new(),
            site_counts: HashMap::new(),
            clock: 0,
            stats: SymStats::default(),
            heap_seq: 0,
            inc: IncrementalSolver::new(),
            checkpoints: Vec::new(),
            checkpoint_interval: config.checkpoint_every,
            next_checkpoint_at: usize::MAX,
            start_cursor: 0,
        }
    }

    /// A machine that picks up from `state`, skipping the events before
    /// `state.cursor()`. The caller must guarantee the trace passed to
    /// [`SymMachine::run`] agrees with the snapshot's trace on that prefix
    /// (and must have remapped sites if instrumentation changed).
    pub fn resume(program: &'p Program, config: SymConfig, state: MachineState) -> Self {
        // The resume state itself is the run's first checkpoint: without it,
        // a resumed run that starts past the shared prefix would snapshot
        // nothing inside it, and the *next* occurrence would have to
        // re-execute the whole prefix again. Re-normalize end-of-block
        // frame positions to the TERMINATOR sentinel (the caller's
        // `remap_sites` resolved them to this program's block lengths).
        let mut seed = state.clone();
        for t in &mut seed.threads {
            for fr in &mut t.frames {
                if fr.ip >= program.func(fr.func).block(fr.block).instrs.len() {
                    fr.ip = InstrId::TERMINATOR;
                }
            }
        }
        SymMachine {
            program,
            config,
            pool: state.pool,
            path: state.path,
            mem: state.mem,
            threads: state.threads,
            cur: state.cur,
            lock_owner: state.lock_owner,
            next_tid: state.next_tid,
            inputs: state.inputs,
            input_offsets: state.input_offsets,
            origins: state.origins,
            site_counts: state.site_counts,
            clock: state.clock,
            stats: state.stats,
            heap_seq: state.heap_seq,
            inc: state.inc,
            checkpoints: vec![seed],
            checkpoint_interval: config.checkpoint_every,
            next_checkpoint_at: usize::MAX,
            start_cursor: state.cursor,
        }
    }

    /// Follows `events` to the end; `failure` is the production failure the
    /// trace leads to (`None` for a trace of a completed run). A machine
    /// built by [`SymMachine::resume`] starts at its snapshot's cursor.
    pub fn run(mut self, events: &[TraceEvent], failure: Option<&Failure>) -> SymRunResult {
        let base = self.stats;
        self.next_checkpoint_at = if self.checkpoint_interval > 0 {
            self.start_cursor + self.checkpoint_interval as usize
        } else {
            usize::MAX
        };
        let start = self.start_cursor;
        let status = self.run_loop(events, failure, start);
        let mut stall_subject = None;
        let (status, failure_constraint) = match status {
            Ok(fc) => (ShepherdStatus::Completed, fc),
            Err(Stop::Stall(reason, subject)) => {
                stall_subject = subject;
                (
                    ShepherdStatus::Stalled {
                        reason,
                        at: self.position(),
                    },
                    None,
                )
            }
            Err(Stop::Diverge(d)) => (ShepherdStatus::Diverged(d), None),
        };
        let longest_chain = self.mem.longest_write_chain(&self.pool);
        if er_telemetry::enabled() {
            // One batched update per shepherded run; the step loop carries
            // only plain field increments. Deltas, not totals: a resumed
            // run inherits its snapshot's counters and must only report the
            // work it actually did.
            er_telemetry::counter!("symex.steps").add(self.stats.steps - base.steps);
            er_telemetry::counter!("symex.solver_queries")
                .add(self.stats.solver_queries - base.solver_queries);
            er_telemetry::counter!("symex.forks_shepherded")
                .add(self.stats.forks_shepherded - base.forks_shepherded);
            er_telemetry::counter!("symex.mem_reads").add(self.stats.mem_reads - base.mem_reads);
            er_telemetry::counter!("symex.mem_writes").add(self.stats.mem_writes - base.mem_writes);
            er_telemetry::counter!("symex.ptw_bound").add(self.stats.ptw_bound - base.ptw_bound);
            er_telemetry::histogram!("symex.write_chain_len").record(longest_chain);
        }
        SymRunResult {
            status,
            pool: self.pool,
            path: self.path,
            failure_constraint,
            inputs: self.inputs,
            origins: self.origins,
            site_counts: self.site_counts,
            longest_chain,
            stall_subject,
            stats: self.stats,
            checkpoints: self.checkpoints,
        }
    }

    /// Captures a resumable snapshot at event position `cursor`. Frame
    /// instruction pointers sitting at a block's end are normalized to the
    /// TERMINATOR sentinel so the snapshot can be interpreted without this
    /// machine's program (block lengths change under re-instrumentation).
    fn snapshot(&self, cursor: usize) -> MachineState {
        let mut threads = self.threads.clone();
        for t in &mut threads {
            for fr in &mut t.frames {
                let len = self.program.func(fr.func).block(fr.block).instrs.len();
                if fr.ip >= len {
                    fr.ip = InstrId::TERMINATOR;
                }
            }
        }
        MachineState {
            cursor,
            pool: self.pool.clone(),
            path: self.path.clone(),
            mem: self.mem.clone(),
            threads,
            cur: self.cur,
            lock_owner: self.lock_owner.clone(),
            next_tid: self.next_tid,
            inputs: self.inputs.clone(),
            input_offsets: self.input_offsets.clone(),
            origins: self.origins.clone(),
            site_counts: self.site_counts.clone(),
            clock: self.clock,
            stats: self.stats,
            heap_seq: self.heap_seq,
            inc: self.inc.clone(),
        }
    }

    const MAX_CHECKPOINTS: usize = 8;

    fn take_checkpoint(&mut self, cursor: usize) {
        if self.checkpoints.len() >= Self::MAX_CHECKPOINTS {
            // Thin the ring: drop every other snapshot and double the
            // interval, keeping bounded memory with coverage of the whole
            // run (the densest snapshots stay near the start, where a new
            // trace's shared prefix is most likely to end).
            let mut keep = false;
            self.checkpoints.retain(|_| {
                keep = !keep;
                keep
            });
            self.checkpoint_interval = self.checkpoint_interval.saturating_mul(2);
        }
        self.checkpoints.push(self.snapshot(cursor));
        self.next_checkpoint_at = cursor + self.checkpoint_interval as usize;
    }

    /// One solver query against the current path condition plus
    /// `assumptions`, routed through the persistent incremental engine (or
    /// a throwaway one in the non-incremental baseline mode).
    fn query(&mut self, assumptions: &[ExprRef], budget: &Budget) -> SatResult {
        self.stats.solver_queries += 1;
        let (r, work) = if self.config.incremental_solver {
            let r = self
                .inc
                .check_assuming(&mut self.pool, &self.path, assumptions, budget);
            (r, self.inc.last_stats().work_units())
        } else {
            let mut fresh = IncrementalSolver::new();
            let r = fresh.check_assuming(&mut self.pool, &self.path, assumptions, budget);
            (r, fresh.last_stats().work_units())
        };
        self.stats.work_units += work;
        r
    }

    fn position(&self) -> InstrId {
        let f = self.threads[self.cur].frames.last();
        match f {
            Some(f) => {
                let blk = self.program.func(f.func).block(f.block);
                InstrId {
                    func: f.func,
                    block: f.block,
                    index: if f.ip < blk.instrs.len() {
                        f.ip
                    } else {
                        InstrId::TERMINATOR
                    },
                }
            }
            None => InstrId {
                func: self.program.entry,
                block: BlockId(0),
                index: 0,
            },
        }
    }

    fn switch_to(&mut self, tid: u64) -> Result<(), Stop> {
        let Some(idx) = self.threads.iter().position(|t| t.tid == tid) else {
            return Err(Stop::Diverge(TraceDivergence::UnknownThread { tid }));
        };
        self.cur = idx;
        // The production scheduler only resumes runnable (or just-woken)
        // threads; trust it.
        if self.threads[idx].state != ThreadState::Done {
            self.threads[idx].state = ThreadState::Runnable;
        }
        Ok(())
    }

    /// Skips timestamps and reports whether a thread switch is the next
    /// semantic event. Threads run until they *request* an event; only then
    /// may the production scheduler's PGE packet take effect — otherwise a
    /// thread's straight-line tail (e.g. a `spawn`) would be skipped.
    fn switch_pending(&self, events: &[TraceEvent], cursor: &mut usize) -> bool {
        while let Some(TraceEvent::Timestamp(_)) = events.get(*cursor) {
            *cursor += 1;
        }
        matches!(events.get(*cursor), Some(TraceEvent::ThreadResume(_)))
    }

    fn run_loop(
        &mut self,
        events: &[TraceEvent],
        failure: Option<&Failure>,
        start_cursor: usize,
    ) -> Result<Option<ExprRef>, Stop> {
        let mut cursor = start_cursor;
        loop {
            if self.config.checkpoint_every > 0 && cursor >= self.next_checkpoint_at {
                self.take_checkpoint(cursor);
            }
            // Timestamps are informational. A resume of the *currently
            // running* thread is a quantum boundary — a scheduling no-op
            // here, consumed greedily so it cannot later be mistaken for a
            // wake-up of a blocked thread.
            loop {
                match events.get(cursor) {
                    Some(TraceEvent::Timestamp(_)) => cursor += 1,
                    Some(TraceEvent::ThreadResume(t))
                        if *t == self.threads[self.cur].tid
                            && self.threads[self.cur].state == ThreadState::Runnable =>
                    {
                        cursor += 1;
                    }
                    _ => break,
                }
            }
            if let Some(TraceEvent::Gap) = events.get(cursor) {
                return Err(Stop::Diverge(TraceDivergence::TraceGap));
            }

            self.stats.steps += 1;
            if self.stats.steps > self.config.max_steps {
                return Err(Stop::Diverge(TraceDivergence::StepBudget));
            }
            // One supervised shepherd work unit per step. Stalling here
            // (rather than at an arbitrary instruction boundary) leaves the
            // machine consistent: no event half-applied, checkpoints intact.
            if er_solver::cancel::tick(1) {
                return Err(Stop::Stall(StallReason::Cancelled, None));
            }

            let at = self.position();
            let events_left = cursor < events.len();

            // End-of-trace handling: once events run out, keep executing
            // straight-line code until the failure site (or conclude for
            // liveness failures, whose traces end mid-flight).
            if !events_left {
                if let Some(f) = failure {
                    if matches!(f.fault.kind(), FailureKind::Liveness) {
                        return Ok(None);
                    }
                    if at == f.at && self.threads[self.cur].tid == f.tid {
                        return self.failure_constraint(f);
                    }
                } else if self.threads.iter().all(|t| t.state == ThreadState::Done) {
                    return Ok(None);
                }
            }

            if !matches!(self.threads[self.cur].state, ThreadState::Runnable) {
                // Current thread cannot run; the trace must name a successor.
                match events.get(cursor) {
                    Some(TraceEvent::ThreadResume(tid)) => {
                        let tid = *tid;
                        cursor += 1;
                        self.switch_to(tid)?;
                        continue;
                    }
                    Some(_) => {
                        return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                            wanted: "thread resume",
                            at,
                        }))
                    }
                    None => {
                        if failure.is_none()
                            && self.threads.iter().all(|t| t.state == ThreadState::Done)
                        {
                            return Ok(None);
                        }
                        return Err(Stop::Diverge(TraceDivergence::RanPastTraceEnd));
                    }
                }
            }

            match self.step(events, &mut cursor, at)? {
                StepOutcome::SwitchDue => match events.get(cursor) {
                    Some(TraceEvent::ThreadResume(tid)) => {
                        let tid = *tid;
                        cursor += 1;
                        self.switch_to(tid)?;
                    }
                    _ => {
                        return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                            wanted: "thread resume",
                            at,
                        }))
                    }
                },
                StepOutcome::Continue | StepOutcome::Blocked | StepOutcome::ThreadDone => {}
            }
        }
    }

    fn step(
        &mut self,
        events: &[TraceEvent],
        cursor: &mut usize,
        at: InstrId,
    ) -> Result<StepOutcome, Stop> {
        let (func, block, ip) = {
            let f = self.threads[self.cur].frames.last().expect("live frame");
            (f.func, f.block, f.ip)
        };
        let blk = self.program.func(func).block(block);
        if ip >= blk.instrs.len() {
            // Branch and Return terminators consume events; yield to a
            // pending thread switch first.
            if !matches!(blk.term, Some(Terminator::Jump(_))) && self.switch_pending(events, cursor)
            {
                return Ok(StepOutcome::SwitchDue);
            }
            return self.exec_terminator(events, cursor, at, func, block);
        }
        let instr = blk.instrs[ip].clone();
        if matches!(instr, Instr::Call { .. } | Instr::PtWrite { .. })
            && self.switch_pending(events, cursor)
        {
            return Ok(StepOutcome::SwitchDue);
        }
        if instr.dst().is_some() {
            *self.site_counts.entry(at).or_insert(0) += 1;
        }
        self.exec_instr(events, cursor, at, &instr)
    }

    fn consume_event<'e>(
        &mut self,
        events: &'e [TraceEvent],
        cursor: &mut usize,
        wanted: &'static str,
        at: InstrId,
    ) -> Result<&'e TraceEvent, Stop> {
        // Timestamps may precede the payload event; thread switches may NOT
        // be skipped here (the run loop prelude handles them before each
        // step), so seeing one means production switched before this event.
        while let Some(TraceEvent::Timestamp(_)) = events.get(*cursor) {
            *cursor += 1;
        }
        match events.get(*cursor) {
            Some(ev) if !matches!(ev, TraceEvent::ThreadResume(_) | TraceEvent::Gap) => {
                *cursor += 1;
                Ok(ev)
            }
            _ => Err(Stop::Diverge(TraceDivergence::EventMismatch { wanted, at })),
        }
    }

    fn operand(&self, op: Operand) -> SymValue {
        match op {
            Operand::Reg(r) => {
                self.threads[self.cur]
                    .frames
                    .last()
                    .expect("live frame")
                    .regs[r.0 as usize]
            }
            Operand::Imm(v) => SymValue::Concrete(v),
        }
    }

    fn set_reg(&mut self, r: Reg, v: SymValue, site: InstrId) {
        if let SymValue::Sym(e) = v {
            self.origins.entry(e).or_insert(site);
        }
        self.threads[self.cur]
            .frames
            .last_mut()
            .expect("live frame")
            .regs[r.0 as usize] = v;
    }

    fn advance_ip(&mut self) {
        self.threads[self.cur]
            .frames
            .last_mut()
            .expect("live frame")
            .ip += 1;
    }

    fn push_constraint(&mut self, c: ExprRef) {
        if self.pool.as_const(c) != Some(1) {
            self.path.push(c);
        }
    }

    /// Resolves a memory address operand into a concrete address or a
    /// (single-object) symbolic access.
    fn resolve_addr(
        &mut self,
        addr: SymValue,
        width: Width,
        at: InstrId,
    ) -> Result<MemTarget, Stop> {
        match addr {
            SymValue::Concrete(a) => Ok(MemTarget::Concrete(a)),
            SymValue::Sym(_) => {
                let e = addr.to_expr(&mut self.pool, 64);
                let budget = self.config.solver_budget;
                let model = match self.query(&[], &budget) {
                    SatResult::Sat(m) => m,
                    SatResult::Unsat => {
                        return Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                            fault: RuntimeFault::Unmapped { addr: 0 },
                            at,
                        }))
                    }
                    SatResult::Unknown(reason) => return Err(Stop::Stall(reason, Some(e))),
                };
                let v = model.eval(&self.pool, e);
                // Uniqueness: UNSAT(path ∧ e != v) means e is forced to v.
                // An inconclusive answer is treated as "not unique" — a
                // sound under-approximation that avoids stalling here.
                let vc = self.pool.bv_const(v, 64);
                let ne = self.pool.ne(e, vc);
                let unique = matches!(self.query(&[ne], &budget), SatResult::Unsat);
                if unique || self.config.always_concretize {
                    let eq = self.pool.cmp(CmpKind::Eq, e, vc);
                    self.push_constraint(eq);
                    self.stats.concretized_addrs += 1;
                    return Ok(MemTarget::Concrete(v));
                }
                // Not unique: does it stay within one object? If no object
                // contains the model value the address is ambiguous across
                // objects — concretizing to an arbitrary feasible value
                // could contradict the rest of the trace (the branch
                // outcomes were recorded for the *production* address), so
                // this is a stall: key data value selection will record the
                // address (paper §3.2: the solver is invoked at every
                // symbolic memory access, and timeouts here are exactly the
                // stalls §3.3 resolves).
                let Some(obj) = self.mem.object_containing(v) else {
                    return Err(Stop::Stall(StallReason::AddressAmbiguity, Some(e)));
                };
                let (base, size) = (obj.base, obj.size);
                let lo = self.pool.bv_const(base, 64);
                let hi = self.pool.bv_const(base + size - (width.bytes() - 1), 64);
                let ge = self.pool.cmp(CmpKind::Ule, lo, e);
                let lt = self.pool.cmp(CmpKind::Ult, e, hi);
                let inside = self.pool.and(ge, lt);
                let outside = self.pool.not(inside);
                // If containment cannot be proved (SAT or inconclusive),
                // fall through to concretization — always sound, since any
                // feasible address yields a valid stronger path.
                let contained = matches!(self.query(&[outside], &budget), SatResult::Unsat);
                if contained {
                    self.stats.symbolic_accesses += 1;
                    Ok(MemTarget::Symbolic { base, expr: e })
                } else {
                    // Could not confine the access to one object within the
                    // budget: stall and let selection record the address.
                    Err(Stop::Stall(StallReason::AddressAmbiguity, Some(e)))
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_instr(
        &mut self,
        events: &[TraceEvent],
        cursor: &mut usize,
        at: InstrId,
        instr: &Instr,
    ) -> Result<StepOutcome, Stop> {
        match instr {
            Instr::Const { dst, value } => {
                self.set_reg(*dst, SymValue::Concrete(*value), at);
            }
            Instr::Bin {
                dst,
                op,
                a,
                b,
                width,
            } => {
                let av = self.operand(*a);
                let bv = self.operand(*b);
                let r = self.sym_bin(*op, av, bv, *width, at)?;
                self.set_reg(*dst, r, at);
            }
            Instr::Un { dst, op, a, width } => {
                let av = self.operand(*a);
                let r = self.sym_un(*op, av, *width);
                self.set_reg(*dst, r, at);
            }
            Instr::Cmp {
                dst,
                pred,
                a,
                b,
                width,
            } => {
                let av = self.operand(*a);
                let bv = self.operand(*b);
                let r = self.sym_cmp(*pred, av, bv, *width);
                self.set_reg(*dst, r, at);
            }
            Instr::Cast { dst, a, from } => {
                let av = self.operand(*a);
                let r = match av {
                    SymValue::Concrete(v) => SymValue::Concrete(from.trunc(v)),
                    SymValue::Sym(_) => {
                        let e = av.to_expr(&mut self.pool, from.bits());
                        SymValue::from_expr(&self.pool, e)
                    }
                };
                self.set_reg(*dst, r, at);
            }
            Instr::Load { dst, addr, width } => {
                self.stats.mem_reads += 1;
                let a = self.operand(*addr);
                let target = self.resolve_addr(a, *width, at)?;
                let v = match target {
                    MemTarget::Concrete(ca) => match self.mem.load(&mut self.pool, ca, *width) {
                        Ok(v) => v,
                        Err(fault) => {
                            return Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                                fault,
                                at,
                            }))
                        }
                    },
                    MemTarget::Symbolic { base, expr } => {
                        self.mem.load_symbolic(&mut self.pool, base, expr, *width)
                    }
                };
                self.set_reg(*dst, v, at);
            }
            Instr::Store { addr, value, width } => {
                self.stats.mem_writes += 1;
                let a = self.operand(*addr);
                let v = self.operand(*value);
                let target = self.resolve_addr(a, *width, at)?;
                match target {
                    MemTarget::Concrete(ca) => {
                        if let Err(fault) = self.mem.store(&mut self.pool, ca, *width, v) {
                            return Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                                fault,
                                at,
                            }));
                        }
                    }
                    MemTarget::Symbolic { base, expr } => {
                        self.mem
                            .store_symbolic(&mut self.pool, base, expr, *width, v);
                    }
                }
            }
            Instr::GlobalAddr { dst, global } => {
                let g = &self.program.globals[global.0 as usize];
                self.set_reg(*dst, SymValue::Concrete(g.addr), at);
            }
            Instr::StackAlloc { dst, size } => {
                let tid = self.threads[self.cur].tid;
                let name = format!("{}.stack{}", self.program.func(at.func).name, at.block.0);
                let a = self.mem.stack_alloc(tid, *size, name);
                self.set_reg(*dst, SymValue::Concrete(a), at);
            }
            Instr::Alloc { dst, size } => {
                let n = match self.operand(*size) {
                    SymValue::Concrete(n) => n,
                    sym => {
                        // Concretize allocation sizes: the production run
                        // allocated a specific amount, and heap layout must
                        // mirror it exactly.
                        let e = sym.to_expr(&mut self.pool, 64);
                        match self.resolve_addr(SymValue::Sym(e), Width::W8, at)? {
                            MemTarget::Concrete(v) => v,
                            MemTarget::Symbolic { expr, .. } => {
                                // Force a concrete size via the model value.
                                let _ = expr;
                                return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                                    wanted: "concrete allocation size",
                                    at,
                                }));
                            }
                        }
                    }
                };
                self.heap_seq += 1;
                let a = self.mem.heap_alloc(n, format!("heap{}", self.heap_seq));
                self.set_reg(*dst, SymValue::Concrete(a), at);
            }
            Instr::Free { addr } => {
                let a = self.operand(*addr);
                let target = self.resolve_addr(a, Width::W8, at)?;
                let MemTarget::Concrete(ca) = target else {
                    return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                        wanted: "concrete free address",
                        at,
                    }));
                };
                if let Err(fault) = self.mem.heap_free(ca) {
                    return Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                        fault,
                        at,
                    }));
                }
            }
            Instr::Call { dst, func, args } => {
                let ev = self.consume_event(events, cursor, "call", at)?;
                let TraceEvent::Call(target) = ev else {
                    return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                        wanted: "call",
                        at,
                    }));
                };
                if *target != func.0 {
                    return Err(Stop::Diverge(TraceDivergence::PayloadMismatch { at }));
                }
                let callee = self.program.func(*func);
                let mut regs = vec![SymValue::Concrete(0); callee.n_regs];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.operand(*a);
                }
                let tid = self.threads[self.cur].tid;
                let mark = self.mem.stack_watermark(tid);
                self.threads[self.cur].frames.push(SymFrame {
                    func: *func,
                    block: BlockId(0),
                    ip: 0,
                    regs,
                    ret_dst: *dst,
                    stack_mark: mark,
                });
                return Ok(StepOutcome::Continue); // no ip advance
            }
            Instr::Input { dst, source, width } => {
                let off = self.input_offsets.entry(*source).or_insert(0);
                let offset = *off;
                *off += width.bytes() as usize;
                let var = self.pool.var(format!("in{source}@{offset}"), width.bits());
                self.origins.insert(var, at);
                self.inputs.push(InputRecord {
                    source: *source,
                    offset,
                    width: *width,
                    var,
                    site: at,
                });
                self.set_reg(*dst, SymValue::Sym(var), at);
            }
            Instr::Clock { dst } => {
                // The substrate's clock is deterministic (see DESIGN.md), so
                // symbolic execution mirrors it concretely.
                let v = self.clock;
                self.clock += 1;
                self.set_reg(*dst, SymValue::Concrete(v), at);
            }
            Instr::PtWrite { value } => {
                let ev = self.consume_event(events, cursor, "ptwrite", at)?;
                let TraceEvent::PtWrite(recorded) = *ev else {
                    return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                        wanted: "ptwrite",
                        at,
                    }));
                };
                let v = self.operand(*value);
                match v {
                    SymValue::Concrete(c) => {
                        if c != recorded {
                            return Err(Stop::Diverge(TraceDivergence::PayloadMismatch { at }));
                        }
                    }
                    SymValue::Sym(e) => {
                        // Bind the recorded value: constrain and concretize.
                        let bits = self.pool.sort(e).bits();
                        let rc = self.pool.bv_const(recorded, bits);
                        let eq = match self.pool.sort(e) {
                            er_solver::expr::Sort::Bool => {
                                let b = self.pool.bool_to_bv(e, 8);
                                let r8 = self.pool.bv_const(recorded, 8);
                                self.pool.cmp(CmpKind::Eq, b, r8)
                            }
                            _ => self.pool.cmp(CmpKind::Eq, e, rc),
                        };
                        self.push_constraint(eq);
                        self.stats.ptw_bound += 1;
                        if let Operand::Reg(r) = value {
                            self.set_reg(*r, SymValue::Concrete(recorded), at);
                        }
                    }
                }
            }
            Instr::Print { .. } => {}
            Instr::Spawn { dst, func, args } => {
                let callee = self.program.func(*func);
                let mut regs = vec![SymValue::Concrete(0); callee.n_regs];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.operand(*a);
                }
                let tid = self.next_tid;
                self.next_tid += 1;
                let mark = self.mem.stack_watermark(tid);
                self.threads.push(SymThread {
                    tid,
                    frames: vec![SymFrame {
                        func: *func,
                        block: BlockId(0),
                        ip: 0,
                        regs,
                        ret_dst: None,
                        stack_mark: mark,
                    }],
                    state: ThreadState::Runnable,
                });
                self.set_reg(*dst, SymValue::Concrete(tid), at);
            }
            Instr::Join { tid } => {
                let target = match self.operand(*tid) {
                    SymValue::Concrete(t) => t,
                    SymValue::Sym(_) => {
                        return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                            wanted: "concrete thread id",
                            at,
                        }))
                    }
                };
                let done = self
                    .threads
                    .iter()
                    .any(|t| t.tid == target && t.state == ThreadState::Done);
                if !done {
                    self.threads[self.cur].state = ThreadState::BlockedJoin(target);
                    self.advance_ip();
                    return Ok(StepOutcome::Blocked);
                }
            }
            Instr::Lock { lock } => {
                let id = match self.operand(*lock) {
                    SymValue::Concrete(v) => v,
                    SymValue::Sym(_) => {
                        return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                            wanted: "concrete lock id",
                            at,
                        }))
                    }
                };
                let tid = self.threads[self.cur].tid;
                if self.lock_owner.contains_key(&id) {
                    self.threads[self.cur].state = ThreadState::BlockedLock(id);
                    // ip not advanced: re-attempted after resume.
                    return Ok(StepOutcome::Blocked);
                }
                self.lock_owner.insert(id, tid);
            }
            Instr::Unlock { lock } => {
                let id = match self.operand(*lock) {
                    SymValue::Concrete(v) => v,
                    SymValue::Sym(_) => {
                        return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                            wanted: "concrete lock id",
                            at,
                        }))
                    }
                };
                self.lock_owner.remove(&id);
                // Unblocked threads are resumed by the trace's PGE packets;
                // just mark them lock-free so the retry succeeds.
                for t in &mut self.threads {
                    if t.state == ThreadState::BlockedLock(id) {
                        t.state = ThreadState::Runnable;
                    }
                }
            }
            Instr::Assert { cond, .. } => {
                // Mid-trace asserts passed in production.
                let c = self.operand(*cond);
                match c {
                    SymValue::Concrete(0) => {
                        return Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                            fault: RuntimeFault::AssertFailed {
                                message: "assert failed mid-trace".into(),
                            },
                            at,
                        }))
                    }
                    SymValue::Concrete(_) => {}
                    SymValue::Sym(e) => {
                        let nz = self.pool.nonzero(e);
                        self.push_constraint(nz);
                    }
                }
            }
            Instr::Abort { message } => {
                // Reaching an abort mid-trace means divergence; the failure
                // site case is handled before stepping.
                return Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                    fault: RuntimeFault::Abort {
                        message: message.clone(),
                    },
                    at,
                }));
            }
        }
        self.advance_ip();
        Ok(StepOutcome::Continue)
    }

    fn exec_terminator(
        &mut self,
        events: &[TraceEvent],
        cursor: &mut usize,
        at: InstrId,
        func: FuncId,
        block: BlockId,
    ) -> Result<StepOutcome, Stop> {
        let term = self
            .program
            .func(func)
            .block(block)
            .term
            .clone()
            .expect("terminated blocks");
        match term {
            Terminator::Jump(b) => {
                let f = self.threads[self.cur]
                    .frames
                    .last_mut()
                    .expect("live frame");
                f.block = b;
                f.ip = 0;
                Ok(StepOutcome::Continue)
            }
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let ev = self.consume_event(events, cursor, "branch", at)?;
                let TraceEvent::Branch(taken) = *ev else {
                    return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                        wanted: "branch",
                        at,
                    }));
                };
                let c = self.operand(cond);
                match c {
                    SymValue::Concrete(v) => {
                        if (v != 0) != taken {
                            return Err(Stop::Diverge(TraceDivergence::BranchMismatch { at }));
                        }
                    }
                    SymValue::Sym(e) => {
                        self.stats.forks_shepherded += 1;
                        let nz = self.pool.nonzero(e);
                        let constraint = if taken { nz } else { self.pool.not(nz) };
                        self.push_constraint(constraint);
                    }
                }
                let f = self.threads[self.cur]
                    .frames
                    .last_mut()
                    .expect("live frame");
                f.block = if taken { then_blk } else { else_blk };
                f.ip = 0;
                Ok(StepOutcome::Continue)
            }
            Terminator::Return(v) => {
                let ev = self.consume_event(events, cursor, "ret", at)?;
                if !matches!(ev, TraceEvent::Ret) {
                    return Err(Stop::Diverge(TraceDivergence::EventMismatch {
                        wanted: "ret",
                        at,
                    }));
                }
                let value = v
                    .map(|op| self.operand(op))
                    .unwrap_or(SymValue::Concrete(0));
                let tid = self.threads[self.cur].tid;
                let frame = self.threads[self.cur].frames.pop().expect("live frame");
                self.mem.stack_restore(tid, frame.stack_mark);
                if let Some(caller) = self.threads[self.cur].frames.last_mut() {
                    if let Some(dst) = frame.ret_dst {
                        caller.regs[dst.0 as usize] = value;
                    }
                    caller.ip += 1;
                    if let SymValue::Sym(e) = value {
                        self.origins.entry(e).or_insert(at);
                    }
                    Ok(StepOutcome::Continue)
                } else {
                    self.threads[self.cur].state = ThreadState::Done;
                    for t in &mut self.threads {
                        if t.state == ThreadState::BlockedJoin(tid) {
                            t.state = ThreadState::Runnable;
                        }
                    }
                    Ok(StepOutcome::ThreadDone)
                }
            }
        }
    }

    /// Builds the constraint that forces the recorded failure at the
    /// failure site (executed when the trace has been fully consumed).
    fn failure_constraint(&mut self, failure: &Failure) -> Result<Option<ExprRef>, Stop> {
        let blk = self.program.func(failure.at.func).block(failure.at.block);
        let instr = blk.instrs.get(failure.at.index).cloned();
        let constraint = match (&failure.fault, instr) {
            (RuntimeFault::AssertFailed { .. }, Some(Instr::Assert { cond, .. })) => {
                match self.operand(cond) {
                    SymValue::Concrete(0) => None,
                    SymValue::Concrete(_) => {
                        return Err(Stop::Diverge(TraceDivergence::RanPastTraceEnd))
                    }
                    SymValue::Sym(e) => {
                        let nz = self.pool.nonzero(e);
                        Some(self.pool.not(nz))
                    }
                }
            }
            (RuntimeFault::Abort { .. }, Some(Instr::Abort { .. })) => None,
            (RuntimeFault::DivByZero, Some(Instr::Bin { b, .. })) => match self.operand(b) {
                SymValue::Concrete(0) => None,
                SymValue::Concrete(_) => {
                    return Err(Stop::Diverge(TraceDivergence::RanPastTraceEnd))
                }
                sym => {
                    let e = sym.to_expr(&mut self.pool, 64);
                    let zero = self.pool.bv_const(0, 64);
                    Some(self.pool.cmp(CmpKind::Eq, e, zero))
                }
            },
            (fault, Some(Instr::Load { addr, .. })) => {
                let a = self.operand(addr);
                self.memory_fault_constraint(fault, a)
            }
            (fault, Some(Instr::Store { addr, .. })) => {
                let a = self.operand(addr);
                self.memory_fault_constraint(fault, a)
            }
            (fault, Some(Instr::Free { addr })) => {
                let a = self.operand(addr);
                self.memory_fault_constraint(fault, a)
            }
            // Input exhaustion, hangs, deadlocks: reproduced by input shape
            // and schedule, not by value constraints.
            _ => None,
        };
        Ok(constraint)
    }

    fn memory_fault_constraint(&mut self, fault: &RuntimeFault, addr: SymValue) -> Option<ExprRef> {
        let e = match addr {
            SymValue::Concrete(_) => return None, // address forced already
            SymValue::Sym(_) => addr.to_expr(&mut self.pool, 64),
        };
        match fault {
            RuntimeFault::NullDeref { .. } => {
                let guard = self.pool.bv_const(NULL_GUARD, 64);
                Some(self.pool.cmp(CmpKind::Ult, e, guard))
            }
            RuntimeFault::UseAfterFree { .. } | RuntimeFault::InvalidFree { .. } => {
                let mut any = self.pool.bool_const(false);
                let ranges: Vec<(u64, u64)> = self.mem.freed_ranges().to_vec();
                for (base, size) in ranges {
                    let lo = self.pool.bv_const(base, 64);
                    let hi = self.pool.bv_const(base + size, 64);
                    let ge = self.pool.cmp(CmpKind::Ule, lo, e);
                    let lt = self.pool.cmp(CmpKind::Ult, e, hi);
                    let inside = self.pool.and(ge, lt);
                    any = self.pool.or(any, inside);
                }
                Some(any)
            }
            RuntimeFault::Unmapped { .. } => {
                // Outside every object and not in the null guard.
                let mut outside_all = self.pool.bool_const(true);
                let objects: Vec<(u64, u64)> =
                    self.mem.objects().map(|o| (o.base, o.size)).collect();
                for (base, size) in objects {
                    let lo = self.pool.bv_const(base, 64);
                    let hi = self.pool.bv_const(base + size, 64);
                    let ge = self.pool.cmp(CmpKind::Ule, lo, e);
                    let lt = self.pool.cmp(CmpKind::Ult, e, hi);
                    let inside = self.pool.and(ge, lt);
                    let not_inside = self.pool.not(inside);
                    outside_all = self.pool.and(outside_all, not_inside);
                }
                let guard = self.pool.bv_const(NULL_GUARD, 64);
                let not_null = self.pool.cmp(CmpKind::Ule, guard, e);
                Some(self.pool.and(outside_all, not_null))
            }
            _ => None,
        }
    }

    fn sym_bin(
        &mut self,
        op: er_minilang::value::BinOp,
        a: SymValue,
        b: SymValue,
        width: Width,
        at: InstrId,
    ) -> Result<SymValue, Stop> {
        use er_minilang::value::BinOp as MB;
        if let (SymValue::Concrete(x), SymValue::Concrete(y)) = (a, b) {
            return match op.eval(width, x, y) {
                Some(v) => Ok(SymValue::Concrete(v)),
                None => Err(Stop::Diverge(TraceDivergence::UnexpectedFault {
                    fault: RuntimeFault::DivByZero,
                    at,
                })),
            };
        }
        let bits = width.bits();
        let ae = a.to_expr(&mut self.pool, bits);
        let be = b.to_expr(&mut self.pool, bits);
        let sop = match op {
            MB::Add => BvOp::Add,
            MB::Sub => BvOp::Sub,
            MB::Mul => BvOp::Mul,
            MB::UDiv => BvOp::UDiv,
            MB::URem => BvOp::URem,
            MB::And => BvOp::And,
            MB::Or => BvOp::Or,
            MB::Xor => BvOp::Xor,
            MB::Shl => BvOp::Shl,
            MB::LShr => BvOp::LShr,
            MB::AShr => BvOp::AShr,
        };
        if matches!(op, MB::UDiv | MB::URem) {
            // The production run did not fault here, so the divisor is
            // nonzero along this path.
            let zero = self.pool.bv_const(0, bits);
            let nz = self.pool.ne(be, zero);
            self.push_constraint(nz);
        }
        let e = self.pool.bin(sop, ae, be);
        Ok(SymValue::from_expr(&self.pool, e))
    }

    fn sym_un(&mut self, op: er_minilang::value::UnOp, a: SymValue, width: Width) -> SymValue {
        use er_minilang::value::UnOp as MU;
        if let SymValue::Concrete(x) = a {
            return SymValue::Concrete(op.eval(width, x));
        }
        let bits = width.bits();
        match op {
            MU::Neg => {
                let ae = a.to_expr(&mut self.pool, bits);
                let zero = self.pool.bv_const(0, bits);
                let e = self.pool.bin(BvOp::Sub, zero, ae);
                SymValue::from_expr(&self.pool, e)
            }
            MU::Not => {
                let ae = a.to_expr(&mut self.pool, bits);
                let ones = self.pool.bv_const(u64::MAX, bits);
                let e = self.pool.bin(BvOp::Xor, ae, ones);
                SymValue::from_expr(&self.pool, e)
            }
            MU::LNot => {
                let ae = a.to_expr(&mut self.pool, bits);
                let nz = self.pool.nonzero(ae);
                let not = self.pool.not(nz);
                let e = self.pool.bool_to_bv(not, bits);
                SymValue::from_expr(&self.pool, e)
            }
        }
    }

    fn sym_cmp(
        &mut self,
        pred: er_minilang::value::CmpOp,
        a: SymValue,
        b: SymValue,
        width: Width,
    ) -> SymValue {
        use er_minilang::value::CmpOp as MC;
        if let (SymValue::Concrete(x), SymValue::Concrete(y)) = (a, b) {
            return SymValue::Concrete(u64::from(pred.eval(width, x, y)));
        }
        let bits = width.bits();
        let ae = a.to_expr(&mut self.pool, bits);
        let be = b.to_expr(&mut self.pool, bits);
        let e = match pred {
            MC::Eq => self.pool.cmp(CmpKind::Eq, ae, be),
            MC::Ne => self.pool.ne(ae, be),
            MC::Ult => self.pool.cmp(CmpKind::Ult, ae, be),
            MC::Ule => self.pool.cmp(CmpKind::Ule, ae, be),
            MC::Slt => self.pool.cmp(CmpKind::Slt, ae, be),
            MC::Sle => self.pool.cmp(CmpKind::Sle, ae, be),
        };
        SymValue::from_expr(&self.pool, e)
    }
}

enum MemTarget {
    Concrete(u64),
    Symbolic { base: u64, expr: ExprRef },
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;
    use er_minilang::env::Env;
    use er_minilang::interp::{Machine, RunOutcome};
    use er_pt::sink::{PtConfig, PtSink};

    /// Runs `src` concretely with the given inputs, returning the decoded
    /// trace and the failure (if any).
    fn record(
        src: &str,
        inputs: &[(u32, Vec<u8>)],
    ) -> (er_minilang::ir::Program, Vec<TraceEvent>, Option<Failure>) {
        let program = compile(src).unwrap();
        let mut env = Env::new();
        for (s, b) in inputs {
            env.push_input(*s, b);
        }
        let report = Machine::with_sink(&program, env, PtSink::new(PtConfig::default())).run();
        let failure = match report.outcome {
            RunOutcome::Failure(f) => Some(f),
            RunOutcome::Completed => None,
        };
        let events = report.sink.finish().decode().unwrap().events;
        (program, events, failure)
    }

    /// Solves path + failure constraint and extracts input bytes.
    fn generate_inputs(result: &mut SymRunResult) -> Vec<(u32, Vec<u8>)> {
        let mut constraints = result.path.clone();
        if let Some(fc) = result.failure_constraint {
            constraints.push(fc);
        }
        let mut solver = IncrementalSolver::new();
        let SatResult::Sat(model) =
            solver.check(&mut result.pool, &constraints, &Budget::default())
        else {
            panic!("path must be satisfiable");
        };
        let mut streams: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut recs = result.inputs.clone();
        recs.sort_by_key(|r| (r.source, r.offset));
        for rec in recs {
            let v = model.eval(&result.pool, rec.var);
            let stream = streams.entry(rec.source).or_default();
            assert_eq!(stream.len(), rec.offset);
            stream.extend_from_slice(&v.to_le_bytes()[..rec.width.bytes() as usize]);
        }
        streams.into_iter().collect()
    }

    fn rerun(program: &er_minilang::ir::Program, inputs: &[(u32, Vec<u8>)]) -> RunOutcome {
        let mut env = Env::new();
        for (s, b) in inputs {
            env.push_input(*s, b);
        }
        Machine::new(program, env).run().outcome
    }

    #[test]
    fn reconstructs_branchy_input_failure() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let b: u32 = input_u32(0);
                if a + b == 77 {
                    if a > 30 {
                        abort("boom");
                    }
                }
                print(a);
            }
        "#;
        let (program, events, failure) = record(
            src,
            &[(0, [40u32.to_le_bytes(), 37u32.to_le_bytes()].concat())],
        );
        let failure = failure.expect("production run fails");
        let machine = SymMachine::new(&program, SymConfig::default());
        let mut result = machine.run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        assert_eq!(result.inputs.len(), 2);
        let gen = generate_inputs(&mut result);
        // The generated input may differ from (40, 37) but must re-crash
        // identically.
        let outcome = rerun(&program, &gen);
        let RunOutcome::Failure(f2) = outcome else {
            panic!("generated input must reproduce the failure, got {outcome:?}")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn reconstructs_assert_failure() {
        let src = r#"
            fn check(v: u32) {
                assert(v % 7 != 3, "bad residue");
            }
            fn main() {
                let a: u32 = input_u32(0);
                check(a * 2);
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 5u32.to_le_bytes().to_vec())]);
        let failure = failure.expect("10 % 7 == 3 crashes");
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        assert!(result.failure_constraint.is_some());
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn follows_loops_with_symbolic_bounds() {
        let src = r#"
            fn main() {
                let n: u32 = input_u32(0);
                let sum: u32 = 0;
                for i: u32 = 0; i < n % 16; i = i + 1 {
                    sum = sum + i;
                }
                if sum == 6 { abort("sum hit"); }
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 4u32.to_le_bytes().to_vec())]);
        let failure = failure.expect("0+1+2+3 == 6");
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn symbolic_array_access_reconstructs() {
        // A small version of the paper's Fig. 3 pattern.
        let src = r#"
            global V: [u32; 16];
            fn main() {
                let a: u32 = input_u32(0);
                let c: u32 = input_u32(0);
                let x: u32 = a % 16;
                if c < 16 {
                    V[x] = 1;
                    if V[c] == 0 {
                        V[c] = 9;
                    }
                    if V[x] == 9 { abort("aliased"); }
                }
                print(x);
            }
        "#;
        // a%16 == c makes V[x] == 9: x == c, the write V[c]=9 did not run...
        // choose a=3, c=3: V[3]=1; V[3]==0 false; V[3]==9 false -> no crash.
        // choose a=3, c=5: V[3]=1, V[5]=9, V[3]==9 false -> no crash.
        // The crash needs V[x]==9, i.e. x==c and V[c]==0 taken: but V[x]=1
        // wrote 1 at x==c, so V[c]==0 is false. Unreachable; use c==x with
        // a second pass instead: simply verify completion on a non-crashing
        // trace is handled by the liveness path below. Here pick a crashing
        // variant:
        let _ = src;
        let src2 = r#"
            global V: [u32; 16];
            fn main() {
                let a: u32 = input_u32(0);
                let c: u32 = input_u32(0);
                let x: u32 = a % 16;
                if c < 16 {
                    V[x] = 1;
                    if V[c] == 1 { abort("aliased"); }
                }
                print(x);
            }
        "#;
        let (program, events, failure) = record(
            src2,
            &[(0, [7u32.to_le_bytes(), 7u32.to_le_bytes()].concat())],
        );
        let failure = failure.expect("x == c crashes");
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        assert!(result.stats.symbolic_accesses > 0 || result.stats.concretized_addrs > 0);
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn stalls_on_large_symbolic_object_with_small_budget() {
        // Masked indexing keeps the accesses symbolic (containment is
        // provable), so the branch condition embeds array reads; the
        // post-branch store's address query must then reason about the
        // whole 32 KiB object and stalls under a small budget.
        let src = r#"
            global BIG: [u64; 4096];
            fn main() {
                let a: u64 = input_u64(0);
                let i: u64 = a & 4095;
                BIG[i] = 5;
                let j: u64 = input_u64(0) & 4095;
                if BIG[j] == 5 {
                    BIG[i] = 7;
                    abort("hit");
                }
            }
        "#;
        let (program, events, failure) = record(
            src,
            &[(0, [9u64.to_le_bytes(), 9u64.to_le_bytes()].concat())],
        );
        let failure = failure.expect("i == j crashes");
        let config = SymConfig {
            solver_budget: Budget::small(),
            max_steps: 10_000_000,
            always_concretize: false,
            ..SymConfig::default()
        };
        let result = SymMachine::new(&program, config).run(&events, Some(&failure));
        assert!(
            matches!(result.status, ShepherdStatus::Stalled { .. }),
            "expected stall, got {:?}",
            result.status
        );
        assert!(result.longest_chain > 0 || result.stats.solver_queries > 0);
    }

    #[test]
    fn ptwrite_binds_recorded_values() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let x: u32 = a * 3;
                ptwrite(x);
                if x == 21 { abort("x21"); }
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 7u32.to_le_bytes().to_vec())]);
        let failure = failure.expect("21 crashes");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::PtWrite(21))));
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        assert_eq!(result.stats.ptw_bound, 1);
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
        // With x bound to 21, a is forced to exactly 7.
        assert_eq!(gen[0].1, 7u32.to_le_bytes().to_vec());
    }

    #[test]
    fn detects_divergence_on_corrupted_trace() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a < 10 { abort("low"); }
                print(a);
            }
        "#;
        let (program, mut events, failure) = record(src, &[(0, 3u32.to_le_bytes().to_vec())]);
        let failure = failure.expect("crashes");
        // Flip the branch outcome.
        for ev in &mut events {
            if let TraceEvent::Branch(b) = ev {
                *b = !*b;
            }
        }
        let result = SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert!(matches!(result.status, ShepherdStatus::Diverged(_)));
    }

    #[test]
    fn multithreaded_trace_replays() {
        let src = r#"
            global flag: u32;
            fn worker(v: u32) {
                lock(1);
                flag = v;
                unlock(1);
            }
            fn main() {
                let a: u32 = input_u32(0);
                let t: u64 = spawn worker(a);
                join(t);
                if flag == 42 { abort("42"); }
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 42u32.to_le_bytes().to_vec())]);
        let failure = failure.expect("flag 42 crashes");
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed, "MT trace follows");
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn completed_run_trace_follows_to_exit() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                if a < 10 { print(1); } else { print(2); }
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 3u32.to_le_bytes().to_vec())]);
        assert!(failure.is_none());
        let result = SymMachine::new(&program, SymConfig::default()).run(&events, None);
        assert_eq!(result.status, ShepherdStatus::Completed);
    }

    #[test]
    fn div_by_zero_failure_constraint() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let b: u32 = input_u32(0);
                print(a / (b % 7));
            }
        "#;
        let (program, events, failure) = record(
            src,
            &[(0, [9u32.to_le_bytes(), 14u32.to_le_bytes()].concat())],
        );
        let failure = failure.expect("14 % 7 == 0 divides by zero");
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        assert!(result.failure_constraint.is_some(), "divisor == 0 required");
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn use_after_free_constraint_via_symbolic_pointer() {
        // The freed pointer flows through a symbolic table slot; the
        // failure constraint must confine the access to the freed range.
        let src = r#"
            global SLOTS: [u64; 32];
            fn main() {
                let k: u64 = input_u64(0) & 31;
                let p: u64 = alloc(16);
                SLOTS[k] = p;
                free(p);
                let q: u64 = SLOTS[input_u64(0) & 31];
                store64(q, 5);
                print(q);
            }
        "#;
        let (program, events, failure) = record(
            src,
            &[(0, [3u64.to_le_bytes(), 3u64.to_le_bytes()].concat())],
        );
        let failure = failure.expect("aliased slot yields freed pointer");
        assert!(matches!(
            failure.fault,
            er_minilang::error::RuntimeFault::UseAfterFree { .. }
        ));
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
    }

    #[test]
    fn null_deref_constraint_on_symbolic_pointer_value() {
        let src = r#"
            global PTRS: [u64; 8];
            fn main() {
                PTRS[3] = alloc(8);
                let i: u64 = input_u64(0) & 7;
                let p: u64 = PTRS[i];
                let v: u64 = load64(p);
                print(v);
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 5u64.to_le_bytes().to_vec())]);
        let failure = failure.expect("slot 5 is null");
        let mut result =
            SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        let gen = generate_inputs(&mut result);
        let RunOutcome::Failure(f2) = rerun(&program, &gen) else {
            panic!("must re-crash")
        };
        assert!(f2.same_failure(&failure));
        // The generated index must avoid the one initialized slot.
        let i = u64::from_le_bytes(gen[0].1[..8].try_into().unwrap()) & 7;
        assert_ne!(i, 3, "slot 3 holds a live pointer");
    }

    #[test]
    fn origins_and_site_counts_recorded() {
        let src = r#"
            fn main() {
                let a: u32 = input_u32(0);
                let x: u32 = a + 1;
                if x == 5 { abort("five"); }
            }
        "#;
        let (program, events, failure) = record(src, &[(0, 4u32.to_le_bytes().to_vec())]);
        let failure = failure.expect("crashes");
        let result = SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
        assert_eq!(result.status, ShepherdStatus::Completed);
        // The input var and the sum both have origins.
        assert!(result.origins.len() >= 2);
        assert!(!result.site_counts.is_empty());
        let input_site = result.inputs[0].site;
        assert_eq!(result.site_counts.get(&input_site), Some(&1));
    }
}
