//! The concrete-or-symbolic value held in a register during symbolic
//! execution.

use er_solver::expr::{ExprPool, ExprRef, Sort};

/// A register value: a concrete machine word or a reference into the
/// expression pool.
///
/// Concrete values keep the register-file invariant of the interpreter:
/// truncated at their defining width and zero-extended to `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymValue {
    /// A known machine word.
    Concrete(u64),
    /// A symbolic expression (bitvector- or boolean-sorted).
    Sym(ExprRef),
}

impl SymValue {
    /// Whether this value is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, SymValue::Concrete(_))
    }

    /// The concrete value, if any.
    pub fn as_concrete(&self) -> Option<u64> {
        match self {
            SymValue::Concrete(v) => Some(*v),
            SymValue::Sym(_) => None,
        }
    }

    /// Converts to a pool expression of exactly `bits` width, inserting
    /// zext/trunc/bool-to-bv adapters as needed.
    pub fn to_expr(self, pool: &mut ExprPool, bits: u32) -> ExprRef {
        match self {
            SymValue::Concrete(v) => pool.bv_const(v, bits),
            SymValue::Sym(e) => match pool.sort(e) {
                Sort::Bool => pool.bool_to_bv(e, bits),
                Sort::Bv(w) if w == bits => e,
                Sort::Bv(w) if w < bits => pool.zext(e, bits),
                Sort::Bv(_) => pool.trunc(e, bits),
            },
        }
    }

    /// Normalizes a freshly built expression: concrete constants collapse
    /// back to [`SymValue::Concrete`] so downstream stays on the fast path.
    pub fn from_expr(pool: &ExprPool, e: ExprRef) -> SymValue {
        match pool.as_const(e) {
            Some(v) => SymValue::Concrete(v),
            None => SymValue::Sym(e),
        }
    }
}

impl From<u64> for SymValue {
    fn from(v: u64) -> Self {
        SymValue::Concrete(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_solver::expr::CmpKind;

    #[test]
    fn conversion_adapts_widths() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let widened = SymValue::Sym(x).to_expr(&mut pool, 32);
        assert_eq!(pool.sort(widened), Sort::Bv(32));
        let narrowed = SymValue::Sym(widened).to_expr(&mut pool, 8);
        assert_eq!(narrowed, x, "trunc(zext(x)) folds back");
        let c = SymValue::Concrete(0x1ff).to_expr(&mut pool, 8);
        assert_eq!(pool.as_const(c), Some(0xff));
    }

    #[test]
    fn bool_exprs_become_bitvectors() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 32);
        let y = pool.var("y", 32);
        let c = pool.cmp(CmpKind::Ult, x, y);
        let bv = SymValue::Sym(c).to_expr(&mut pool, 8);
        assert_eq!(pool.sort(bv), Sort::Bv(8));
    }

    #[test]
    fn from_expr_collapses_constants() {
        let mut pool = ExprPool::new();
        let five = pool.bv_const(5, 32);
        assert_eq!(SymValue::from_expr(&pool, five), SymValue::Concrete(5));
        let x = pool.var("x", 32);
        assert!(matches!(SymValue::from_expr(&pool, x), SymValue::Sym(_)));
    }
}
