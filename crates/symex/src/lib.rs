//! Symbolic execution of the `er-minilang` IR.
//!
//! This crate is the KLEE analogue of the reproduction: it executes IR
//! with a mix of concrete and symbolic values ([`value::SymValue`]),
//! models memory as concrete bytes plus a symbolic overlay and per-object
//! solver arrays ([`mem`]), and — crucially for ER — can *follow a
//! recorded control-flow trace* instead of forking at branches
//! ([`machine::SymMachine::run`]), which is exactly the paper's
//! "shepherded symbolic execution" (§3.2).
//!
//! The executor is concrete-first: instructions whose operands are all
//! concrete run at interpreter speed and never touch the expression pool.
//! Symbolic values enter only through program inputs (`input_*`) and
//! spread by data flow, so a run whose key data values were recorded (and
//! therefore concretized) stays almost entirely on the fast path — the
//! mechanism by which recording collapses the paper's solver stalls.

pub mod machine;
pub mod mem;
pub mod value;

pub use machine::{
    MachineState, ShepherdStatus, SymConfig, SymMachine, SymRunResult, TraceDivergence,
};
pub use mem::{ObjectId, SymMemory};
pub use value::SymValue;
