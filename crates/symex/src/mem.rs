//! Symbolic memory: concrete bytes, a symbolic byte overlay, and
//! per-object solver arrays.
//!
//! Three tiers, cheapest first:
//!
//! 1. **Concrete** — backed by the interpreter's [`Memory`], used whenever
//!    address and value are both concrete and the containing object has
//!    never been accessed through a symbolic address.
//! 2. **Overlay** — symbolic *values* at concrete addresses live in a
//!    byte-granular map (`addr -> 8-bit expression`).
//! 3. **Array** — the first access through a *symbolic address* promotes
//!    the containing object to a solver array (its concrete bytes become
//!    the array's initial contents, overlay bytes become concrete-index
//!    stores). From then on every access to the object goes through
//!    `Read`/`Write` nodes — producing exactly the write chains and large
//!    symbolic objects whose cost §3.3.1 of the paper analyzes.

use crate::value::SymValue;
use er_minilang::error::RuntimeFault;
use er_minilang::ir::Program;
use er_minilang::mem::Memory;
use er_minilang::value::Width;
use er_solver::expr::{ArrayNode, ArrayRef, BvOp, ExprPool, ExprRef};
use std::collections::{BTreeMap, HashMap};

/// Identifier of a memory object (its base address).
pub type ObjectId = u64;

/// A tracked memory object (global, stack array, or heap allocation).
#[derive(Debug, Clone)]
pub struct SymObject {
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Diagnostic name.
    pub name: String,
    /// Solver array, once the object has been promoted.
    pub array: Option<ArrayRef>,
    /// Number of symbolic (`Write`-node) stores applied.
    pub symbolic_writes: u64,
}

/// The symbolic address space.
#[derive(Debug, Clone)]
pub struct SymMemory {
    concrete: Memory,
    overlay: HashMap<u64, ExprRef>,
    objects: BTreeMap<u64, SymObject>,
    freed: Vec<(u64, u64)>,
    promoted: usize,
}

impl SymMemory {
    /// Creates the address space for `program`, registering its globals as
    /// objects.
    pub fn new(program: &Program) -> Self {
        let mut m = SymMemory {
            concrete: Memory::new(program),
            overlay: HashMap::new(),
            objects: BTreeMap::new(),
            freed: Vec::new(),
            promoted: 0,
        };
        for g in &program.globals {
            m.register_object(g.addr, g.size, g.name.clone());
        }
        m
    }

    /// Registers an object at `[base, base+size)`.
    pub fn register_object(&mut self, base: u64, size: u64, name: String) {
        self.objects.insert(
            base,
            SymObject {
                base,
                size,
                name,
                array: None,
                symbolic_writes: 0,
            },
        );
    }

    /// The object containing `addr`, if any.
    pub fn object_containing(&self, addr: u64) -> Option<&SymObject> {
        let (_, obj) = self.objects.range(..=addr).next_back()?;
        (addr < obj.base + obj.size).then_some(obj)
    }

    /// All objects, ascending by base address.
    pub fn objects(&self) -> impl Iterator<Item = &SymObject> {
        self.objects.values()
    }

    /// Ranges freed so far (for use-after-free failure constraints).
    pub fn freed_ranges(&self) -> &[(u64, u64)] {
        &self.freed
    }

    /// Number of objects promoted to solver arrays.
    pub fn promoted_count(&self) -> usize {
        self.promoted
    }

    /// Allocates heap memory, mirroring the interpreter's allocator so
    /// addresses line up with the production run.
    pub fn heap_alloc(&mut self, size: u64, name: String) -> u64 {
        let base = self.concrete.heap_alloc(size);
        self.register_object(base, size.max(1), name);
        base
    }

    /// Frees a heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates the interpreter allocator's fault on invalid frees.
    pub fn heap_free(&mut self, addr: u64) -> Result<(), RuntimeFault> {
        self.concrete.heap_free(addr)?;
        if let Some(obj) = self.objects.get(&addr) {
            self.freed.push((obj.base, obj.size));
        }
        Ok(())
    }

    /// Allocates stack memory for `tid`.
    pub fn stack_alloc(&mut self, tid: u64, size: u64, name: String) -> u64 {
        let base = self.concrete.stack_alloc(tid, size);
        self.register_object(base, size.max(1), name);
        base
    }

    /// Current stack watermark for `tid`.
    pub fn stack_watermark(&self, tid: u64) -> u64 {
        self.concrete.stack_watermark(tid)
    }

    /// Pops stack allocations above `watermark`, dropping their objects and
    /// overlay bytes.
    pub fn stack_restore(&mut self, tid: u64, watermark: u64) {
        let top = self.concrete.stack_watermark(tid);
        if top <= watermark {
            return;
        }
        self.concrete.stack_restore(tid, watermark);
        let dead: Vec<u64> = self
            .objects
            .range(watermark..top)
            .map(|(&b, _)| b)
            .collect();
        for b in dead {
            self.objects.remove(&b);
        }
        self.overlay.retain(|&a, _| !(watermark..top).contains(&a));
    }

    /// Whether the byte range `[addr, addr+len)` might involve symbolic
    /// state (overlay bytes or a promoted object).
    fn range_is_plain(&self, addr: u64, len: u64) -> bool {
        if self.promoted > 0 {
            // Check the objects the range touches.
            let mut a = addr;
            while a < addr + len {
                match self.object_containing(a) {
                    Some(o) if o.array.is_some() => return false,
                    Some(o) => a = o.base + o.size,
                    None => a += 1,
                }
            }
        }
        if !self.overlay.is_empty() {
            for k in 0..len {
                if self.overlay.contains_key(&(addr + k)) {
                    return false;
                }
            }
        }
        true
    }

    /// Promotes the object containing `addr` to a solver array, absorbing
    /// its concrete bytes and overlay entries. Returns the object base.
    ///
    /// # Panics
    ///
    /// Panics if no object contains `addr`.
    pub fn promote(&mut self, pool: &mut ExprPool, addr: u64) -> ObjectId {
        let base = self
            .object_containing(addr)
            .expect("promote: no object at address")
            .base;
        let (size, name, already) = {
            let o = &self.objects[&base];
            (o.size, o.name.clone(), o.array.is_some())
        };
        if already {
            return base;
        }
        // Snapshot concrete contents as the base array's initial value.
        let mut init = Vec::with_capacity(size as usize);
        for k in 0..size {
            init.push(u64::from(
                self.concrete
                    .load(base + k, Width::W8)
                    .map(|v| v as u8)
                    .unwrap_or(0),
            ));
        }
        let mut arr = pool.array(name, size, 8, Some(init));
        // Absorb overlay bytes as concrete-index stores.
        let mut absorbed: Vec<(u64, ExprRef)> = self
            .overlay
            .iter()
            .filter(|(&a, _)| (base..base + size).contains(&a))
            .map(|(&a, &e)| (a, e))
            .collect();
        absorbed.sort_unstable_by_key(|(a, _)| *a);
        for (a, e) in absorbed {
            let idx = pool.bv_const(a - base, 64);
            arr = pool.write(arr, idx, e);
            self.overlay.remove(&a);
        }
        self.promoted += 1;
        let obj = self.objects.get_mut(&base).expect("object exists");
        obj.array = Some(arr);
        base
    }

    /// Loads `width` bytes from a concrete address.
    ///
    /// # Errors
    ///
    /// Propagates interpreter memory faults (null, unmapped, freed).
    pub fn load(
        &mut self,
        pool: &mut ExprPool,
        addr: u64,
        width: Width,
    ) -> Result<SymValue, RuntimeFault> {
        let len = width.bytes();
        // Fault check (and fast path) via the concrete memory.
        let concrete_val = self.concrete.load(addr, width)?;
        if self.range_is_plain(addr, len) {
            return Ok(SymValue::Concrete(concrete_val));
        }
        // Per-byte gather.
        let mut bytes: Vec<SymValue> = Vec::with_capacity(len as usize);
        for k in 0..len {
            bytes.push(self.load_byte(pool, addr + k)?);
        }
        Ok(combine_bytes(pool, &bytes))
    }

    fn load_byte(&mut self, pool: &mut ExprPool, addr: u64) -> Result<SymValue, RuntimeFault> {
        if let Some(obj) = self.object_containing(addr) {
            if let Some(arr) = obj.array {
                let base = obj.base;
                let idx = pool.bv_const(addr - base, 64);
                let e = pool.read(arr, idx);
                return Ok(SymValue::from_expr(pool, e));
            }
        }
        if let Some(&e) = self.overlay.get(&addr) {
            return Ok(SymValue::Sym(e));
        }
        Ok(SymValue::Concrete(self.concrete.load(addr, Width::W8)?))
    }

    /// Stores `value` at a concrete address.
    ///
    /// # Errors
    ///
    /// Propagates interpreter memory faults.
    pub fn store(
        &mut self,
        pool: &mut ExprPool,
        addr: u64,
        width: Width,
        value: SymValue,
    ) -> Result<(), RuntimeFault> {
        let len = width.bytes();
        if let SymValue::Concrete(v) = value {
            if self.range_is_plain(addr, len) {
                return self.concrete.store(addr, width, v);
            }
        }
        // Fault check (keeps the concrete map in step); contents may be
        // superseded by overlay/array bytes below.
        self.concrete
            .store(addr, width, value.as_concrete().unwrap_or(0))?;
        for k in 0..len {
            let byte = extract_byte(pool, value, k as u32);
            self.store_byte(pool, addr + k, byte);
        }
        Ok(())
    }

    fn store_byte(&mut self, pool: &mut ExprPool, addr: u64, byte: SymValue) {
        if let Some(obj) = self.object_containing(addr) {
            if let Some(arr) = obj.array {
                let base = obj.base;
                let idx = pool.bv_const(addr - base, 64);
                let v = byte.to_expr(pool, 8);
                let new_arr = pool.write(arr, idx, v);
                self.objects.get_mut(&base).expect("object exists").array = Some(new_arr);
                return;
            }
        }
        match byte {
            SymValue::Concrete(v) => {
                self.overlay.remove(&addr);
                // Concrete byte already written by the caller's fault-check
                // store for multi-byte values; write again for safety.
                let _ = self.concrete.store(addr, Width::W8, v);
            }
            SymValue::Sym(e) => {
                self.overlay.insert(addr, e);
            }
        }
    }

    /// Loads through a *symbolic* address known to fall inside the object
    /// based at `base` (which is promoted on demand). `addr` must be a
    /// 64-bit expression.
    pub fn load_symbolic(
        &mut self,
        pool: &mut ExprPool,
        base: ObjectId,
        addr: ExprRef,
        width: Width,
    ) -> SymValue {
        self.promote_base(pool, base);
        let arr = self.objects[&base].array.expect("promoted");
        let base_c = pool.bv_const(base, 64);
        let off = pool.bin(BvOp::Sub, addr, base_c);
        let mut bytes = Vec::with_capacity(width.bytes() as usize);
        for k in 0..width.bytes() {
            let kc = pool.bv_const(k, 64);
            let idx = pool.bin(BvOp::Add, off, kc);
            let e = pool.read(arr, idx);
            bytes.push(SymValue::from_expr(pool, e));
        }
        combine_bytes(pool, &bytes)
    }

    /// Stores through a symbolic address inside the object based at `base`.
    pub fn store_symbolic(
        &mut self,
        pool: &mut ExprPool,
        base: ObjectId,
        addr: ExprRef,
        width: Width,
        value: SymValue,
    ) {
        self.promote_base(pool, base);
        let mut arr = self.objects[&base].array.expect("promoted");
        let base_c = pool.bv_const(base, 64);
        let off = pool.bin(BvOp::Sub, addr, base_c);
        for k in 0..width.bytes() {
            let kc = pool.bv_const(k, 64);
            let idx = pool.bin(BvOp::Add, off, kc);
            let byte = extract_byte(pool, value, k as u32);
            let v = byte.to_expr(pool, 8);
            arr = pool.write(arr, idx, v);
        }
        let obj = self.objects.get_mut(&base).expect("object exists");
        obj.array = Some(arr);
        obj.symbolic_writes += width.bytes();
    }

    fn promote_base(&mut self, pool: &mut ExprPool, base: ObjectId) {
        if self.objects[&base].array.is_none() {
            self.promote(pool, base);
        }
    }

    /// Length of the longest `Write` chain over any promoted object.
    pub fn longest_write_chain(&self, pool: &ExprPool) -> u64 {
        self.objects
            .values()
            .filter_map(|o| o.array)
            .map(|a| chain_len(pool, a))
            .max()
            .unwrap_or(0)
    }

    /// Direct access to the concrete backing store (read-only).
    pub fn concrete(&self) -> &Memory {
        &self.concrete
    }
}

fn chain_len(pool: &ExprPool, mut a: ArrayRef) -> u64 {
    let mut n = 0;
    while let ArrayNode::Store { arr, .. } = pool.array_node(a) {
        n += 1;
        a = *arr;
    }
    n
}

/// Combines little-endian bytes into one value of `8 * bytes.len()` bits.
fn combine_bytes(pool: &mut ExprPool, bytes: &[SymValue]) -> SymValue {
    if bytes.iter().all(|b| b.is_concrete()) {
        let mut v = 0u64;
        for (k, b) in bytes.iter().enumerate() {
            v |= b.as_concrete().expect("concrete") << (8 * k);
        }
        return SymValue::Concrete(v);
    }
    let bits = 8 * bytes.len() as u32;
    let mut acc = pool.bv_const(0, bits);
    for (k, b) in bytes.iter().enumerate() {
        let be = b.to_expr(pool, 8);
        let wide = pool.zext(be, bits);
        let sh = pool.bv_const(8 * k as u64, bits);
        let shifted = pool.bin(BvOp::Shl, wide, sh);
        acc = pool.bin(BvOp::Or, acc, shifted);
    }
    SymValue::from_expr(pool, acc)
}

/// Extracts byte `k` (little-endian) of `value` as an 8-bit value.
fn extract_byte(pool: &mut ExprPool, value: SymValue, k: u32) -> SymValue {
    match value {
        SymValue::Concrete(v) => SymValue::Concrete(v >> (8 * k) & 0xff),
        SymValue::Sym(e) => {
            let bits = pool.sort(e).bits().max(8);
            let e = SymValue::Sym(e).to_expr(pool, bits);
            let sh = pool.bv_const(u64::from(8 * k), bits);
            let shifted = pool.bin(BvOp::LShr, e, sh);
            let byte = pool.trunc(shifted, 8);
            SymValue::from_expr(pool, byte)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::ir::Program;
    use er_solver::solve::{Budget, SatResult, Solver};

    fn setup() -> (SymMemory, ExprPool) {
        (SymMemory::new(&Program::default()), ExprPool::new())
    }

    #[test]
    fn concrete_round_trip() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(64, "buf".into());
        m.store(&mut p, base, Width::W32, SymValue::Concrete(0xdead_beef))
            .unwrap();
        let v = m.load(&mut p, base, Width::W32).unwrap();
        assert_eq!(v, SymValue::Concrete(0xdead_beef));
        assert_eq!(p.len(), 0, "concrete traffic must not touch the pool");
    }

    #[test]
    fn symbolic_value_at_concrete_addr_round_trips() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(64, "buf".into());
        let x = p.var("x", 32);
        m.store(&mut p, base + 8, Width::W32, SymValue::Sym(x))
            .unwrap();
        let v = m.load(&mut p, base + 8, Width::W32).unwrap();
        let SymValue::Sym(e) = v else {
            panic!("should stay symbolic")
        };
        // e must equal x semantically: check e != x is UNSAT.
        let ne = p.ne(e, x);
        let mut s = Solver::new(&mut p);
        s.assert(ne);
        assert_eq!(s.check(&Budget::default()), SatResult::Unsat);
    }

    #[test]
    fn narrow_load_of_wide_symbolic_store() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(16, "buf".into());
        let x = p.var("x", 32);
        m.store(&mut p, base, Width::W32, SymValue::Sym(x)).unwrap();
        // Byte 1 of x.
        let v = m.load(&mut p, base + 1, Width::W8).unwrap();
        let SymValue::Sym(e) = v else { panic!() };
        let eight = p.bv_const(8, 32);
        let sh = p.bin(BvOp::LShr, x, eight);
        let expect = p.trunc(sh, 8);
        let ne = p.ne(e, expect);
        let mut s = Solver::new(&mut p);
        s.assert(ne);
        assert_eq!(s.check(&Budget::default()), SatResult::Unsat);
    }

    #[test]
    fn overwrite_with_concrete_clears_overlay() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(16, "buf".into());
        let x = p.var("x", 32);
        m.store(&mut p, base, Width::W32, SymValue::Sym(x)).unwrap();
        m.store(&mut p, base, Width::W32, SymValue::Concrete(7))
            .unwrap();
        assert_eq!(
            m.load(&mut p, base, Width::W32).unwrap(),
            SymValue::Concrete(7)
        );
    }

    #[test]
    fn promotion_snapshots_concrete_and_overlay() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(16, "buf".into());
        m.store(&mut p, base, Width::W8, SymValue::Concrete(0x11))
            .unwrap();
        let x = p.var("x", 8);
        m.store(&mut p, base + 1, Width::W8, SymValue::Sym(x))
            .unwrap();
        m.promote(&mut p, base);
        assert_eq!(m.promoted_count(), 1);
        // Concrete byte readable through the array path.
        assert_eq!(
            m.load(&mut p, base, Width::W8).unwrap(),
            SymValue::Concrete(0x11)
        );
        // Symbolic byte still symbolic.
        assert!(matches!(
            m.load(&mut p, base + 1, Width::W8).unwrap(),
            SymValue::Sym(_)
        ));
    }

    #[test]
    fn symbolic_address_store_then_read_back() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(32, "buf".into());
        let i = p.var("i", 64);
        let basec = p.bv_const(base, 64);
        let addr = p.bin(BvOp::Add, basec, i);
        m.store_symbolic(&mut p, base, addr, Width::W8, SymValue::Concrete(9));
        let v = m.load_symbolic(&mut p, base, addr, Width::W8);
        let SymValue::Sym(e) = v else {
            panic!("expected symbolic read")
        };
        let nine = p.bv_const(9, 8);
        let ne = p.ne(e, nine);
        // Reading back at the same symbolic address always yields 9.
        let mut s = Solver::new(&mut p);
        s.assert(ne);
        assert_eq!(s.check(&Budget::default()), SatResult::Unsat);
        assert!(m.longest_write_chain(&p) >= 1);
    }

    #[test]
    fn concrete_access_after_promotion_goes_through_array() {
        let (mut m, mut p) = setup();
        let base = m.heap_alloc(32, "buf".into());
        let i = p.var("i", 64);
        let basec = p.bv_const(base, 64);
        let addr = p.bin(BvOp::Add, basec, i);
        m.store_symbolic(&mut p, base, addr, Width::W8, SymValue::Concrete(9));
        // A concrete load may alias the symbolic store, so it must be
        // symbolic now.
        let v = m.load(&mut p, base + 3, Width::W8).unwrap();
        assert!(matches!(v, SymValue::Sym(_)));
    }

    #[test]
    fn freed_ranges_tracked_and_faults_propagate() {
        let (mut m, mut p) = setup();
        let a = m.heap_alloc(16, "a".into());
        m.heap_free(a).unwrap();
        assert_eq!(m.freed_ranges(), &[(a, 16)]);
        assert!(m.load(&mut p, a, Width::W8).is_err());
        assert!(m.load(&mut p, 0, Width::W8).is_err());
    }

    #[test]
    fn stack_restore_drops_objects_and_overlay() {
        let (mut m, mut p) = setup();
        let mark = m.stack_watermark(0);
        let buf = m.stack_alloc(0, 32, "frame.buf".into());
        let x = p.var("x", 8);
        m.store(&mut p, buf, Width::W8, SymValue::Sym(x)).unwrap();
        m.stack_restore(0, mark);
        assert!(m.object_containing(buf).is_none());
        // Fresh allocation reuses the space, now plain.
        let buf2 = m.stack_alloc(0, 32, "frame2.buf".into());
        assert_eq!(buf2, buf);
        assert_eq!(
            m.load(&mut p, buf2, Width::W8).unwrap(),
            SymValue::Concrete(0)
        );
    }
}
