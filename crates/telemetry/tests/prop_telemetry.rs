//! Property tests for the telemetry layer: histogram merge algebra, span
//! stack discipline, and journal serialization.

use er_telemetry::hist::HistSnapshot;
use er_telemetry::journal::Event;
use er_telemetry::{span, Mode};
use proptest::prelude::*;

fn hist_strategy() -> impl Strategy<Value = HistSnapshot> {
    // Bounded so sums over merged snapshots stay far from u64 overflow
    // while still exercising every power-of-two bucket.
    prop::collection::vec(0u64..(u64::MAX >> 10), 0..32).prop_map(|vs| {
        let mut h = HistSnapshot::empty();
        for v in vs {
            h.record(v);
        }
        h
    })
}

proptest! {
    /// `merge` is associative: merging snapshots from different threads
    /// or journal shards must not depend on reduction order.
    #[test]
    fn histogram_merge_is_associative(
        a in hist_strategy(),
        b in hist_strategy(),
        c in hist_strategy(),
    ) {
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(left, right);
    }

    /// `empty()` is the identity of `merge`, on both sides.
    #[test]
    fn histogram_empty_is_merge_identity(h in hist_strategy()) {
        prop_assert_eq!(h.merge(&HistSnapshot::empty()), h.clone());
        prop_assert_eq!(HistSnapshot::empty().merge(&h), h);
    }

    /// Merging preserves the total count and sum.
    #[test]
    fn histogram_merge_preserves_totals(a in hist_strategy(), b in hist_strategy()) {
        let m = a.merge(&b);
        prop_assert_eq!(m.count, a.count + b.count);
        prop_assert_eq!(m.sum, a.sum + b.sum);
    }

    /// Nested spans close strictly LIFO: the depth observed inside each
    /// nesting level matches its position, and everything unwinds to the
    /// starting depth.
    #[test]
    fn span_nesting_closes_lifo(depth in 1usize..12) {
        let _l = er_telemetry::counters::test_mutex().lock().unwrap();
        er_telemetry::set_mode(Mode::Counters);
        let base = er_telemetry::span::current_depth();
        fn nest(remaining: usize, base: usize) {
            let _g = span!("prop.nest");
            assert_eq!(er_telemetry::span::current_depth(), base + 1);
            if remaining > 1 {
                nest(remaining - 1, base + 1);
            }
            // After the child closed, our own depth is intact.
            assert_eq!(er_telemetry::span::current_depth(), base + 1);
        }
        nest(depth, base);
        prop_assert_eq!(er_telemetry::span::current_depth(), base);
        er_telemetry::set_mode(Mode::Off);
    }

    /// Journal events survive a JSONL round trip bit-for-bit.
    #[test]
    fn journal_event_round_trips(
        ts_ns in any::<u64>(),
        name_seed in 0usize..6,
        ctx_seed in 0usize..4,
        has_parent in any::<bool>(),
        depth in any::<u32>(),
        dur_ns in any::<u64>(),
        counters in prop::collection::vec((0usize..8, any::<u64>()), 0..6),
    ) {
        let names = [
            "shepherd.decode", "shepherd.symbex", "shepherd.solve",
            "phase.select", "phase.instrument", "phase.deploy",
        ];
        let ctxs = ["", "Libpng-2004-0597", "Apache-25520", "with \"quotes\" & \\slashes\\"];
        let cnames = [
            "sat.conflicts", "sat.propagations", "symex.steps",
            "pt.packets_encoded", "ring.overwrites", "select.graph_nodes",
            "deploy.runs", "solver.queries",
        ];
        let ev = Event {
            ts_ns,
            kind: "span".to_string(),
            name: names[name_seed].to_string(),
            ctx: ctxs[ctx_seed].to_string(),
            parent: has_parent.then(|| "reconstruct.iteration".to_string()),
            depth,
            dur_ns,
            counters: counters
                .into_iter()
                .map(|(i, v)| (cnames[i].to_string(), v))
                .collect(),
        };
        let line = serde_json::to_string(&ev).unwrap();
        prop_assert!(!line.contains('\n'), "JSONL events must be single lines");
        let back: Event = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, ev);
    }
}
