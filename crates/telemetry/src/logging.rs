//! Leveled, environment-filtered logging to stderr.
//!
//! The threshold comes from `ER_LOG` (`error`, `warn`, `info`, `debug`;
//! default `info`). Messages above the threshold cost one relaxed atomic
//! load and a compare.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or wrong-result conditions.
    Error = 0,
    /// Degraded behavior worth surfacing.
    Warn = 1,
    /// Progress and milestones (default threshold).
    Info = 2,
    /// Per-step detail.
    Debug = 3,
}

impl Level {
    /// Lower-case label used in output.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const LEVEL_UNINIT: u8 = 0xff;
static THRESHOLD: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

#[cold]
fn init_threshold() -> u8 {
    let t = match std::env::var("ER_LOG").as_deref() {
        Ok("error") => Level::Error,
        Ok("warn") => Level::Warn,
        Ok("debug") => Level::Debug,
        _ => Level::Info,
    } as u8;
    THRESHOLD.store(t, Ordering::Relaxed);
    t
}

/// Whether messages at `level` pass the `ER_LOG` filter.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    let t = THRESHOLD.load(Ordering::Relaxed);
    let t = if t == LEVEL_UNINIT {
        init_threshold()
    } else {
        t
    };
    (level as u8) <= t
}

/// Overrides the threshold (tests).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Writes one formatted line to stderr.
#[doc(hidden)]
pub fn write_line(level: Level, msg: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {}", level.label(), msg);
}

/// Logs a formatted message at the given level (`error`, `warn`,
/// `info`, or `debug`), filtered by `ER_LOG`.
///
/// ```
/// er_telemetry::log!(info, "reconstructed {} of {} workloads", 13, 15);
/// ```
#[macro_export]
macro_rules! log {
    (error, $($arg:tt)*) => { $crate::__log_at!($crate::logging::Level::Error, $($arg)*) };
    (warn,  $($arg:tt)*) => { $crate::__log_at!($crate::logging::Level::Warn,  $($arg)*) };
    (info,  $($arg:tt)*) => { $crate::__log_at!($crate::logging::Level::Info,  $($arg)*) };
    (debug, $($arg:tt)*) => { $crate::__log_at!($crate::logging::Level::Debug, $($arg)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::logging::level_enabled($level) {
            $crate::logging::write_line($level, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_orders_levels() {
        set_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_level(Level::Info);
        assert!(level_enabled(Level::Info));
    }

    #[test]
    fn log_macro_compiles_at_every_level() {
        set_level(Level::Error);
        crate::log!(error, "e {}", 1);
        crate::log!(warn, "w");
        crate::log!(info, "i");
        crate::log!(debug, "d");
        set_level(Level::Info);
    }
}
