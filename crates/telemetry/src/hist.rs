//! Process-wide named histograms with power-of-two buckets.
//!
//! Recording is lock-free: each histogram is an array of relaxed
//! `AtomicU64` buckets plus atomic count/sum/min/max. Unlike counters,
//! histograms are process-global (not per-thread) — they feed offline
//! distribution reports, not per-iteration deltas.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two buckets; bucket `i` holds values whose bit
/// length is `i` (bucket 0 = value 0, bucket 1 = 1, bucket 2 = 2..=3, …),
/// with the top bucket also absorbing 64-bit values.
pub const BUCKETS: usize = 64;

fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Lock-free recorder for one named histogram.
pub struct AtomicHist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> Self {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Reads the current distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram reading; merging is associative and
/// commutative with [`HistSnapshot::empty`] as identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// The identity element for [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records into a plain snapshot (test/merge-model use).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Combines two distributions.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Mean observed value, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

fn registry() -> &'static Mutex<Vec<(&'static str, &'static AtomicHist)>> {
    static R: OnceLock<Mutex<Vec<(&'static str, &'static AtomicHist)>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Finds or allocates the recorder for `name`. Called once per
/// `histogram!` callsite (cached).
pub fn register(name: &'static str) -> &'static AtomicHist {
    let mut reg = registry().lock().unwrap();
    if let Some((_, h)) = reg.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static AtomicHist = Box::leak(Box::new(AtomicHist::new()));
    reg.push((name, h));
    h
}

/// All registered histograms as `(name, snapshot)` pairs.
pub fn all_snapshots() -> Vec<(&'static str, HistSnapshot)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(n, h)| (*n, h.snapshot()))
        .collect()
}

/// A cheap, copyable reference to one histogram callsite.
#[derive(Clone, Copy)]
pub struct Handle {
    cell: &'static OnceLock<&'static AtomicHist>,
    name: &'static str,
}

impl Handle {
    /// Used by the `histogram!` macro.
    #[doc(hidden)]
    pub fn from_cache(cell: &'static OnceLock<&'static AtomicHist>, name: &'static str) -> Self {
        Handle { cell, name }
    }

    /// Records one observation. Disabled mode: one atomic load and a
    /// branch.
    #[inline(always)]
    pub fn record(self, v: u64) {
        if crate::enabled() {
            self.record_slow(v);
        }
    }

    #[inline(never)]
    fn record_slow(self, v: u64) {
        if crate::mode() == crate::Mode::Off {
            return;
        }
        self.cell.get_or_init(|| register(self.name)).record(v);
    }
}

/// References one named histogram, caching the registry lookup per
/// callsite.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __ER_HIST_SLOT: ::std::sync::OnceLock<&'static $crate::hist::AtomicHist> =
            ::std::sync::OnceLock::new();
        $crate::hist::Handle::from_cache(&__ER_HIST_SLOT, $name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = HistSnapshot::empty();
        let mut b = HistSnapshot::empty();
        let mut all = HistSnapshot::empty();
        for v in [0, 1, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [3, 1000] {
            b.record(v);
            all.record(v);
        }
        assert_eq!(a.merge(&b), all);
        assert_eq!(b.merge(&a), all);
        assert_eq!(a.merge(&HistSnapshot::empty()), a);
    }

    #[test]
    fn atomic_recorder_round_trips() {
        let _l = crate::counters::test_mutex().lock().unwrap();
        crate::set_mode(crate::Mode::Counters);
        let h = histogram!("test.hist.roundtrip");
        h.record(7);
        h.record(9);
        let snap = all_snapshots()
            .into_iter()
            .find(|(n, _)| *n == "test.hist.roundtrip")
            .map(|(_, s)| s)
            .unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 16);
        assert_eq!(snap.min, 7);
        assert_eq!(snap.max, 9);
        crate::set_mode(crate::Mode::Off);
    }
}
