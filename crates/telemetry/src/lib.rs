//! `er-telemetry`: structured spans, process-wide counters/histograms, and
//! a JSONL event journal for the ER reconstruction pipeline.
//!
//! Design goals, in priority order:
//!
//! 1. **Zero overhead when disabled.** Every instrumentation macro checks a
//!    single process-global atomic ([`enabled`]) before doing anything
//!    else; the disabled path is one relaxed load and a predictable
//!    branch (< 2 ns, verified by `crates/bench/benches/telemetry.rs`).
//! 2. **Lock-free hot path when enabled.** Counters are relaxed
//!    `AtomicU64` slots in per-thread tables; histograms are atomic
//!    power-of-two bucket arrays. No mutex is ever taken on the
//!    increment path (registration of a *new* counter name takes a lock
//!    once per callsite, cached thereafter).
//! 3. **Exact attribution.** Per-thread counter tables mean a
//!    reconstruction running on one thread can take before/after
//!    snapshots ([`local_snapshot`]) whose deltas are unaffected by
//!    other threads (e.g. parallel `cargo test`). Global aggregation
//!    across threads is available via [`global_snapshot`].
//!
//! # Modes
//!
//! The mode comes from the `ER_TELEMETRY` environment variable:
//!
//! | value | spans | counters | journal |
//! |---|---|---|---|
//! | `off` (default) | no | no | no |
//! | `counters` | timed, aggregated into counters | yes | no |
//! | `full` | timed | yes | JSONL events under `ER_TELEMETRY_DIR` |
//!
//! Components that *need* counters for their own bookkeeping (e.g.
//! `Reconstructor` deriving `IterationStats` from snapshots) can hold a
//! [`CountersGuard`] from [`ensure_counters`], which raises `off` to
//! `counters` for its lifetime without affecting an explicitly
//! configured mode.
//!
//! # Example
//!
//! ```
//! use er_telemetry::{counter, span};
//!
//! let _g = er_telemetry::ensure_counters();
//! let before = er_telemetry::local_snapshot();
//! {
//!     let _span = span!("demo.phase");
//!     counter!("demo.widgets").add(3);
//! }
//! let delta = er_telemetry::local_snapshot().delta(&before);
//! assert_eq!(delta.get("demo.widgets"), 3);
//! ```

pub mod counters;
pub mod hist;
pub mod journal;
pub mod logging;
pub mod span;

pub use counters::{local_snapshot, CounterSnapshot};
pub use hist::HistSnapshot;
pub use journal::{read_journal, Event};
pub use span::set_context;

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Mutex;

/// Telemetry collection level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// No collection; instrumentation macros are no-ops.
    Off = 0,
    /// Counters and histograms collected; span timings aggregated into
    /// counters; no journal.
    Counters = 1,
    /// Everything in `Counters`, plus every span emits a JSONL event.
    Full = 2,
}

const MODE_UNINIT: u8 = 0xff;

/// Effective mode, read on every hot path. `0xff` = not yet initialized.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);
/// Configured base mode (from env or [`set_mode`]), before guard forcing.
static BASE: AtomicU8 = AtomicU8::new(MODE_UNINIT);
/// Number of outstanding [`CountersGuard`]s.
static FORCE_COUNTERS: AtomicU32 = AtomicU32::new(0);
/// Serializes mode recomputation (never on the hot path).
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn env_mode() -> Mode {
    match std::env::var("ER_TELEMETRY").as_deref() {
        Ok("counters") => Mode::Counters,
        Ok("full") => Mode::Full,
        _ => Mode::Off,
    }
}

/// Recomputes `MODE` from `BASE` + guard count. Caller holds `MODE_LOCK`.
fn recompute_locked() -> u8 {
    let base = match BASE.load(Ordering::Relaxed) {
        MODE_UNINIT => {
            let m = env_mode();
            BASE.store(m as u8, Ordering::Relaxed);
            m
        }
        1 => Mode::Counters,
        2 => Mode::Full,
        _ => Mode::Off,
    };
    let eff = if base == Mode::Off && FORCE_COUNTERS.load(Ordering::Relaxed) > 0 {
        Mode::Counters
    } else {
        base
    };
    MODE.store(eff as u8, Ordering::Relaxed);
    eff as u8
}

#[cold]
fn init_mode() -> u8 {
    let _l = MODE_LOCK.lock().unwrap();
    let raw = MODE.load(Ordering::Relaxed);
    if raw != MODE_UNINIT {
        return raw;
    }
    recompute_locked()
}

/// The current telemetry mode.
#[inline]
pub fn mode() -> Mode {
    let raw = MODE.load(Ordering::Relaxed);
    let raw = if raw == MODE_UNINIT { init_mode() } else { raw };
    match raw {
        1 => Mode::Counters,
        2 => Mode::Full,
        _ => Mode::Off,
    }
}

/// Whether any collection is active. This is the hot-path check: one
/// relaxed atomic load and a compare.
#[inline(always)]
pub fn enabled() -> bool {
    // The uninit sentinel (0xff) counts as "maybe enabled" so the first
    // instrumentation hit initializes the mode; thereafter the load is a
    // plain 0/1/2 compare.
    MODE.load(Ordering::Relaxed) != Mode::Off as u8
}

/// Overrides the mode (tests and benchmarks). Prefer `ER_TELEMETRY` in
/// production use.
pub fn set_mode(m: Mode) {
    let _l = MODE_LOCK.lock().unwrap();
    BASE.store(m as u8, Ordering::Relaxed);
    recompute_locked();
}

/// Keeps counters collection alive while held (see [`ensure_counters`]).
#[must_use = "counters stay enabled only while the guard lives"]
pub struct CountersGuard(());

/// Raises the mode from `Off` to `Counters` for the guard's lifetime.
///
/// Used by components that derive their own statistics from counter
/// snapshots and therefore need collection even when the user asked for
/// no telemetry output. Nested/concurrent guards are reference-counted;
/// an explicit `counters`/`full` mode is left untouched.
pub fn ensure_counters() -> CountersGuard {
    let _l = MODE_LOCK.lock().unwrap();
    FORCE_COUNTERS.fetch_add(1, Ordering::Relaxed);
    recompute_locked();
    CountersGuard(())
}

impl Drop for CountersGuard {
    fn drop(&mut self) {
        let _l = MODE_LOCK.lock().unwrap();
        FORCE_COUNTERS.fetch_sub(1, Ordering::Relaxed);
        recompute_locked();
    }
}

/// A process-wide aggregate counter snapshot (sums across all threads
/// that ever recorded).
pub fn global_snapshot() -> CounterSnapshot {
    counters::global_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_counters_raises_and_restores() {
        // Serialize against other tests that touch the global mode.
        let _l = crate::counters::test_mutex().lock().unwrap();
        set_mode(Mode::Off);
        assert_eq!(mode(), Mode::Off);
        {
            let _a = ensure_counters();
            assert_eq!(mode(), Mode::Counters);
            {
                let _b = ensure_counters();
                assert_eq!(mode(), Mode::Counters);
            }
            assert_eq!(mode(), Mode::Counters);
        }
        assert_eq!(mode(), Mode::Off);
    }

    #[test]
    fn explicit_mode_survives_guard() {
        let _l = crate::counters::test_mutex().lock().unwrap();
        set_mode(Mode::Full);
        {
            let _a = ensure_counters();
            assert_eq!(mode(), Mode::Full);
        }
        assert_eq!(mode(), Mode::Full);
        set_mode(Mode::Off);
    }
}
