//! Hierarchical RAII spans with wall-clock attribution.
//!
//! A span is opened with the [`span!`](crate::span) macro and closed when
//! its guard drops. Spans nest on a thread-local stack (strictly LIFO —
//! a guard dropped out of order is detected and reported). Per mode:
//!
//! - `Counters`: each close adds its duration to `span.<name>.ns` and
//!   bumps `span.<name>.calls`.
//! - `Full`: additionally, each close emits a JSONL [`Event`] carrying
//!   the duration, nesting (parent/depth), the current context label,
//!   and the *local* counter deltas attributable to the span.

use crate::counters::{self, CounterSnapshot};
use crate::journal::{self, Event};
use crate::Mode;
use std::cell::RefCell;
use std::time::Instant;

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    /// Local counter reading at entry (`Full` mode only).
    enter_snap: Option<CounterSnapshot>,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
    static CONTEXT: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Sets the thread's context label (e.g. the current workload name);
/// stamped onto every event this thread emits.
pub fn set_context(ctx: &str) {
    CONTEXT.with(|c| {
        let mut c = c.borrow_mut();
        c.clear();
        c.push_str(ctx);
    });
}

/// The thread's current context label.
pub fn context() -> String {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Current span nesting depth on this thread (0 = no open span).
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Closes its span when dropped. Construct via [`span!`](crate::span).
#[must_use = "a span measures the scope of its guard; bind it to a variable"]
pub struct SpanGuard {
    /// `None` when telemetry was off at entry (the guard is inert).
    name: Option<&'static str>,
}

/// Used by the `span!` macro.
#[doc(hidden)]
pub fn enter(name: &'static str) -> SpanGuard {
    let mode = crate::mode();
    if mode == Mode::Off {
        return SpanGuard { name: None };
    }
    let enter_snap = (mode == Mode::Full).then(counters::local_snapshot);
    STACK.with(|s| {
        s.borrow_mut().push(ActiveSpan {
            name,
            start: Instant::now(),
            enter_snap,
        })
    });
    SpanGuard { name: Some(name) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name else { return };
        let Some(span) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            match s.last() {
                Some(top) if top.name == name => s.pop(),
                _ => {
                    // Out-of-order drop: the program moved a guard across
                    // scopes. Report rather than corrupt the stack.
                    crate::log!(
                        warn,
                        "span guard `{name}` dropped out of LIFO order; event skipped"
                    );
                    None
                }
            }
        }) else {
            return;
        };
        let dur = span.start.elapsed();
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);

        // Aggregate into counters in both enabled modes. Dynamic names
        // are interned once per distinct span name.
        let ns_slot = counters::register_dynamic(format!("span.{name}.ns"));
        let calls_slot = counters::register_dynamic(format!("span.{name}.calls"));
        counters::add_to_slot(ns_slot, dur_ns);
        counters::add_to_slot(calls_slot, 1);

        if let Some(enter_snap) = span.enter_snap {
            let deltas = counters::local_snapshot().delta(&enter_snap);
            let (parent, depth) = STACK.with(|s| {
                let s = s.borrow();
                (s.last().map(|p| p.name.to_string()), s.len() as u32)
            });
            journal::emit(&Event {
                ts_ns: journal::now_ns(),
                kind: "span".to_string(),
                name: name.to_string(),
                ctx: context(),
                parent,
                depth,
                dur_ns,
                counters: deltas
                    .iter()
                    .filter(|(n, v)| *v > 0 && !n.starts_with("span."))
                    .map(|(n, v)| (n.to_string(), v))
                    .collect(),
            });
        }
    }
}

/// Opens a timed span; the returned guard closes it on drop.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind() {
        let _l = crate::counters::test_mutex().lock().unwrap();
        crate::set_mode(Mode::Counters);
        assert_eq!(current_depth(), 0);
        {
            let _a = crate::span!("test.outer");
            assert_eq!(current_depth(), 1);
            {
                let _b = crate::span!("test.inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let snap = counters::local_snapshot();
        assert_eq!(snap.get("span.test.outer.calls"), 1);
        assert!(snap.get("span.test.outer.ns") > 0);
        crate::set_mode(Mode::Off);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _l = crate::counters::test_mutex().lock().unwrap();
        crate::set_mode(Mode::Off);
        let before = counters::local_snapshot();
        {
            let _a = crate::span!("test.off");
            assert_eq!(current_depth(), 0);
        }
        let delta = counters::local_snapshot().delta(&before);
        assert_eq!(delta.get("span.test.off.calls"), 0);
    }

    #[test]
    fn context_is_per_thread() {
        set_context("workload-a");
        assert_eq!(context(), "workload-a");
        std::thread::spawn(|| assert_eq!(context(), ""))
            .join()
            .unwrap();
        set_context("");
    }
}
