//! Process-wide named counters with per-thread storage.
//!
//! Counter names live in a global registry mapping each name to a slot
//! index; every thread lazily owns a fixed-size table of relaxed
//! `AtomicU64` slots. Increments touch only the calling thread's table
//! (no sharing, no false-sharing-induced stalls across unrelated
//! threads), while aggregation walks all tables.
//!
//! The `counter!` macro caches the slot lookup per callsite behind a
//! `OnceLock`, so the steady-state enabled path is: one mode load, one
//! `OnceLock` load, one thread-local access, one relaxed `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of distinct counter names in one process. Exceeding it
/// panics at registration time (a programming error, not a data issue).
pub const MAX_COUNTERS: usize = 256;

struct Table {
    slots: [AtomicU64; MAX_COUNTERS],
}

impl Table {
    fn new() -> Self {
        Table {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

fn tables() -> &'static Mutex<Vec<Arc<Table>>> {
    static TABLES: OnceLock<Mutex<Vec<Arc<Table>>>> = OnceLock::new();
    TABLES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Table> = {
        let t = Arc::new(Table::new());
        tables().lock().unwrap().push(Arc::clone(&t));
        t
    };
}

/// Finds or allocates the slot for `name`.
///
/// Called once per `counter!` callsite (cached), or per distinct dynamic
/// name for [`register_dynamic`].
pub fn register(name: &'static str) -> usize {
    let mut names = names().lock().unwrap();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i;
    }
    assert!(
        names.len() < MAX_COUNTERS,
        "too many distinct counters (max {MAX_COUNTERS}); raise MAX_COUNTERS"
    );
    names.push(name);
    names.len() - 1
}

/// [`register`] for runtime-built names (e.g. `span.<name>.ns`); leaks
/// each distinct name once.
pub fn register_dynamic(name: String) -> usize {
    {
        let names = names().lock().unwrap();
        if let Some(i) = names.iter().position(|n| *n == name) {
            return i;
        }
    }
    register(Box::leak(name.into_boxed_str()))
}

/// Adds `n` to the slot in the calling thread's table. Caller has
/// already checked the mode.
pub(crate) fn add_to_slot(slot: usize, n: u64) {
    LOCAL.with(|t| t.slots[slot].fetch_add(n, Ordering::Relaxed));
}

/// A cheap, copyable reference to one counter callsite.
///
/// Produced by the [`counter!`](crate::counter) macro; not constructed
/// directly.
#[derive(Clone, Copy)]
pub struct Handle {
    cell: &'static OnceLock<usize>,
    name: &'static str,
}

impl Handle {
    /// Used by the `counter!` macro.
    #[doc(hidden)]
    pub fn from_cache(cell: &'static OnceLock<usize>, name: &'static str) -> Self {
        Handle { cell, name }
    }

    /// Adds `n`. Disabled mode: one atomic load and a branch.
    #[inline(always)]
    pub fn add(self, n: u64) {
        if crate::enabled() {
            self.add_slow(n);
        }
    }

    /// Adds 1.
    #[inline(always)]
    pub fn incr(self) {
        self.add(1);
    }

    #[inline(never)]
    fn add_slow(self, n: u64) {
        // `enabled()` passes while the mode is still uninitialized;
        // `mode()` resolves it and gives the real answer.
        if crate::mode() == crate::Mode::Off {
            return;
        }
        let slot = *self.cell.get_or_init(|| register(self.name));
        add_to_slot(slot, n);
    }
}

/// References one named counter, caching the registry lookup per
/// callsite.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __ER_COUNTER_SLOT: ::std::sync::OnceLock<usize> = ::std::sync::OnceLock::new();
        $crate::counters::Handle::from_cache(&__ER_COUNTER_SLOT, $name)
    }};
}

/// A point-in-time reading of every registered counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// `(name, value)` in registration order.
    values: Vec<(&'static str, u64)>,
}

impl CounterSnapshot {
    /// The value for `name` (0 if never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Per-counter difference `self - earlier` (saturating, so a counter
    /// registered between the two snapshots just reports its value).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            values: self
                .values
                .iter()
                .map(|(n, v)| (*n, v.saturating_sub(earlier.get(n))))
                .collect(),
        }
    }

    /// Iterates `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().copied()
    }

    /// `(name, value)` pairs with nonzero values.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        self.values
            .iter()
            .copied()
            .filter(|(_, v)| *v > 0)
            .collect()
    }
}

/// Reads the calling thread's counters. Deltas between two local
/// snapshots are exact for single-threaded work even while other
/// threads record concurrently.
pub fn local_snapshot() -> CounterSnapshot {
    let names = names().lock().unwrap().clone();
    LOCAL.with(|t| CounterSnapshot {
        values: names
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, t.slots[i].load(Ordering::Relaxed)))
            .collect(),
    })
}

/// Sums counters across every thread that ever recorded.
pub fn global_snapshot() -> CounterSnapshot {
    let names = names().lock().unwrap().clone();
    let tables = tables().lock().unwrap();
    CounterSnapshot {
        values: names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let sum = tables
                    .iter()
                    .map(|t| t.slots[i].load(Ordering::Relaxed))
                    .sum();
                (*n, sum)
            })
            .collect(),
    }
}

/// Serializes tests that mutate the global telemetry mode.
#[doc(hidden)]
pub fn test_mutex() -> &'static Mutex<()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn disabled_counters_do_not_record() {
        let _l = test_mutex().lock().unwrap();
        crate::set_mode(Mode::Off);
        let before = local_snapshot();
        counter!("test.disabled").add(5);
        let delta = local_snapshot().delta(&before);
        assert_eq!(delta.get("test.disabled"), 0);
    }

    #[test]
    fn local_deltas_are_exact() {
        let _l = test_mutex().lock().unwrap();
        crate::set_mode(Mode::Counters);
        let before = local_snapshot();
        counter!("test.local").add(2);
        counter!("test.local").incr();
        let delta = local_snapshot().delta(&before);
        assert_eq!(delta.get("test.local"), 3);
        crate::set_mode(Mode::Off);
    }

    #[test]
    fn other_threads_do_not_pollute_local_deltas() {
        let _l = test_mutex().lock().unwrap();
        crate::set_mode(Mode::Counters);
        let before = local_snapshot();
        std::thread::spawn(|| {
            counter!("test.cross_thread").add(1_000);
        })
        .join()
        .unwrap();
        let delta = local_snapshot().delta(&before);
        assert_eq!(delta.get("test.cross_thread"), 0);
        assert!(global_snapshot().get("test.cross_thread") >= 1_000);
        crate::set_mode(Mode::Off);
    }

    #[test]
    fn dynamic_names_dedupe() {
        let a = register_dynamic("test.dyn.a".to_string());
        let b = register_dynamic("test.dyn.a".to_string());
        assert_eq!(a, b);
    }
}
