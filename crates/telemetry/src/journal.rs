//! JSONL event journal: one JSON object per line, appended to a
//! per-process file under `ER_TELEMETRY_DIR` (default `telemetry/`).
//!
//! Only `Full` mode writes events. The file is opened lazily on the
//! first emission, so setting the environment before any instrumentation
//! fires is sufficient. Lines are flushed on every write — a crash while
//! reconstructing loses at most the event being written, which is the
//! property a failure-diagnosis journal needs.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Nanoseconds since process telemetry start.
    pub ts_ns: u64,
    /// Event kind (currently `"span"`).
    pub kind: String,
    /// Span name, e.g. `"shepherd.symbex"`.
    pub name: String,
    /// Thread context label (workload name) at emission.
    pub ctx: String,
    /// Enclosing span's name, if any.
    pub parent: Option<String>,
    /// Nesting depth of the enclosing span (0 = top level).
    pub depth: u32,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Counter deltas attributable to this span (`Full` mode, local
    /// table), nonzero entries only.
    pub counters: Vec<(String, u64)>,
}

/// Nanoseconds since the process's telemetry epoch.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

struct Sink {
    writer: BufWriter<fs::File>,
    path: PathBuf,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static S: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

fn open_sink() -> Option<Sink> {
    let dir = std::env::var("ER_TELEMETRY_DIR").unwrap_or_else(|_| "telemetry".to_string());
    let dir = PathBuf::from(dir);
    if let Err(e) = fs::create_dir_all(&dir) {
        crate::log!(
            warn,
            "telemetry journal disabled: cannot create {dir:?}: {e}"
        );
        return None;
    }
    let path = dir.join(format!("er-journal-{}.jsonl", std::process::id()));
    match fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => Some(Sink {
            writer: BufWriter::new(f),
            path,
        }),
        Err(e) => {
            crate::log!(
                warn,
                "telemetry journal disabled: cannot open {path:?}: {e}"
            );
            None
        }
    }
}

/// Appends one event (no-op unless the journal can be opened).
pub fn emit(ev: &Event) {
    let mut guard = sink().lock().unwrap();
    if guard.is_none() {
        *guard = open_sink();
    }
    let Some(s) = guard.as_mut() else { return };
    if let Ok(line) = serde_json::to_string(ev) {
        let _ = writeln!(s.writer, "{line}");
        let _ = s.writer.flush();
    }
}

/// The journal file path, once anything has been written.
pub fn journal_path() -> Option<PathBuf> {
    sink().lock().unwrap().as_ref().map(|s| s.path.clone())
}

/// Flushes buffered events to disk.
pub fn flush() {
    if let Some(s) = sink().lock().unwrap().as_mut() {
        let _ = s.writer.flush();
    }
}

/// Parses a journal file back into events. Malformed lines are
/// reported in the error rather than silently skipped.
pub fn read_journal(path: &Path) -> Result<Vec<Event>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde_json::from_str::<Event>(l).map_err(|e| format!("{path:?}:{}: {e}", i + 1))
        })
        .collect()
}

/// Reads every `er-journal-*.jsonl` under `dir`, sorted by file name.
pub fn read_journal_dir(dir: &Path) -> Result<Vec<Event>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read dir {dir:?}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("er-journal-") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    let mut events = Vec::new();
    for p in paths {
        events.extend(read_journal(&p)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let ev = Event {
            ts_ns: 123,
            kind: "span".to_string(),
            name: "shepherd.symbex".to_string(),
            ctx: "Libpng-2004-0597".to_string(),
            parent: Some("reconstruct.iteration".to_string()),
            depth: 1,
            dur_ns: 456_789,
            counters: vec![("symex.steps".to_string(), 42)],
        };
        let line = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn missing_parent_round_trips_as_none() {
        let ev = Event {
            ts_ns: 0,
            kind: "span".to_string(),
            name: "x".to_string(),
            ctx: String::new(),
            parent: None,
            depth: 0,
            dur_ns: 1,
            counters: vec![],
        };
        let line = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back.parent, None);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
