//! Deterministic, seeded fault injection for the ER pipeline.
//!
//! ER's premise is that production failures are messy: traces wrap, packets
//! drop, workers die, spill disks fill, solvers time out. This crate is the
//! substrate that *proves* the pipeline tolerates that mess. Each injection
//! point in `pt`, `fleet`, `solver`, and `core` asks [`inject`] whether the
//! armed [`ChaosPlan`] wants a fault here; decisions are a pure function of
//! `(seed, fault, nth-call)`, so a given plan replays bit-identically on a
//! serial pool.
//!
//! Every injected fault must be *handled* in exactly one of three ways, and
//! the handler reports which (the `chaos_sweep` bench gate asserts the
//! books balance):
//!
//! * [`note_recovered`] — a retry absorbed the fault completely (a dropped
//!   crash report was re-offered, a panicked work item was requeued, a spill
//!   write succeeded on a later attempt);
//! * [`note_degraded`] — a documented fallback took over at reduced
//!   fidelity (a spill target kept its trace in memory, a solver query
//!   stalled into the reinstrumentation loop);
//! * [`note_typed_error`] — the fault surfaced as a typed error the caller
//!   is prepared for (an undecodable trace, an unreadable spill file), never
//!   as a panic.
//!
//! Nothing here is wired to production builds: when no plan is armed,
//! [`inject`] is a single relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A pipeline failure domain — the unit the smoke gate asserts coverage
/// over ("≥1 injected and ≥1 handled fault per domain").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Trace bytes between the PT ring and the decoder.
    Trace,
    /// Crash-report ingestion (queue, drain).
    Ingest,
    /// The trace store's spill directory I/O.
    Store,
    /// Worker closures on the fleet pool.
    Pool,
    /// Constraint-solver queries.
    Solver,
}

impl Domain {
    /// Every domain, in display order.
    pub const ALL: [Domain; 5] = [
        Domain::Trace,
        Domain::Ingest,
        Domain::Store,
        Domain::Pool,
        Domain::Solver,
    ];

    /// Stable lower-case name (used in counter names and reports).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Trace => "trace",
            Domain::Ingest => "ingest",
            Domain::Store => "store",
            Domain::Pool => "pool",
            Domain::Solver => "solver",
        }
    }

    const fn idx(self) -> usize {
        match self {
            Domain::Trace => 0,
            Domain::Ingest => 1,
            Domain::Store => 2,
            Domain::Pool => 3,
            Domain::Solver => 4,
        }
    }
}

/// One injectable fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Flip bytes in a shipped trace (silent corruption).
    TraceCorrupt,
    /// Cut a shipped trace short (head or tail loss).
    TraceTruncate,
    /// Swap two chunks of a shipped trace (reordered DMA-style damage).
    TraceReorder,
    /// Reject a crash report at the ingest queue (packet loss).
    IngestDrop,
    /// Deliver a crash report twice out of one drain.
    IngestDuplicate,
    /// Fail a spill-directory write.
    SpillWrite,
    /// Fail a spill-directory read.
    SpillRead,
    /// Panic inside a worker-pool closure.
    WorkerPanic,
    /// Force a solver query to stall (timeout analogue).
    SolverStall,
    /// Tear the tail of a WAL append (power-loss mid-write): the record
    /// prefix reaches the log, then the writing process dies.
    WalTear,
}

impl Fault {
    /// Every fault, in display order.
    pub const ALL: [Fault; 10] = [
        Fault::TraceCorrupt,
        Fault::TraceTruncate,
        Fault::TraceReorder,
        Fault::IngestDrop,
        Fault::IngestDuplicate,
        Fault::SpillWrite,
        Fault::SpillRead,
        Fault::WorkerPanic,
        Fault::SolverStall,
        Fault::WalTear,
    ];

    /// The failure domain this fault belongs to.
    pub fn domain(self) -> Domain {
        match self {
            Fault::TraceCorrupt | Fault::TraceTruncate | Fault::TraceReorder => Domain::Trace,
            Fault::IngestDrop | Fault::IngestDuplicate => Domain::Ingest,
            Fault::SpillWrite | Fault::SpillRead | Fault::WalTear => Domain::Store,
            Fault::WorkerPanic => Domain::Pool,
            Fault::SolverStall => Domain::Solver,
        }
    }

    /// Stable snake-case name (used in counter names and reports).
    pub fn name(self) -> &'static str {
        match self {
            Fault::TraceCorrupt => "trace_corrupt",
            Fault::TraceTruncate => "trace_truncate",
            Fault::TraceReorder => "trace_reorder",
            Fault::IngestDrop => "ingest_drop",
            Fault::IngestDuplicate => "ingest_duplicate",
            Fault::SpillWrite => "spill_write",
            Fault::SpillRead => "spill_read",
            Fault::WorkerPanic => "worker_panic",
            Fault::SolverStall => "solver_stall",
            Fault::WalTear => "wal_tear",
        }
    }

    const fn idx(self) -> usize {
        match self {
            Fault::TraceCorrupt => 0,
            Fault::TraceTruncate => 1,
            Fault::TraceReorder => 2,
            Fault::IngestDrop => 3,
            Fault::IngestDuplicate => 4,
            Fault::SpillWrite => 5,
            Fault::SpillRead => 6,
            Fault::WorkerPanic => 7,
            Fault::SolverStall => 8,
            Fault::WalTear => 9,
        }
    }
}

/// How often and how much of one fault a plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Injection probability per opportunity, in ‰ (1000 = every time).
    pub per_mille: u32,
    /// Hard cap on total injections of this fault while the plan is armed.
    /// Bounding faults is what lets a sweep assert *recovery*: once the
    /// budget is spent the pipeline sees clean inputs again.
    pub max_injections: u64,
    /// Skip this many opportunities before the policy becomes eligible.
    /// Positional policies ([`FaultPolicy::at_nth`]) are how a crash sweep
    /// kills a process at a *chosen* WAL position instead of a random one.
    pub after: u64,
}

impl FaultPolicy {
    /// Inject at every opportunity, at most `max_injections` times.
    pub fn always(max_injections: u64) -> FaultPolicy {
        FaultPolicy {
            per_mille: 1000,
            max_injections,
            after: 0,
        }
    }

    /// Inject with probability `per_mille`/1000, at most `max_injections`
    /// times.
    pub fn rate(per_mille: u32, max_injections: u64) -> FaultPolicy {
        FaultPolicy {
            per_mille,
            max_injections,
            after: 0,
        }
    }

    /// Inject exactly once, at the `n`th opportunity (0-based).
    pub fn at_nth(n: u64) -> FaultPolicy {
        FaultPolicy {
            per_mille: 1000,
            max_injections: 1,
            after: n,
        }
    }
}

/// A seeded set of fault policies. Arm one with [`arm`]; decisions are
/// deterministic in `(seed, fault, nth-call)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Decision seed.
    pub seed: u64,
    policies: [Option<FaultPolicy>; 10],
}

impl ChaosPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            policies: [None; 10],
        }
    }

    /// Adds (or replaces) the policy for one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault, policy: FaultPolicy) -> ChaosPlan {
        self.policies[fault.idx()] = Some(policy);
        self
    }

    /// Adds the same policy for every fault of `domain`.
    #[must_use]
    pub fn with_domain(mut self, domain: Domain, policy: FaultPolicy) -> ChaosPlan {
        for f in Fault::ALL {
            if f.domain() == domain {
                self.policies[f.idx()] = Some(policy);
            }
        }
        self
    }

    /// The policy for `fault`, if any.
    pub fn policy(&self, fault: Fault) -> Option<FaultPolicy> {
        self.policies[fault.idx()]
    }

    /// Faults this plan can inject.
    pub fn faults(&self) -> Vec<Fault> {
        Fault::ALL
            .into_iter()
            .filter(|f| self.policies[f.idx()].is_some())
            .collect()
    }
}

struct Armed {
    plan: ChaosPlan,
    calls: [AtomicU64; 10],
    injected: [AtomicU64; 10],
    recovered: [AtomicU64; 5],
    degraded: [AtomicU64; 5],
    typed_errors: [AtomicU64; 5],
    retries: AtomicU64,
}

impl Armed {
    fn new(plan: ChaosPlan) -> Armed {
        Armed {
            plan,
            calls: Default::default(),
            injected: Default::default(),
            recovered: Default::default(),
            degraded: Default::default(),
            typed_errors: Default::default(),
            retries: AtomicU64::new(0),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static RwLock<Option<Arc<Armed>>> {
    static STATE: OnceLock<RwLock<Option<Arc<Armed>>>> = OnceLock::new();
    STATE.get_or_init(|| RwLock::new(None))
}

fn current() -> Option<Arc<Armed>> {
    if !armed() {
        return None;
    }
    state()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Whether a plan is armed — the fast path every injection point checks
/// first (one relaxed atomic load when chaos is off).
#[inline]
pub fn armed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Disarms on drop, so a panicking sweep leg cannot leak faults into the
/// next one.
#[must_use = "dropping the guard disarms the plan"]
#[derive(Debug)]
pub struct ChaosGuard(());

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arms `plan` globally, replacing any armed plan, and returns the guard
/// that disarms it. Callers that arm concurrently (e.g. parallel tests)
/// must serialize themselves — the decision stream is global.
pub fn arm(plan: ChaosPlan) -> ChaosGuard {
    *state()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(Armed::new(plan)));
    ENABLED.store(true, Ordering::SeqCst);
    ChaosGuard(())
}

/// Disarms any armed plan (also done by [`ChaosGuard`] on drop).
pub fn disarm() {
    ENABLED.store(false, Ordering::SeqCst);
    *state()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Asks the armed plan whether to inject `fault` at this opportunity.
///
/// Returns deterministic entropy for shaping the fault (which byte to
/// flip, where to cut) when the answer is yes. The decision hashes
/// `(seed, fault, nth-call-for-this-fault)`, so a fixed plan driven by a
/// deterministic pipeline replays the same faults at the same places.
pub fn inject(fault: Fault) -> Option<u64> {
    let a = current()?;
    let i = fault.idx();
    let policy = a.plan.policies[i]?;
    let n = a.calls[i].fetch_add(1, Ordering::Relaxed);
    if n < policy.after {
        return None;
    }
    let h = splitmix64(
        a.plan
            .seed
            .wrapping_add((i as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f))
            .wrapping_add(n.wrapping_mul(0xe703_7ed1_a0b4_28db)),
    );
    if (h % 1000) as u32 >= policy.per_mille {
        return None;
    }
    // Claim one slot of the bounded budget atomically; losing the race to
    // the cap means this opportunity passes clean.
    a.injected[i]
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            (v < policy.max_injections).then_some(v + 1)
        })
        .ok()?;
    match fault {
        Fault::TraceCorrupt => er_telemetry::counter!("chaos.injected.trace_corrupt").incr(),
        Fault::TraceTruncate => er_telemetry::counter!("chaos.injected.trace_truncate").incr(),
        Fault::TraceReorder => er_telemetry::counter!("chaos.injected.trace_reorder").incr(),
        Fault::IngestDrop => er_telemetry::counter!("chaos.injected.ingest_drop").incr(),
        Fault::IngestDuplicate => er_telemetry::counter!("chaos.injected.ingest_duplicate").incr(),
        Fault::SpillWrite => er_telemetry::counter!("chaos.injected.spill_write").incr(),
        Fault::SpillRead => er_telemetry::counter!("chaos.injected.spill_read").incr(),
        Fault::WorkerPanic => er_telemetry::counter!("chaos.injected.worker_panic").incr(),
        Fault::SolverStall => er_telemetry::counter!("chaos.injected.solver_stall").incr(),
        Fault::WalTear => er_telemetry::counter!("chaos.injected.wal_tear").incr(),
    }
    Some(splitmix64(h))
}

/// Records that a retry fully absorbed a fault in `domain`.
pub fn note_recovered(domain: Domain) {
    let Some(a) = current() else { return };
    a.recovered[domain.idx()].fetch_add(1, Ordering::Relaxed);
    match domain {
        Domain::Trace => er_telemetry::counter!("chaos.recovered.trace").incr(),
        Domain::Ingest => er_telemetry::counter!("chaos.recovered.ingest").incr(),
        Domain::Store => er_telemetry::counter!("chaos.recovered.store").incr(),
        Domain::Pool => er_telemetry::counter!("chaos.recovered.pool").incr(),
        Domain::Solver => er_telemetry::counter!("chaos.recovered.solver").incr(),
    }
}

/// Records that a documented fallback took over for a fault in `domain`.
pub fn note_degraded(domain: Domain) {
    let Some(a) = current() else { return };
    a.degraded[domain.idx()].fetch_add(1, Ordering::Relaxed);
    match domain {
        Domain::Trace => er_telemetry::counter!("chaos.degraded.trace").incr(),
        Domain::Ingest => er_telemetry::counter!("chaos.degraded.ingest").incr(),
        Domain::Store => er_telemetry::counter!("chaos.degraded.store").incr(),
        Domain::Pool => er_telemetry::counter!("chaos.degraded.pool").incr(),
        Domain::Solver => er_telemetry::counter!("chaos.degraded.solver").incr(),
    }
}

/// Records that a fault in `domain` surfaced as a typed error (never a
/// panic) that the caller handled.
pub fn note_typed_error(domain: Domain) {
    let Some(a) = current() else { return };
    a.typed_errors[domain.idx()].fetch_add(1, Ordering::Relaxed);
    match domain {
        Domain::Trace => er_telemetry::counter!("chaos.typed_error.trace").incr(),
        Domain::Ingest => er_telemetry::counter!("chaos.typed_error.ingest").incr(),
        Domain::Store => er_telemetry::counter!("chaos.typed_error.store").incr(),
        Domain::Pool => er_telemetry::counter!("chaos.typed_error.pool").incr(),
        Domain::Solver => er_telemetry::counter!("chaos.typed_error.solver").incr(),
    }
}

/// One domain's injection/handling balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Faults injected into this domain.
    pub injected: u64,
    /// Faults absorbed by a retry.
    pub recovered: u64,
    /// Faults absorbed by a documented fallback.
    pub degraded: u64,
    /// Faults surfaced as typed errors.
    pub typed_errors: u64,
}

impl DomainStats {
    /// Faults accounted for by any of the three handling outcomes.
    pub fn handled(&self) -> u64 {
        self.recovered + self.degraded + self.typed_errors
    }
}

/// Snapshot of the armed plan's books.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Per-domain balances, in [`Domain::ALL`] order.
    pub domains: Vec<(Domain, DomainStats)>,
    /// Injections per fault, in [`Fault::ALL`] order.
    pub faults: Vec<(Fault, u64)>,
}

impl ChaosStats {
    /// The balance for one domain.
    pub fn domain(&self, d: Domain) -> DomainStats {
        self.domains
            .iter()
            .find(|(x, _)| *x == d)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Total injections across all faults.
    pub fn total_injected(&self) -> u64 {
        self.faults.iter().map(|(_, n)| n).sum()
    }
}

/// The armed plan's current statistics, `None` when disarmed.
pub fn stats() -> Option<ChaosStats> {
    let a = current()?;
    let domains = Domain::ALL
        .into_iter()
        .map(|d| {
            let injected = Fault::ALL
                .into_iter()
                .filter(|f| f.domain() == d)
                .map(|f| a.injected[f.idx()].load(Ordering::Relaxed))
                .sum();
            (
                d,
                DomainStats {
                    injected,
                    recovered: a.recovered[d.idx()].load(Ordering::Relaxed),
                    degraded: a.degraded[d.idx()].load(Ordering::Relaxed),
                    typed_errors: a.typed_errors[d.idx()].load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    let faults = Fault::ALL
        .into_iter()
        .map(|f| (f, a.injected[f.idx()].load(Ordering::Relaxed)))
        .collect();
    Some(ChaosStats { domains, faults })
}

/// The backoff before retry `attempt` of the `nth` retried operation under
/// `seed` — a pure function, so a fixed seed replays the exact same delay
/// schedule. The base doubles from 50µs per attempt; jitter (to de-correlate
/// concurrent retriers hammering the same device) is drawn from the seeded
/// splitmix64 stream rather than the wall clock, adding up to one base on
/// top.
pub fn backoff_delay(attempt: u32, nth: u64, seed: u64) -> std::time::Duration {
    let base = 50u64 << attempt.min(6);
    let h = splitmix64(
        seed.wrapping_add(nth.wrapping_mul(0xd6e8_feb8_6659_fd93))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x2545_f491_4f6c_dd1d)),
    );
    std::time::Duration::from_micros(base + h % (base + 1))
}

/// Runs `f` up to `attempts` times with a short exponential backoff between
/// attempts — the retry half of the retry-or-degrade policy. The attempt
/// number is passed in so callers can thread it into telemetry.
///
/// Backoff timing comes from [`backoff_delay`]: when a plan is armed, the
/// jitter stream is keyed by the plan seed and the retry's index in the
/// plan's lifetime, so chaos sweeps get deterministic retry schedules.
///
/// # Errors
///
/// Returns the last attempt's error when every attempt fails.
pub fn retry<T, E>(attempts: u32, mut f: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
    let (seed, nth) = match current() {
        Some(a) => (a.plan.seed, a.retries.fetch_add(1, Ordering::Relaxed)),
        None => (0, 0),
    };
    let mut last = f(0);
    let mut attempt = 1;
    while last.is_err() && attempt < attempts.max(1) {
        std::thread::sleep(backoff_delay(attempt, nth, seed));
        last = f(attempt);
        attempt += 1;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The plan is process-global; tests that arm must not overlap.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_injects_nothing() {
        let _l = lock();
        disarm();
        assert!(!armed());
        assert_eq!(inject(Fault::WorkerPanic), None);
        assert_eq!(stats(), None);
    }

    #[test]
    fn always_policy_injects_up_to_cap() {
        let _l = lock();
        let guard = arm(ChaosPlan::new(7).with(Fault::IngestDrop, FaultPolicy::always(3)));
        let fired: Vec<bool> = (0..10)
            .map(|_| inject(Fault::IngestDrop).is_some())
            .collect();
        assert_eq!(fired.iter().filter(|&&b| b).count(), 3);
        assert!(fired[..3].iter().all(|&b| b), "cap consumed first");
        // A fault with no policy never fires.
        assert_eq!(inject(Fault::SolverStall), None);
        let s = stats().unwrap();
        assert_eq!(s.domain(Domain::Ingest).injected, 3);
        assert_eq!(s.total_injected(), 3);
        drop(guard);
        assert!(!armed());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let _l = lock();
        let run = |seed: u64| -> Vec<Option<u64>> {
            let _g =
                arm(ChaosPlan::new(seed).with(Fault::TraceCorrupt, FaultPolicy::rate(400, 64)));
            (0..40).map(|_| inject(Fault::TraceCorrupt)).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
        let hits = a.iter().filter(|d| d.is_some()).count();
        assert!(
            (4..=36).contains(&hits),
            "rate 400‰ lands mid-range: {hits}"
        );
    }

    #[test]
    fn with_domain_covers_every_fault_of_the_domain() {
        let plan = ChaosPlan::new(1).with_domain(Domain::Trace, FaultPolicy::always(1));
        assert_eq!(
            plan.faults(),
            vec![
                Fault::TraceCorrupt,
                Fault::TraceTruncate,
                Fault::TraceReorder
            ]
        );
        assert_eq!(plan.policy(Fault::WorkerPanic), None);
    }

    #[test]
    fn outcome_notes_balance_the_books() {
        let _l = lock();
        let _g = arm(ChaosPlan::new(9)
            .with(Fault::SpillWrite, FaultPolicy::always(2))
            .with(Fault::SolverStall, FaultPolicy::always(1)));
        assert!(inject(Fault::SpillWrite).is_some());
        note_recovered(Domain::Store);
        assert!(inject(Fault::SpillWrite).is_some());
        note_degraded(Domain::Store);
        assert!(inject(Fault::SolverStall).is_some());
        note_typed_error(Domain::Solver);
        let s = stats().unwrap();
        let store = s.domain(Domain::Store);
        assert_eq!((store.injected, store.recovered, store.degraded), (2, 1, 1));
        assert_eq!(store.handled(), 2);
        let solver = s.domain(Domain::Solver);
        assert_eq!((solver.injected, solver.typed_errors), (1, 1));
        assert_eq!(s.domain(Domain::Pool), DomainStats::default());
    }

    #[test]
    fn entropy_is_stable_for_a_fixed_call_index() {
        let _l = lock();
        let first = |seed| {
            let _g = arm(ChaosPlan::new(seed).with(Fault::TraceTruncate, FaultPolicy::always(1)));
            inject(Fault::TraceTruncate)
        };
        assert_eq!(first(5), first(5));
        assert!(first(5).is_some());
    }

    #[test]
    fn retry_backs_off_then_succeeds_or_gives_up() {
        let ok_on_third = |attempt: u32| if attempt >= 2 { Ok(attempt) } else { Err("no") };
        assert_eq!(retry(3, ok_on_third), Ok(2));
        assert_eq!(retry(2, ok_on_third), Err("no"));
        let mut calls = 0;
        let always_fail = |_| -> Result<(), &str> {
            calls += 1;
            Err("down")
        };
        assert_eq!(retry(4, always_fail), Err("down"));
        assert_eq!(calls, 4);
        // attempts=0 still runs once.
        assert_eq!(retry(0, |a: u32| Ok::<u32, ()>(a)), Ok(0));
    }

    #[test]
    fn at_nth_fires_exactly_once_at_the_chosen_opportunity() {
        let _l = lock();
        let _g = arm(ChaosPlan::new(11).with(Fault::WalTear, FaultPolicy::at_nth(4)));
        let fired: Vec<bool> = (0..8).map(|_| inject(Fault::WalTear).is_some()).collect();
        assert_eq!(
            fired,
            vec![false, false, false, false, true, false, false, false]
        );
        assert_eq!(stats().unwrap().domain(Domain::Store).injected, 1);
    }

    #[test]
    fn after_delays_rate_policies_too() {
        let _l = lock();
        let mut policy = FaultPolicy::always(100);
        policy.after = 3;
        let _g = arm(ChaosPlan::new(2).with(Fault::IngestDrop, policy));
        let fired: Vec<bool> = (0..6)
            .map(|_| inject(Fault::IngestDrop).is_some())
            .collect();
        assert_eq!(fired, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn backoff_jitter_is_deterministic_under_a_fixed_seed() {
        let schedule = |seed: u64| -> Vec<std::time::Duration> {
            (0..4)
                .flat_map(|nth| (1..5).map(move |a| backoff_delay(a, nth, seed)))
                .collect()
        };
        assert_eq!(
            schedule(0xc0ffee),
            schedule(0xc0ffee),
            "same seed, same schedule"
        );
        assert_ne!(
            schedule(0xc0ffee),
            schedule(0xdecaf),
            "seed changes the jitter"
        );
        for attempt in 1..10u32 {
            let base = 50u64 << attempt.min(6);
            let d = backoff_delay(attempt, 7, 99).as_micros() as u64;
            assert!(
                (base..=2 * base + 1).contains(&d),
                "attempt {attempt}: delay {d}µs outside [{base}, {}]",
                2 * base + 1
            );
        }
        // Different retried operations under one seed get de-correlated
        // schedules (the whole point of jitter).
        assert_ne!(backoff_delay(1, 0, 42), backoff_delay(1, 1, 42));
    }

    #[test]
    fn rearming_replaces_the_plan() {
        let _l = lock();
        let _g1 = arm(ChaosPlan::new(1).with(Fault::IngestDrop, FaultPolicy::always(10)));
        assert!(inject(Fault::IngestDrop).is_some());
        let _g2 = arm(ChaosPlan::new(1).with(Fault::WorkerPanic, FaultPolicy::always(1)));
        assert_eq!(inject(Fault::IngestDrop), None, "old plan replaced");
        assert!(inject(Fault::WorkerPanic).is_some());
        assert_eq!(stats().unwrap().domain(Domain::Ingest).injected, 0);
    }
}
