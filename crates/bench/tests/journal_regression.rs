//! Regression test: telemetry journal vs `IterationStats`.
//!
//! Reconstructs `Libpng-2004-0597` with `ErConfig::default()` under
//! `ER_TELEMETRY=full` and checks that the journal's per-iteration
//! `shepherd.symbex` span durations sum (within tolerance) to the
//! report's `symbex_wall` totals. If the telemetry spans and the stats
//! fields ever drift apart — e.g. a span moved so it no longer brackets
//! the timed region — this catches it.
//!
//! Lives in its own integration-test binary so the `ER_TELEMETRY` /
//! `ER_TELEMETRY_DIR` environment is set before the process's first
//! telemetry use.

use er_core::{ErConfig, Reconstructor};
use er_workloads::{by_name, Scale};

#[test]
fn journal_phase_spans_match_reported_symbex_wall() {
    let dir = std::env::temp_dir().join(format!("er-journal-regr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("ER_TELEMETRY", "full");
    std::env::set_var("ER_TELEMETRY_DIR", &dir);

    let w = by_name("Libpng-2004-0597").expect("registered workload");
    let deployment = w.deployment(Scale::TEST);
    let report = Reconstructor::new(ErConfig::default()).reconstruct(&deployment);
    assert!(
        !report.iterations.is_empty(),
        "reconstruction produced no iterations"
    );
    er_telemetry::journal::flush();

    let events = er_telemetry::journal::read_journal_dir(&dir).expect("journal readable");
    std::fs::remove_dir_all(&dir).ok();

    let symbex_spans: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == "span" && e.name == "shepherd.symbex")
        .map(|e| e.dur_ns)
        .collect();
    assert_eq!(
        symbex_spans.len(),
        report.iterations.len(),
        "one shepherd.symbex span per iteration"
    );

    let span_total: u64 = symbex_spans.iter().sum();
    let wall_total: u64 = report
        .iterations
        .iter()
        .map(|i| u64::try_from(i.symbex_wall.as_nanos()).unwrap())
        .sum();
    assert_eq!(
        wall_total,
        u64::try_from(report.total_symbex.as_nanos()).unwrap(),
        "report.total_symbex is the sum of per-iteration symbex_wall"
    );

    // The span brackets the timed region, so it can only be slightly
    // longer (guard setup/teardown); allow 20% + 5ms of slack.
    assert!(
        span_total >= wall_total,
        "span total {span_total}ns shorter than reported wall {wall_total}ns"
    );
    let slack = wall_total / 5 + 5_000_000;
    assert!(
        span_total <= wall_total + slack,
        "span total {span_total}ns exceeds wall {wall_total}ns + {slack}ns slack; \
         the shepherd.symbex span no longer brackets the symbex timer"
    );

    // Effort counters recorded by the spans must match IterationStats
    // exactly (both read the same per-thread counter table).
    let span_steps: u64 = events
        .iter()
        .filter(|e| e.name == "shepherd.symbex")
        .flat_map(|e| e.counters.iter())
        .filter(|(n, _)| n == "symex.steps")
        .map(|(_, v)| *v)
        .sum();
    let stat_steps: u64 = report.iterations.iter().map(|i| i.symbex_steps).sum();
    assert_eq!(
        span_steps, stat_steps,
        "symex.steps drifted between journal and stats"
    );
}
