//! PR-2 regression: the performance machinery must not change results.
//!
//! Two properties, both at test scale over the full Table-1 sweep:
//!
//! 1. The parallel worker pool produces byte-identical rows to `--serial`
//!    (wall-clock fields excluded — they are the only nondeterminism).
//! 2. The incremental solver + checkpoint resume produce the same
//!    reproduction results (occurrences, reproduced flags, recorded
//!    bytes, trace bytes) as the sequential uncached baseline.

use er_bench::rows::{table1_rows, RowOptions, Table1Row};
use er_workloads::Scale;

fn stable(rows: &[Table1Row]) -> Vec<String> {
    rows.iter()
        .map(|r| format!("{:?}", r.deterministic_fields()))
        .collect()
}

#[test]
fn parallel_rows_match_serial_rows() {
    let parallel = table1_rows(RowOptions {
        scale: Scale::TEST,
        serial: false,
        baseline: false,
    });
    let serial = table1_rows(RowOptions {
        scale: Scale::TEST,
        serial: true,
        baseline: false,
    });
    assert_eq!(stable(&parallel), stable(&serial));
    // The pool must not reorder rows either.
    assert_eq!(
        parallel.iter().map(|r| &r.name).collect::<Vec<_>>(),
        serial.iter().map(|r| &r.name).collect::<Vec<_>>()
    );
}

#[test]
fn incremental_mode_matches_uncached_baseline() {
    let optimized = table1_rows(RowOptions {
        scale: Scale::TEST,
        serial: true,
        baseline: false,
    });
    let baseline = table1_rows(RowOptions {
        scale: Scale::TEST,
        serial: true,
        baseline: true,
    });
    assert_eq!(stable(&optimized), stable(&baseline));
    for (o, b) in optimized.iter().zip(&baseline) {
        assert!(o.reproduced == b.reproduced, "{} diverged", o.name);
        assert_eq!(o.occurrences, b.occurrences, "{} occurrences", o.name);
        assert_eq!(
            o.recorded_bytes_final, b.recorded_bytes_final,
            "{} recorded bytes",
            o.name
        );
    }
}
