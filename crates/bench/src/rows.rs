//! Shared computation for the Table-1 and Fig.-5 artifacts.
//!
//! The `table1`, `fig5`, and `bench_summary` binaries and the determinism
//! regression tests all consume these functions, so "the benchmark" and
//! "the test" are literally the same code path. Row computation fans out
//! across cores via [`harness::parallel_map`]; `serial` forces the
//! single-threaded order the determinism regression compares against.

use crate::harness::{self, parallel_map};
use er_core::instrument::InstrumentedProgram;
use er_core::reconstruct::ErConfig;
use er_core::{shepherd, Reconstructor};
use er_minilang::ir::InstrId;
use er_solver::solve::Budget;
use er_symex::SymConfig;
use er_workloads::{all, by_name, Scale};
use serde::Serialize;

/// How to run the Table-1 reconstruction sweep.
#[derive(Debug, Clone, Copy)]
pub struct RowOptions {
    /// Workload scale (test or full).
    pub scale: Scale,
    /// Run workloads one at a time on the calling thread.
    pub serial: bool,
    /// Disable the incremental solver and checkpointing — the PR-2
    /// baseline the optimized path is compared against.
    pub baseline: bool,
}

impl RowOptions {
    /// Test-scale, parallel, optimized — the configuration CI smokes.
    pub fn test() -> RowOptions {
        RowOptions {
            scale: Scale::TEST,
            serial: false,
            baseline: false,
        }
    }
}

/// One Table-1 row (serialized into `results/table1.json` and
/// `results/BENCH_PR2.json`).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Table1Row {
    pub name: String,
    pub app: String,
    pub bug_type: String,
    pub multithreaded: bool,
    pub instr_count: u64,
    pub occurrences: u32,
    pub expected_occurrences: u32,
    pub symbex_seconds: f64,
    pub wall_seconds: f64,
    pub reproduced: bool,
    pub max_graph_nodes: usize,
    pub trace_bytes: u64,
    pub recorded_bytes_final: u64,
    pub symbex_steps: u64,
    pub solver_work_units: u64,
}

impl Table1Row {
    /// Every field that must be bit-identical across parallel/serial and
    /// incremental/baseline runs — i.e. everything but wall-clock times.
    pub fn deterministic_fields(&self) -> (&str, bool, u64, u32, bool, u64, u64) {
        (
            &self.name,
            self.multithreaded,
            self.instr_count,
            self.occurrences,
            self.reproduced,
            self.trace_bytes,
            self.recorded_bytes_final,
        )
    }
}

/// Applies the baseline switch to a workload's ER configuration.
pub fn apply_mode(mut config: ErConfig, baseline: bool) -> ErConfig {
    if baseline {
        config.sym.incremental_solver = false;
        config.sym.checkpoint_every = 0;
    }
    config
}

/// Reconstructs every Table-1 workload and returns its row.
pub fn table1_rows(opts: RowOptions) -> Vec<Table1Row> {
    let workloads = all();
    parallel_map(&workloads, opts.serial, |_, w| {
        // Tag telemetry events with the workload so obs_report can group
        // the journal per Table-1 row; contexts are thread-local, so this
        // must happen on the worker.
        er_telemetry::set_context(w.name);
        let deployment = w.deployment(opts.scale);
        let config = apply_mode(w.er_config(), opts.baseline);
        let (report, wall) =
            harness::time_once(|| Reconstructor::new(config).reconstruct(&deployment));
        er_telemetry::set_context("");
        let last = report.iterations.last();
        Table1Row {
            name: w.name.to_string(),
            app: w.app.to_string(),
            bug_type: w.bug_type.to_string(),
            multithreaded: w.multithreaded,
            instr_count: last.map(|i| i.instr_count).unwrap_or(0),
            occurrences: report.occurrences,
            expected_occurrences: w.expected_occurrences,
            symbex_seconds: report.total_symbex.as_secs_f64(),
            wall_seconds: wall.as_secs_f64(),
            reproduced: report.reproduced(),
            max_graph_nodes: report
                .iterations
                .iter()
                .map(|i| i.graph_nodes)
                .max()
                .unwrap_or(0),
            trace_bytes: last.map(|i| i.trace_bytes).unwrap_or(0),
            recorded_bytes_final: last.map(|i| i.recorded_bytes).unwrap_or(0),
            symbex_steps: report.iterations.iter().map(|i| i.symbex_steps).sum(),
            solver_work_units: report.iterations.iter().map(|i| i.solver_work).sum(),
        }
    })
}

/// One Fig.-5 series point: shepherding the same failing trace under a
/// growing recording set.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Series {
    pub label: String,
    pub sites: usize,
    pub steps: u64,
    pub wall_seconds: f64,
    pub solver_work_units: u64,
    pub solver_queries: u64,
    pub stalled: bool,
}

/// Regenerates the Fig.-5 measurement on PHP-74194.
///
/// # Panics
///
/// Panics if the PHP-74194 reconstruction fails (a regression the
/// benchmark must not paper over).
pub fn fig5_series(scale: Scale) -> Vec<Fig5Series> {
    let w = by_name("PHP-74194").expect("registered");

    // Phase 1: run the normal reconstruction to learn which sites ER's
    // first and second iterations selected.
    let deployment = w.deployment(scale);
    let report = Reconstructor::new(w.er_config()).reconstruct(&deployment);
    assert!(report.reproduced(), "reconstruction must succeed first");
    let iter1: Vec<InstrId> = report.iterations[0].new_sites.clone();
    let mut iter2 = iter1.clone();
    if report.iterations.len() > 1 {
        iter2.extend(report.iterations[1].new_sites.clone());
    }

    // Phase 2: shepherd the same failing run under each recording set with
    // a no-stall budget.
    let generous = SymConfig {
        solver_budget: Budget {
            max_conflicts: 5_000_000,
            max_array_cells: 20_000_000,
            max_clauses: 100_000_000,
        },
        max_steps: 2_000_000_000,
        always_concretize: false,
        ..SymConfig::default()
    };
    let configs: [(&str, Vec<InstrId>); 3] = [
        ("control-flow + no data values", vec![]),
        ("control-flow + 1st-iteration data values", iter1),
        ("control-flow + 2nd-iteration data values", iter2),
    ];

    let mut series = Vec::new();
    for (label, sites) in configs {
        let inst = if sites.is_empty() {
            InstrumentedProgram::unmodified(deployment.program())
        } else {
            InstrumentedProgram::new(deployment.program(), &sites)
        };
        let occ = deployment
            .run_until_failure(&inst, None, 0, 50_000)
            .expect("workload fails");
        let rep = shepherd::shepherd(
            &inst.program,
            &occ.trace,
            Some(&occ.failure_instrumented),
            generous,
        )
        .expect("trace decodes");
        let stalled = !matches!(rep.run.status, er_symex::ShepherdStatus::Completed);
        series.push(Fig5Series {
            label: label.to_string(),
            sites: inst.sites.len(),
            steps: rep.run.stats.steps,
            wall_seconds: rep.wall.as_secs_f64(),
            solver_work_units: rep.run.stats.work_units,
            solver_queries: rep.run.stats.solver_queries,
            stalled,
        });
    }
    series
}
