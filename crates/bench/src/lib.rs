//! Shared helpers for the benchmark binaries live in the binaries
//! themselves; this library exists to anchor Criterion bench targets.
pub mod harness;
