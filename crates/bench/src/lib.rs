//! Shared infrastructure for the benchmark binaries: the worker-pool /
//! JSON / table harness and the Table-1 / Fig.-5 row computations the
//! binaries and the determinism regression tests share.
pub mod harness;
pub mod rows;
