//! Shared infrastructure for the table/figure-regenerating binaries.
//!
//! Every binary prints a Markdown table (the human-readable artifact that
//! EXPERIMENTS.md quotes) and writes a JSON record under `results/` so the
//! numbers are machine-checkable.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The shared worker pool now lives in `er-fleet` (production-side code
/// needs it too); re-exported here so every bench binary keeps compiling
/// against `harness::parallel_map` unchanged.
pub use er_fleet::pool::parallel_map;

/// Mean and standard error of repeated measurements.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes mean ± standard error.
pub fn stats(samples: &[f64]) -> Stats {
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    Stats {
        mean,
        stderr: (var / n as f64).sqrt(),
        n,
    }
}

/// Times one invocation of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `reps` times and returns per-run wall seconds.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        out.push(start.elapsed().as_secs_f64());
    }
    out
}

/// Normalized overhead of `measured` relative to `baseline`, in percent.
pub fn overhead_pct(baseline: f64, measured: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (measured / baseline - 1.0) * 100.0
}

/// Writes `value` as pretty JSON to `<dir>/<name>.json`, where `<dir>`
/// is `$ER_RESULTS_DIR` (default `results`). Returns the written path,
/// or `None` if serialization or the write failed.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var("ER_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                er_telemetry::log!(warn, "could not write {}: {e}", path.display());
                None
            } else {
                er_telemetry::log!(info, "(wrote {})", path.display());
                Some(path)
            }
        }
        Err(e) => {
            er_telemetry::log!(warn, "could not serialize {name}: {e}");
            None
        }
    }
}

/// Prints a Markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Formats a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_stderr() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert!(s.stderr > 0.0);
        assert_eq!(s.n, 3);
        let single = stats(&[5.0]);
        assert_eq!(single.stderr, 0.0);
    }

    #[test]
    fn overhead_math() {
        assert!((overhead_pct(2.0, 3.0) - 50.0).abs() < 1e-9);
        assert_eq!(overhead_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn write_json_honors_results_dir_override() {
        // Use a subdirectory of the target dir so parallel tests in other
        // processes (which read ER_RESULTS_DIR at call time) are unaffected.
        let dir = std::env::temp_dir().join(format!("er-results-test-{}", std::process::id()));
        std::env::set_var("ER_RESULTS_DIR", &dir);
        let path = write_json("harness_selftest", &vec![1u64, 2, 3]).expect("write succeeds");
        std::env::remove_var("ER_RESULTS_DIR");
        assert!(path.starts_with(&dir));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains('1') && text.contains('3'));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.5)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "2.0 min");
    }
}
