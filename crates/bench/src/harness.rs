//! Shared infrastructure for the table/figure-regenerating binaries.
//!
//! Every binary prints a Markdown table (the human-readable artifact that
//! EXPERIMENTS.md quotes) and writes a JSON record under `results/` so the
//! numbers are machine-checkable.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fans `f` out over `items` on a hand-rolled scoped worker pool
/// (`std::thread` only), returning results in input order.
///
/// Workers pull the next unclaimed index from a shared atomic counter, so
/// uneven per-item cost balances automatically. `serial` is the escape
/// hatch the determinism regression compares against: it runs everything
/// inline on the calling thread. Telemetry contexts are thread-local, so
/// callers that tag their work (`er_telemetry::set_context`) must do it
/// inside `f`, where it lands on the worker actually running the item.
pub fn parallel_map<T, R, F>(items: &[T], serial: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if serial || workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Mean and standard error of repeated measurements.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes mean ± standard error.
pub fn stats(samples: &[f64]) -> Stats {
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    Stats {
        mean,
        stderr: (var / n as f64).sqrt(),
        n,
    }
}

/// Times one invocation of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `reps` times and returns per-run wall seconds.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        out.push(start.elapsed().as_secs_f64());
    }
    out
}

/// Normalized overhead of `measured` relative to `baseline`, in percent.
pub fn overhead_pct(baseline: f64, measured: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (measured / baseline - 1.0) * 100.0
}

/// Writes `value` as pretty JSON to `<dir>/<name>.json`, where `<dir>`
/// is `$ER_RESULTS_DIR` (default `results`). Returns the written path,
/// or `None` if serialization or the write failed.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var("ER_RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                er_telemetry::log!(warn, "could not write {}: {e}", path.display());
                None
            } else {
                er_telemetry::log!(info, "(wrote {})", path.display());
                Some(path)
            }
        }
        Err(e) => {
            er_telemetry::log!(warn, "could not serialize {name}: {e}");
            None
        }
    }
}

/// Prints a Markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Formats a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, false, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        assert_eq!(
            parallel_map(&items, false, f),
            parallel_map(&items, true, f)
        );
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, false, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], false, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn stats_mean_and_stderr() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert!(s.stderr > 0.0);
        assert_eq!(s.n, 3);
        let single = stats(&[5.0]);
        assert_eq!(single.stderr, 0.0);
    }

    #[test]
    fn overhead_math() {
        assert!((overhead_pct(2.0, 3.0) - 50.0).abs() < 1e-9);
        assert_eq!(overhead_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn write_json_honors_results_dir_override() {
        // Use a subdirectory of the target dir so parallel tests in other
        // processes (which read ER_RESULTS_DIR at call time) are unaffected.
        let dir = std::env::temp_dir().join(format!("er-results-test-{}", std::process::id()));
        std::env::set_var("ER_RESULTS_DIR", &dir);
        let path = write_json("harness_selftest", &vec![1u64, 2, 3]).expect("write succeeds");
        std::env::remove_var("ER_RESULTS_DIR");
        assert!(path.starts_with(&dir));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains('1') && text.contains('3'));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.5)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "2.0 min");
    }
}
