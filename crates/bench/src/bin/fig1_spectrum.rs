//! Regenerates **Fig. 1**: the efficiency / effectiveness / accuracy
//! spectra of failure-reproduction approaches.
//!
//! Fig. 1 is a conceptual taxonomy; this binary grounds each spectrum in
//! numbers this repository actually measures: ER's and rr's recording
//! overhead (efficiency), which failure classes each system handles
//! (effectiveness), and replayability of the output (accuracy).

use er_bench::harness::print_table;

fn main() {
    println!("# Fig. 1: where systems sit on each reproduction property");
    println!(
        "\nMeasured stand-ins come from this repository's experiments: run \
         `fig6` for overheads, `table1` for effectiveness, `rept_accuracy` \
         for REPT's accuracy decay.\n"
    );

    print_table(
        "Fig. 1a — Efficiency (runtime overhead; boundary: ~10%)",
        &["System", "Overhead", "Production-grade?"],
        &[
            vec![
                "ER (this repo)".into(),
                "~0.1-10% measured (`fig6`); paper 0.3%".into(),
                "yes".into(),
            ],
            vec![
                "REPT-style (trace only)".into(),
                "same PT tracing as ER minus PTW".into(),
                "yes".into(),
            ],
            vec![
                "Full RR (rr-style, this repo)".into(),
                "~50-150% measured (`fig6`); paper 48%".into(),
                "no".into(),
            ],
            vec![
                "BugRedux (complete tracing)".into(),
                "up to 10x (paper §2.1)".into(),
                "no".into(),
            ],
            vec!["Offline (ESD/RDE)".into(), "~0%".into(), "yes".into()],
        ],
    );

    print_table(
        "Fig. 1b — Effectiveness (boundary: coarse-interleaving bugs, latent bugs)",
        &[
            "System",
            "Latent bugs",
            "Data races (coarse)",
            "Guaranteed?",
        ],
        &[
            vec![
                "ER (this repo)".into(),
                "yes (13/13 in `table1`)".into(),
                "yes (3 MT rows)".into(),
                "yes, via reoccurrences".into(),
            ],
            vec![
                "REPT-style".into(),
                "no (decay past ~100K instrs, `rept_accuracy`)".into(),
                "yes".into(),
                "no".into(),
            ],
            vec!["Full RR".into(), "yes".into(), "yes".into(), "yes".into()],
            vec![
                "Efficient RR".into(),
                "yes".into(),
                "no".into(),
                "no".into(),
            ],
            vec![
                "ESD/BugRedux/RDE".into(),
                "sometimes".into(),
                "no".into(),
                "no (solver may time out)".into(),
            ],
        ],
    );

    print_table(
        "Fig. 1c — Accuracy (boundary: replayable execution with the same failure)",
        &["System", "Output", "Replayable?", "Values correct?"],
        &[
            vec![
                "ER (this repo)".into(),
                "concrete test case".into(),
                "yes (verified on every `table1` row)".into(),
                "yes (replay-checked)".into(),
            ],
            vec![
                "Full/Efficient RR".into(),
                "event log".into(),
                "yes".into(),
                "yes (exact)".into(),
            ],
            vec![
                "REPT-style".into(),
                "partial register/memory history".into(),
                "no".into(),
                "15-60% degraded on long traces".into(),
            ],
            vec![
                "ESD".into(),
                "synthesized input".into(),
                "yes".into(),
                "same-failure, different values".into(),
            ],
        ],
    );
}
