//! Regenerates the **§5.3 ring-buffer sensitivity analysis**: ER's online
//! overhead across trace buffer sizes of 4 KB, 64 KB, 1 MB, 16 MB, and
//! 64 MB. The paper reports no statistically significant difference (90%
//! confidence), because the buffer is written sequentially regardless of
//! capacity.
//!
//! Usage: `buffer_sensitivity [--test] [--reps N]`

use er_bench::harness::{overhead_pct, print_table, stats, time_reps, write_json, Stats};
use er_minilang::interp::Machine;
use er_pt::sink::{PtConfig, PtSink};
use er_workloads::{by_name, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    buffer: String,
    bytes: usize,
    overhead_pct: Stats,
    wrapped: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--test") {
        Scale::TEST
    } else {
        Scale::FULL
    };
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("# §5.3 buffer-size sensitivity (PHP-74194 benchmark, {reps} reps)");

    let w = by_name("PHP-74194").expect("registered");
    let program = w.program(scale);
    let sched = er_minilang::interp::SchedConfig::default();
    let sizes: [(&str, usize); 5] = [
        ("4 KB", 4 << 10),
        ("64 KB", 64 << 10),
        ("1 MB", 1 << 20),
        ("16 MB", 16 << 20),
        ("64 MB", 64 << 20),
    ];

    // Warmup.
    let _ = Machine::new(&program, (w.perf_gen)(0))
        .with_sched(sched)
        .run();

    let mut rows_out = Vec::new();
    for (label, bytes) in sizes {
        let config = PtConfig {
            ring_bytes: bytes,
            ..PtConfig::default()
        };
        let mut wrapped = false;
        let mut pcts = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t_base = time_reps(1, || {
                let _ = Machine::new(&program, (w.perf_gen)(1))
                    .with_sched(sched)
                    .run();
            })[0];
            let t_er = time_reps(1, || {
                let r = Machine::with_sink(&program, (w.perf_gen)(1), PtSink::new(config))
                    .with_sched(sched)
                    .run();
                wrapped = r.sink.stats().bytes > bytes as u64;
            })[0];
            pcts.push(overhead_pct(t_base, t_er));
        }
        let s = stats(&pcts);
        er_telemetry::log!(info, "  {label}: {:+.2}% ± {:.2}", s.mean, s.stderr);
        rows_out.push(Row {
            buffer: label.to_string(),
            bytes,
            overhead_pct: s,
            wrapped,
        });
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.buffer.clone(),
                format!(
                    "{:+.2}% ± {:.2}",
                    r.overhead_pct.mean, r.overhead_pct.stderr
                ),
                if r.wrapped { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    print_table(
        "ER overhead vs ring-buffer capacity",
        &["Buffer", "Overhead", "Wrapped"],
        &rows,
    );
    let means: Vec<f64> = rows_out.iter().map(|r| r.overhead_pct.mean).collect();
    let spread = means.iter().fold(f64::MIN, |a, &b| a.max(b))
        - means.iter().fold(f64::MAX, |a, &b| a.min(b));
    println!(
        "Spread across buffer sizes: {spread:.2} percentage points (paper: no \
         statistically significant difference)."
    );
    write_json("buffer_sensitivity", &rows_out);
}
