//! Chaos sweep (PR 4): the Table-1 workloads under seeded fault injection.
//!
//! For every workload and every [`er_chaos::Domain`], arms a bounded,
//! deterministic [`er_chaos::ChaosPlan`] and runs a full reconstruction —
//! the serial `Reconstructor` for the Trace and Solver domains (faults hit
//! the shipped trace and the solver boundary directly), the serial-pool
//! fleet simulator for the Ingest, Store, and Pool domains (faults hit the
//! queue, the spill directory, and the worker closures). Asserts, per leg:
//!
//! * nothing panics — every injected fault is recovered, degraded, or a
//!   typed error (`chaos.*` counters account for each injection);
//! * the Ingest/Store/Pool legs reproduce **bit-identically** to a clean
//!   serial reference — delivery, retention, and worker faults must not
//!   change the answer;
//! * the Trace/Solver legs still reproduce — a tampered occurrence or an
//!   injected stall costs retries, not the investigation.
//!
//! A final *aggressive* leg truncates every shipped trace and demands a
//! typed give-up: when no occurrence survives, ER must report
//! truncated/undecodable, never crash.
//!
//! * default: all 13 workloads × 5 domains, writes `results/BENCH_CHAOS.json`.
//! * `--smoke`: 3 workloads × 5 domains (CI gate).

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_chaos::{ChaosPlan, Domain, Fault, FaultPolicy};
use er_core::Reconstructor;
use er_fleet::sim::{Fleet, FleetConfig, FleetSpec, Traffic};
use er_fleet::StoreConfig;
use er_workloads::{all, by_name, Scale, Workload};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FLEET_SIZE: usize = 2;
const SMOKE_WORKLOADS: &[&str] = &["Libpng-2004-0597", "PHP-74194", "Memcached-2019-11596"];
const SEED: u64 = 0x5eed_c405;

/// One leg's outcome: reproduced?, test-case inputs, give-up reason.
type LegOutcome = (bool, Vec<(u32, Vec<u8>)>, Option<String>);

/// The bounded fault plan for one domain leg. `always(n)` policies make
/// the injections deterministic: the first `n` eligible calls fault, the
/// rest run clean, independent of timing.
fn plan_for(domain: Domain) -> ChaosPlan {
    let p = ChaosPlan::new(SEED);
    match domain {
        Domain::Trace => p
            .with(Fault::TraceCorrupt, FaultPolicy::always(1))
            .with(Fault::TraceTruncate, FaultPolicy::always(1))
            .with(Fault::TraceReorder, FaultPolicy::always(1)),
        Domain::Ingest => p
            .with(Fault::IngestDrop, FaultPolicy::always(2))
            .with(Fault::IngestDuplicate, FaultPolicy::always(2)),
        Domain::Store => p
            .with(Fault::SpillWrite, FaultPolicy::always(2))
            .with(Fault::SpillRead, FaultPolicy::always(2)),
        Domain::Pool => p.with(Fault::WorkerPanic, FaultPolicy::always(2)),
        Domain::Solver => p.with(Fault::SolverStall, FaultPolicy::always(2)),
    }
}

fn spec_for(w: &Workload, store: StoreConfig) -> (FleetSpec, FleetConfig) {
    let input = w.input_gen;
    let spec = FleetSpec {
        program: w.program(Scale::TEST),
        input_gen: Arc::new(input),
        sched_gen: w.sched_gen.map(|s| {
            let f: Arc<dyn Fn(u64) -> er_minilang::interp::SchedConfig + Send + Sync> = Arc::new(s);
            f
        }),
        pt: er_pt::PtConfig::default(),
        reoccurrence: w.reoccurrence_model(1_000),
        er: w.er_config(),
        label: w.name.to_string(),
    };
    let config = FleetConfig {
        instances: FLEET_SIZE,
        serial: true, // deterministic baseline: faults, not thread timing
        traffic: Traffic::Mirrored,
        store,
        ..FleetConfig::default()
    };
    (spec, config)
}

#[derive(Serialize)]
struct ChaosRow {
    workload: String,
    domain: String,
    injected: u64,
    recovered: u64,
    degraded: u64,
    typed_errors: u64,
    reproduced: bool,
    /// Test case bit-identical to the clean serial reference (asserted for
    /// the Ingest/Store/Pool legs; informational for Trace/Solver).
    bit_identical: bool,
    give_up: Option<String>,
    panicked: bool,
    wall_ms: f64,
}

/// Runs `f` under the domain's armed plan, harvesting chaos stats before
/// disarming. A panic anywhere in the pipeline is the one thing this sweep
/// exists to rule out — caught and reported, never silently fatal.
fn run_leg(
    w: &Workload,
    domain: Domain,
    reference: &[(u32, Vec<u8>)],
    f: impl FnOnce() -> LegOutcome,
) -> ChaosRow {
    er_telemetry::set_context(&format!("{}/chaos-{}", w.name, domain.name()));
    let guard = er_chaos::arm(plan_for(domain));
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(f));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = er_chaos::stats().expect("chaos armed");
    let dom = stats.domain(domain);
    drop(guard);
    er_telemetry::set_context("");
    let (panicked, reproduced, inputs, give_up) = match outcome {
        Ok((reproduced, inputs, give_up)) => (false, reproduced, inputs, give_up),
        Err(_) => (true, false, Vec::new(), Some("PANIC".to_string())),
    };
    ChaosRow {
        workload: w.name.to_string(),
        domain: domain.name().to_string(),
        injected: dom.injected,
        recovered: dom.recovered,
        degraded: dom.degraded,
        typed_errors: dom.typed_errors,
        reproduced,
        bit_identical: reproduced && inputs == reference,
        give_up,
        panicked,
        wall_ms,
    }
}

/// Serial-path leg (Trace / Solver): one deployment, one reconstructor,
/// with occurrence headroom for the retries the faults will cost.
fn serial_leg(w: &Workload) -> LegOutcome {
    let mut er = w.er_config();
    er.max_occurrences += 4;
    let report = Reconstructor::new(er).reconstruct(&w.deployment(Scale::TEST));
    report_outcome(&report)
}

/// Fleet-path leg (Ingest / Store / Pool): serial-pool fleet, first group's
/// outcome.
fn fleet_leg(w: &Workload, store: StoreConfig) -> LegOutcome {
    let (spec, config) = spec_for(w, store);
    let report = Fleet::new(spec, config).run();
    match report.groups.first() {
        Some(g) => report_outcome(&g.report),
        None => (false, Vec::new(), Some("no failure group formed".into())),
    }
}

fn report_outcome(report: &er_core::reconstruct::ReconstructionReport) -> LegOutcome {
    match &report.outcome {
        er_core::reconstruct::Outcome::Reproduced(tc) => (true, tc.inputs.clone(), None),
        er_core::reconstruct::Outcome::GaveUp(reason) => {
            (false, Vec::new(), Some(format!("{reason:?}")))
        }
    }
}

/// Clean serial reference inputs (chaos disarmed).
fn reference_inputs(w: &Workload) -> Vec<(u32, Vec<u8>)> {
    er_telemetry::set_context(&format!("{}/clean-reference", w.name));
    let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
    er_telemetry::set_context("");
    assert!(
        report.reproduced(),
        "{}: clean serial path must reproduce",
        w.name
    );
    report.outcome.test_case().unwrap().inputs.clone()
}

fn spill_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("er-chaos-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create spill dir");
    dir
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workloads: Vec<Workload> = if smoke {
        SMOKE_WORKLOADS
            .iter()
            .map(|n| by_name(n).expect("smoke workload exists"))
            .collect()
    } else {
        all()
    };
    let spill = spill_dir();

    let mut rows: Vec<ChaosRow> = Vec::new();
    for w in &workloads {
        let reference = reference_inputs(w);
        for domain in Domain::ALL {
            let row = match domain {
                Domain::Trace | Domain::Solver => run_leg(w, domain, &reference, || serial_leg(w)),
                Domain::Ingest | Domain::Pool => run_leg(w, domain, &reference, || {
                    fleet_leg(w, StoreConfig::default())
                }),
                Domain::Store => run_leg(w, domain, &reference, || {
                    // A one-byte budget forces every trace through the
                    // spill path, so SpillWrite/SpillRead actually fire.
                    fleet_leg(
                        w,
                        StoreConfig {
                            byte_budget: 1,
                            spill_dir: Some(spill.clone()),
                            ..StoreConfig::default()
                        },
                    )
                }),
            };
            rows.push(row);
        }
    }

    // Aggressive leg: EVERY shipped trace truncated. No occurrence
    // survives, so reconstruction must end in a typed give-up — the
    // "reports truncated/undecodable, never panics" half of the contract.
    let w = &workloads[0];
    er_telemetry::set_context(&format!("{}/chaos-trace-aggressive", w.name));
    let guard = er_chaos::arm(
        ChaosPlan::new(SEED).with(Fault::TraceTruncate, FaultPolicy::always(u64::MAX)),
    );
    let start = Instant::now();
    let aggressive = catch_unwind(AssertUnwindSafe(|| serial_leg(w)));
    let aggressive_wall = start.elapsed().as_secs_f64() * 1e3;
    let aggressive_injected = er_chaos::stats()
        .expect("armed")
        .domain(Domain::Trace)
        .injected;
    drop(guard);
    er_telemetry::set_context("");
    let (agg_panicked, agg_reproduced, agg_reason) = match &aggressive {
        Ok((reproduced, _, reason)) => (false, *reproduced, reason.clone()),
        Err(_) => (true, false, Some("PANIC".to_string())),
    };
    rows.push(ChaosRow {
        workload: w.name.to_string(),
        domain: "trace(all-faulty)".to_string(),
        injected: aggressive_injected,
        recovered: 0,
        degraded: 0,
        typed_errors: 0,
        reproduced: agg_reproduced,
        bit_identical: false,
        give_up: agg_reason.clone(),
        panicked: agg_panicked,
        wall_ms: aggressive_wall,
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.domain.clone(),
                r.injected.to_string(),
                format!("{}/{}/{}", r.recovered, r.degraded, r.typed_errors),
                if r.panicked {
                    "PANIC".into()
                } else if r.reproduced {
                    "yes".into()
                } else {
                    "no".into()
                },
                if r.bit_identical { "yes" } else { "—" }.to_string(),
                r.give_up.clone().unwrap_or_else(|| "—".into()),
                fmt_duration(Duration::from_secs_f64(r.wall_ms / 1e3)),
            ]
        })
        .collect();
    print_table(
        &format!("Chaos sweep (seed {SEED:#x}, serial pool, M={FLEET_SIZE})"),
        &[
            "Workload",
            "Domain",
            "Injected",
            "Rec/Deg/Typed",
            "Repro",
            "Bit-ident",
            "Give-up",
            "Wall",
        ],
        &table,
    );

    let mut failures: Vec<String> = Vec::new();
    for r in &rows {
        let leg = format!("{} [{}]", r.workload, r.domain);
        if r.panicked {
            failures.push(format!("{leg}: PANICKED"));
            continue;
        }
        if r.injected == 0 {
            failures.push(format!(
                "{leg}: no fault injected (leg did not exercise domain)"
            ));
        }
        match r.domain.as_str() {
            "ingest" | "store" | "pool" => {
                if r.recovered + r.degraded + r.typed_errors == 0 {
                    failures.push(format!("{leg}: injections unaccounted for"));
                }
                if !r.reproduced || !r.bit_identical {
                    failures.push(format!(
                        "{leg}: must reproduce bit-identically (reproduced={}, bit_identical={})",
                        r.reproduced, r.bit_identical
                    ));
                }
            }
            "trace" | "solver" => {
                if !r.reproduced {
                    failures.push(format!(
                        "{leg}: must still reproduce (gave up: {:?})",
                        r.give_up
                    ));
                }
            }
            _ => {
                // Aggressive leg: a typed give-up, never a reproduction
                // built on a fabricated trace, never a panic.
                if r.reproduced {
                    failures.push(format!("{leg}: reproduced despite all-faulty traces"));
                }
                if r.give_up.is_none() {
                    failures.push(format!("{leg}: no typed give-up reason"));
                }
            }
        }
    }

    if !smoke {
        write_json("BENCH_CHAOS", &rows);
    }
    let _ = std::fs::remove_dir_all(&spill);
    println!(
        "{} chaos legs over {} workloads{}",
        rows.len(),
        workloads.len(),
        if smoke { " (smoke)" } else { "" }
    );
    for f in &failures {
        er_telemetry::log!(error, "{f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
