//! Regenerates **Table 1**: the 13 bugs with bug type, threading, failing-run
//! instruction count, occurrences needed, and total shepherded-symbex time —
//! plus the §5.3 offline-overhead columns (largest constraint graph, trace
//! bytes).
//!
//! Usage: `table1 [--test] [--serial] [--baseline]` — `--test` runs the
//! small-scale workloads, `--serial` disables the worker pool, and
//! `--baseline` disables the incremental solver and checkpoint resume.

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_bench::rows::{table1_rows, RowOptions};
use er_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test");
    let opts = RowOptions {
        scale: if test_scale { Scale::TEST } else { Scale::FULL },
        serial: args.iter().any(|a| a == "--serial"),
        baseline: args.iter().any(|a| a == "--baseline"),
    };
    println!(
        "# Table 1 (scale: {}{}{})",
        if test_scale { "test" } else { "full" },
        if opts.serial { ", serial" } else { "" },
        if opts.baseline { ", baseline" } else { "" },
    );

    let rows_out = table1_rows(opts);

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.bug_type.clone(),
                if r.multithreaded { "Y" } else { "N" }.into(),
                r.instr_count.to_string(),
                r.occurrences.to_string(),
                r.expected_occurrences.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(r.symbex_seconds)),
                if r.reproduced { "yes" } else { "NO" }.into(),
                r.max_graph_nodes.to_string(),
                r.trace_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: bugs reproduced by ER",
        &[
            "Application-BugID",
            "Bug Type",
            "MT",
            "#Instr",
            "#Occur",
            "#Occur (paper)",
            "Symbex Time",
            "Reproduced",
            "Graph Nodes (max)",
            "Trace Bytes",
        ],
        &rows,
    );

    let reproduced = rows_out.iter().filter(|r| r.reproduced).count();
    let avg_occ: f64 = rows_out
        .iter()
        .map(|r| f64::from(r.occurrences))
        .sum::<f64>()
        / rows_out.len() as f64;
    let single = rows_out.iter().filter(|r| r.occurrences == 1).count();
    println!("Reproduced: {reproduced}/13 (paper: 13/13)");
    println!("Average occurrences: {avg_occ:.2} (paper: ~3.5)");
    println!("Single-occurrence reproductions: {single}/13 (paper: 2/13)");
    write_json("table1", &rows_out);
}
