//! Regenerates **Table 1**: the 13 bugs with bug type, threading, failing-run
//! instruction count, occurrences needed, and total shepherded-symbex time —
//! plus the §5.3 offline-overhead columns (largest constraint graph, trace
//! bytes).
//!
//! Usage: `table1 [--test]` — `--test` runs the small-scale workloads.

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_core::Reconstructor;
use er_workloads::{all, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    app: String,
    bug_type: String,
    multithreaded: bool,
    instr_count: u64,
    occurrences: u32,
    expected_occurrences: u32,
    symbex_seconds: f64,
    reproduced: bool,
    max_graph_nodes: usize,
    trace_bytes: u64,
    recorded_bytes_final: u64,
}

fn main() {
    let test_scale = std::env::args().any(|a| a == "--test");
    let scale = if test_scale { Scale::TEST } else { Scale::FULL };
    println!(
        "# Table 1 (scale: {})",
        if test_scale { "test" } else { "full" }
    );

    let mut rows_out: Vec<Row> = Vec::new();
    for w in all() {
        // Tag telemetry events with the workload so obs_report can group
        // the journal per Table-1 row.
        er_telemetry::set_context(w.name);
        let deployment = w.deployment(scale);
        let report = Reconstructor::new(w.er_config()).reconstruct(&deployment);
        let last = report.iterations.last();
        rows_out.push(Row {
            name: w.name.to_string(),
            app: w.app.to_string(),
            bug_type: w.bug_type.to_string(),
            multithreaded: w.multithreaded,
            instr_count: last.map(|i| i.instr_count).unwrap_or(0),
            occurrences: report.occurrences,
            expected_occurrences: w.expected_occurrences,
            symbex_seconds: report.total_symbex.as_secs_f64(),
            reproduced: report.reproduced(),
            max_graph_nodes: report
                .iterations
                .iter()
                .map(|i| i.graph_nodes)
                .max()
                .unwrap_or(0),
            trace_bytes: last.map(|i| i.trace_bytes).unwrap_or(0),
            recorded_bytes_final: last.map(|i| i.recorded_bytes).unwrap_or(0),
        });
        er_telemetry::log!(
            info,
            "  {} done: reproduced={} occ={}",
            w.name,
            report.reproduced(),
            report.occurrences
        );
    }
    er_telemetry::set_context("");

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.bug_type.clone(),
                if r.multithreaded { "Y" } else { "N" }.into(),
                r.instr_count.to_string(),
                r.occurrences.to_string(),
                r.expected_occurrences.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(r.symbex_seconds)),
                if r.reproduced { "yes" } else { "NO" }.into(),
                r.max_graph_nodes.to_string(),
                r.trace_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: bugs reproduced by ER",
        &[
            "Application-BugID",
            "Bug Type",
            "MT",
            "#Instr",
            "#Occur",
            "#Occur (paper)",
            "Symbex Time",
            "Reproduced",
            "Graph Nodes (max)",
            "Trace Bytes",
        ],
        &rows,
    );

    let reproduced = rows_out.iter().filter(|r| r.reproduced).count();
    let avg_occ: f64 = rows_out
        .iter()
        .map(|r| f64::from(r.occurrences))
        .sum::<f64>()
        / rows_out.len() as f64;
    let single = rows_out.iter().filter(|r| r.occurrences == 1).count();
    println!("Reproduced: {reproduced}/13 (paper: 13/13)");
    println!("Average occurrences: {avg_occ:.2} (paper: ~3.5)");
    println!("Single-occurrence reproductions: {single}/13 (paper: 2/13)");
    write_json("table1", &rows_out);
}
