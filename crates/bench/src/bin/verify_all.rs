//! Quick full-suite verifier: reconstructs all 13 workloads at test scale
//! and checks occurrence counts against the engineered expectations.
//! Exits nonzero on any mismatch (used as a CI-style smoke check).

use er_core::Reconstructor;
use er_workloads::{all, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut ok = true;
    for w in all() {
        let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        let status = report.reproduced() && report.occurrences == w.expected_occurrences;
        println!(
            "{:22} reproduced={} occ={} (expect {}) {}",
            w.name,
            report.reproduced(),
            report.occurrences,
            w.expected_occurrences,
            if status { "OK" } else { "MISMATCH" }
        );
        ok &= status;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
