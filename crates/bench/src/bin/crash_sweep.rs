//! Kill-restart sweep (PR 5): the Table-1 workloads under seeded
//! scheduler crashes.
//!
//! For every workload, runs a durable (WAL-journaling) fleet to
//! completion once as the uncrashed reference, then re-runs it with
//! [`er_chaos::Fault::WalTear`] armed at seeded WAL positions: the n-th
//! append tears mid-write and the "process" dies (an unwind carrying
//! [`er_durable::CrashSignal`]). Each crashed run is restarted with
//! [`Fleet::resume`], which replays the torn WAL, rebuilds the in-flight
//! sessions, and re-enters the round loop. Asserts, per crash point:
//!
//! * the restart resumes from durable state — `durable.resumes` fires,
//!   and `symex.checkpoint_resumes` fires for multi-occurrence
//!   workloads (the session continues from its last symbex checkpoint,
//!   not from occurrence zero);
//! * the resumed run converges **bit-identically** to the uncrashed
//!   reference — no occurrence lost, none double-counted
//!   (`durable.replay_divergence` stays zero);
//! * nothing panics after the injected crash itself.
//!
//! A final per-workload *watchdog* leg runs undersized per-phase budgets
//! with a generous escalation ladder: stalled iterations must be
//! cancelled, re-queued, and still converge to the reference answer with
//! zero panics.
//!
//! * default: all 13 workloads × `CRASH_POINTS` seeded positions,
//!   writes `results/BENCH_CRASH.json`.
//! * `--smoke`: 3 workloads × `CRASH_POINTS` positions (CI gate).

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_chaos::{ChaosPlan, Fault, FaultPolicy};
use er_durable::{fnv64, CrashSignal, Wal, WatchdogConfig};
use er_fleet::sched::SchedulerConfig;
use er_fleet::sim::{Fleet, FleetConfig, FleetReport, FleetSpec, Traffic};
use er_solver::cancel::PhaseBudgets;
use er_workloads::{all, by_name, Scale, Workload};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FLEET_SIZE: usize = 2;
const SMOKE_WORKLOADS: &[&str] = &["Libpng-2004-0597", "PHP-74194", "Memcached-2019-11596"];
const CRASH_POINTS: usize = 3;
const SEED: u64 = 0xc4a5_45ee;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn spec_for(w: &Workload) -> FleetSpec {
    let input = w.input_gen;
    FleetSpec {
        program: w.program(Scale::TEST),
        input_gen: Arc::new(input),
        sched_gen: w.sched_gen.map(|s| {
            let f: Arc<dyn Fn(u64) -> er_minilang::interp::SchedConfig + Send + Sync> = Arc::new(s);
            f
        }),
        pt: er_pt::PtConfig::default(),
        reoccurrence: w.reoccurrence_model(1_000),
        er: w.er_config(),
        label: w.name.to_string(),
    }
}

fn fleet_with(w: &Workload, durable: Option<PathBuf>, watchdog: Option<WatchdogConfig>) -> Fleet {
    Fleet::new(
        spec_for(w),
        FleetConfig {
            instances: FLEET_SIZE,
            serial: true, // deterministic baseline: crashes, not thread timing
            traffic: Traffic::Mirrored,
            durable,
            sched: SchedulerConfig {
                watchdog,
                ..SchedulerConfig::default()
            },
            ..FleetConfig::default()
        },
    )
}

/// One group's answer row: group id, reproduced?, occurrences, test-case
/// inputs — everything a crash or a watchdog must not change.
type GroupAnswer = (u64, bool, u32, Vec<(u32, Vec<u8>)>);

fn answer(r: &FleetReport) -> Vec<GroupAnswer> {
    let mut rows: Vec<_> = r
        .groups
        .iter()
        .map(|g| {
            (
                g.group,
                g.report.reproduced(),
                g.report.occurrences,
                g.report
                    .outcome
                    .test_case()
                    .map(|t| t.inputs.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    rows.sort();
    rows
}

/// Seeded pick of `k` distinct crash positions (0-based append indices)
/// from `[lo, hi]`, via a partial Fisher–Yates over the candidate range.
fn crash_positions(lo: u64, hi: u64, k: usize, state: &mut u64) -> Vec<u64> {
    let mut candidates: Vec<u64> = (lo..=hi).collect();
    let k = k.min(candidates.len());
    for i in 0..k {
        let j = i + (splitmix64(state) as usize) % (candidates.len() - i);
        candidates.swap(i, j);
    }
    candidates.truncate(k);
    candidates.sort_unstable();
    candidates
}

#[derive(Serialize)]
struct CrashRow {
    workload: String,
    /// `crash@n` for kill-restart legs, `watchdog` for the supervision leg.
    leg: String,
    /// Total appends in the uncrashed reference WAL.
    wal_appends: u64,
    /// Records durably on disk when the injected tear fired.
    records_at_crash: Option<u64>,
    reproduced: bool,
    bit_identical: bool,
    resumes: u64,
    checkpoint_resumes: u64,
    replay_divergence: u64,
    escalations: u64,
    panicked: bool,
    wall_ms: f64,
}

fn sweep_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("er-crash-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create sweep dir");
    dir
}

fn main() {
    // Counter deltas (durable.resumes, symex.checkpoint_resumes, …) are
    // this sweep's resume evidence — keep collection on regardless of
    // ER_TELEMETRY.
    let _counters = er_telemetry::ensure_counters();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workloads: Vec<Workload> = if smoke {
        SMOKE_WORKLOADS
            .iter()
            .map(|n| by_name(n).expect("smoke workload exists"))
            .collect()
    } else {
        all()
    };
    let dir = sweep_dir();

    let mut rows: Vec<CrashRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for w in &workloads {
        // Uncrashed durable reference: the answer every crash leg must
        // match, and the WAL whose length bounds the crash positions.
        er_telemetry::set_context(&format!("{}/crash-reference", w.name));
        let ref_path = dir.join(format!("{}-reference.wal", w.name));
        let before = er_telemetry::global_snapshot();
        let reference_report = fleet_with(w, Some(ref_path.clone()), None).run();
        let ref_delta = er_telemetry::global_snapshot().delta(&before);
        er_telemetry::set_context("");
        if !reference_report.all_reproduced() {
            failures.push(format!("{}: uncrashed durable run must reproduce", w.name));
            continue;
        }
        let reference = answer(&reference_report);
        // Whether this workload's sessions ever continue from a symbex
        // checkpoint is an empirical property of the uncrashed run (a
        // re-instrumentation can legitimately invalidate every saved
        // checkpoint); demand it after a crash only where the clean run
        // exhibits it.
        let expects_checkpoint_resume = ref_delta.get("symex.checkpoint_resumes") > 0;
        let (_wal, events, info) = Wal::open(&ref_path).expect("reference WAL opens");
        assert_eq!(info.torn_bytes, 0, "{}: clean run tore its WAL", w.name);
        let wal_appends = events.len() as u64;
        drop(_wal);
        std::fs::remove_file(&ref_path).ok();

        // Crash positions: skip append 0 (an empty WAL is a cold start,
        // not a resume); tearing anything up to and including the final
        // (terminal-verdict) append is fair game.
        let mut rng = SEED ^ fnv64(w.name.as_bytes());
        let hi = wal_appends.saturating_sub(1).max(1);
        let positions = crash_positions(1, hi, CRASH_POINTS, &mut rng);

        for &p in &positions {
            let leg = format!("{} [crash@{p}]", w.name);
            er_telemetry::set_context(&format!("{}/crash-at-{p}", w.name));
            let path = dir.join(format!("{}-crash-{p}.wal", w.name));
            let fleet = fleet_with(w, Some(path.clone()), None);

            // Kill: the (p+1)-th WAL append tears mid-write and the
            // scheduler dies. The unwind is the point — silence the
            // default panic hook for this closure only.
            let guard = er_chaos::arm(
                ChaosPlan::new(SEED ^ p).with(Fault::WalTear, FaultPolicy::at_nth(p)),
            );
            let start = Instant::now();
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let crash = catch_unwind(AssertUnwindSafe(|| fleet.run()));
            std::panic::set_hook(hook);
            drop(guard);
            let records_at_crash = match &crash {
                Err(payload) => payload
                    .downcast_ref::<CrashSignal>()
                    .map(|s| s.records_appended),
                Ok(_) => None,
            };
            if crash.is_ok() {
                failures.push(format!("{leg}: armed tear did not crash the run"));
            } else if records_at_crash.is_none() {
                failures.push(format!("{leg}: crash payload was not a CrashSignal"));
            }

            // Restart: replay the torn WAL and converge.
            let before = er_telemetry::global_snapshot();
            let resumed = catch_unwind(AssertUnwindSafe(|| fleet.resume()));
            let delta = er_telemetry::global_snapshot().delta(&before);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            er_telemetry::set_context("");

            let (panicked, report) = match resumed {
                Ok(Ok(report)) => (false, Some(report)),
                Ok(Err(e)) => {
                    failures.push(format!("{leg}: resume failed: {e}"));
                    (false, None)
                }
                Err(_) => (true, None),
            };
            let reproduced = report.as_ref().is_some_and(FleetReport::all_reproduced);
            let bit_identical = report.as_ref().is_some_and(|r| answer(r) == reference);
            let row = CrashRow {
                workload: w.name.to_string(),
                leg: format!("crash@{p}"),
                wal_appends,
                records_at_crash,
                reproduced,
                bit_identical,
                resumes: delta.get("durable.resumes"),
                checkpoint_resumes: delta.get("symex.checkpoint_resumes"),
                replay_divergence: delta.get("durable.replay_divergence"),
                escalations: 0,
                panicked,
                wall_ms,
            };
            if row.panicked {
                failures.push(format!("{leg}: PANICKED after restart"));
            }
            if !row.reproduced || !row.bit_identical {
                failures.push(format!(
                    "{leg}: must reproduce bit-identically (reproduced={}, bit_identical={})",
                    row.reproduced, row.bit_identical
                ));
            }
            if row.resumes == 0 {
                failures.push(format!("{leg}: durable.resumes did not fire"));
            }
            if expects_checkpoint_resume && row.checkpoint_resumes == 0 {
                failures.push(format!(
                    "{leg}: restart must resume from a symbex checkpoint, not occurrence zero"
                ));
            }
            if row.replay_divergence != 0 {
                failures.push(format!(
                    "{leg}: WAL replay diverged from journaled history ({}×)",
                    row.replay_divergence
                ));
            }
            rows.push(row);
            std::fs::remove_file(&path).ok();
        }

        // Watchdog leg: a shepherd budget far below one occurrence's
        // symex step count, with a ladder generous enough that some rung
        // always fits. Stalls must be cancelled + re-queued, the ladder
        // must not be exhausted, and the answer must not move.
        let leg = format!("{} [watchdog]", w.name);
        er_telemetry::set_context(&format!("{}/watchdog", w.name));
        let wd = WatchdogConfig {
            budgets: PhaseBudgets {
                shepherd: 50,
                ..PhaseBudgets::unlimited()
            },
            escalation_factor: 8,
            max_escalations: 10,
        };
        let before = er_telemetry::global_snapshot();
        let start = Instant::now();
        let watched = catch_unwind(AssertUnwindSafe(|| fleet_with(w, None, Some(wd)).run()));
        let delta = er_telemetry::global_snapshot().delta(&before);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        er_telemetry::set_context("");
        let (panicked, report) = match watched {
            Ok(report) => (false, Some(report)),
            Err(_) => (true, None),
        };
        let reproduced = report.as_ref().is_some_and(FleetReport::all_reproduced);
        let bit_identical = report.as_ref().is_some_and(|r| answer(r) == reference);
        let row = CrashRow {
            workload: w.name.to_string(),
            leg: "watchdog".to_string(),
            wal_appends,
            records_at_crash: None,
            reproduced,
            bit_identical,
            resumes: 0,
            checkpoint_resumes: delta.get("symex.checkpoint_resumes"),
            replay_divergence: 0,
            escalations: delta.get("watchdog.escalations"),
            panicked,
            wall_ms,
        };
        if row.panicked {
            failures.push(format!("{leg}: PANICKED"));
        }
        if row.escalations == 0 {
            failures.push(format!(
                "{leg}: a 50-step shepherd budget must trip at least once"
            ));
        }
        if delta.get("watchdog.gave_up") != 0 {
            failures.push(format!("{leg}: ladder exhausted despite 8× escalation"));
        }
        if !row.reproduced || !row.bit_identical {
            failures.push(format!(
                "{leg}: cancelled iterations must not change the answer (reproduced={}, bit_identical={})",
                row.reproduced, row.bit_identical
            ));
        }
        rows.push(row);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.leg.clone(),
                format!(
                    "{}/{}",
                    r.records_at_crash
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| "—".into()),
                    r.wal_appends
                ),
                if r.panicked {
                    "PANIC".into()
                } else if r.reproduced {
                    "yes".into()
                } else {
                    "no".into()
                },
                if r.bit_identical { "yes" } else { "—" }.to_string(),
                r.resumes.to_string(),
                r.checkpoint_resumes.to_string(),
                r.escalations.to_string(),
                fmt_duration(Duration::from_secs_f64(r.wall_ms / 1e3)),
            ]
        })
        .collect();
    print_table(
        &format!("Crash sweep (seed {SEED:#x}, serial pool, M={FLEET_SIZE})"),
        &[
            "Workload",
            "Leg",
            "Durable/Total",
            "Repro",
            "Bit-ident",
            "Resumes",
            "Ckpt-res",
            "Escal",
            "Wall",
        ],
        &table,
    );

    if !smoke {
        write_json("BENCH_CRASH", &rows);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "{} crash/watchdog legs over {} workloads{}",
        rows.len(),
        workloads.len(),
        if smoke { " (smoke)" } else { "" }
    );
    for f in &failures {
        er_telemetry::log!(error, "{f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
