//! Regenerates the **§3.4 coarse-interleaving study**: reconstruction of
//! the multithreaded failures as the scheduler's quantum (our analogue of
//! PT timestamp granularity) shrinks. Fine-grained interleavings stress the
//! chunk-ordering assumption; coarse ones replay reliably.

use er_bench::harness::{print_table, write_json};
use er_core::Reconstructor;
use er_minilang::interp::SchedConfig;
use er_workloads::{all, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    quantum: u64,
    reproduced: bool,
    occurrences: u32,
}

fn main() {
    println!("# §3.4: MT reconstruction vs scheduling-chunk granularity");
    let mut rows_out = Vec::new();
    for w in all().into_iter().filter(|w| w.multithreaded) {
        for quantum in [50u64, 150, 400, 1_000] {
            let deployment = w
                .deployment(Scale::TEST)
                .with_sched(move |run| SchedConfig {
                    quantum,
                    seed: run + 1,
                    max_instrs: 500_000_000,
                });
            let report = Reconstructor::new(w.er_config()).reconstruct(&deployment);
            er_telemetry::log!(
                info,
                "  {} quantum={quantum}: reproduced={} occ={}",
                w.name,
                report.reproduced(),
                report.occurrences
            );
            rows_out.push(Row {
                name: w.name.to_string(),
                quantum,
                reproduced: report.reproduced(),
                occurrences: report.occurrences,
            });
        }
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.quantum.to_string(),
                if r.reproduced { "yes" } else { "no" }.into(),
                r.occurrences.to_string(),
            ]
        })
        .collect();
    print_table(
        "MT workloads under varying chunk granularity",
        &["Workload", "Quantum (instrs)", "Reproduced", "#Occur"],
        &rows,
    );
    let ok = rows_out.iter().filter(|r| r.reproduced).count();
    println!(
        "{ok}/{} configurations reconstructed (the paper reconstructs all MT \
         workloads whose races satisfy the coarse interleaving hypothesis).",
        rows_out.len()
    );
    write_json("ablation_chunks", &rows_out);
}
