//! Regenerates **Fig. 5**: shepherded-symbolic-execution progress on
//! PHP-74194 with (a) control flow only, (b) first-iteration data values,
//! (c) second-iteration data values.
//!
//! The paper disables the solver timeout and lets all three configurations
//! execute the same instruction stream; data values cut wall time from
//! 11468 s to 5006 s (1st iteration) to 1800 s (2nd iteration). Here the
//! same trace is shepherded with the recording sets ER selected in its
//! first and second iterations, under a budget generous enough that no
//! configuration stalls; the expected *shape* is monotonically decreasing
//! solver work and wall time.
//!
//! Usage: `fig5 [--full]`

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_core::instrument::InstrumentedProgram;
use er_core::shepherd;
use er_core::Reconstructor;
use er_minilang::ir::InstrId;
use er_solver::solve::Budget;
use er_symex::SymConfig;
use er_workloads::{by_name, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    label: String,
    sites: usize,
    steps: u64,
    wall_seconds: f64,
    solver_work_units: u64,
    solver_queries: u64,
    stalled: bool,
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::FULL
    } else {
        Scale::TEST
    };
    let w = by_name("PHP-74194").expect("registered");
    println!("# Fig. 5: benefit of recorded data values (PHP-74194)");

    // Phase 1: run the normal reconstruction to learn which sites ER's
    // first and second iterations selected.
    let deployment = w.deployment(scale);
    let report = Reconstructor::new(w.er_config()).reconstruct(&deployment);
    assert!(report.reproduced(), "reconstruction must succeed first");
    let iter1: Vec<InstrId> = report.iterations[0].new_sites.clone();
    let mut iter2 = iter1.clone();
    if report.iterations.len() > 1 {
        iter2.extend(report.iterations[1].new_sites.clone());
    }
    er_telemetry::log!(
        info,
        "selected sites: iteration1 {} iteration2 {}",
        iter1.len(),
        iter2.len()
    );

    // Phase 2: shepherd the same failing run under each recording set with
    // a no-stall budget.
    let generous = SymConfig {
        solver_budget: Budget {
            max_conflicts: 5_000_000,
            max_array_cells: 20_000_000,
            max_clauses: 100_000_000,
        },
        max_steps: 2_000_000_000,
        always_concretize: false,
    };
    let configs: [(&str, Vec<InstrId>); 3] = [
        ("control-flow + no data values", vec![]),
        ("control-flow + 1st-iteration data values", iter1),
        ("control-flow + 2nd-iteration data values", iter2),
    ];

    let mut series = Vec::new();
    for (label, sites) in configs {
        let inst = if sites.is_empty() {
            InstrumentedProgram::unmodified(deployment.program())
        } else {
            InstrumentedProgram::new(deployment.program(), &sites)
        };
        let occ = deployment
            .run_until_failure(&inst, None, 0, 50_000)
            .expect("workload fails");
        let rep = shepherd::shepherd(
            &inst.program,
            &occ.trace,
            Some(&occ.failure_instrumented),
            generous,
        )
        .expect("trace decodes");
        let stalled = !matches!(rep.run.status, er_symex::ShepherdStatus::Completed);
        er_telemetry::log!(
            info,
            "  {label}: {} ({} work units{})",
            fmt_duration(rep.wall),
            rep.run.stats.work_units,
            if stalled { ", STALLED" } else { "" }
        );
        series.push(Series {
            label: label.to_string(),
            sites: inst.sites.len(),
            steps: rep.run.stats.steps,
            wall_seconds: rep.wall.as_secs_f64(),
            solver_work_units: rep.run.stats.work_units,
            solver_queries: rep.run.stats.solver_queries,
            stalled,
        });
    }

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                s.sites.to_string(),
                s.steps.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(s.wall_seconds)),
                s.solver_work_units.to_string(),
                s.solver_queries.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 5: symbex cost for the same trace under growing recording sets",
        &[
            "Configuration",
            "Sites",
            "Instructions",
            "Wall",
            "Solver work",
            "Queries",
        ],
        &rows,
    );
    let w0 = series[0].solver_work_units as f64;
    let w2 = series[2].solver_work_units.max(1) as f64;
    println!(
        "Speedup (work units, no-values vs 2nd-iteration): {:.1}x (paper: 11468s/1800s = 6.4x wall)",
        w0 / w2
    );
    write_json("fig5", &series);
}
