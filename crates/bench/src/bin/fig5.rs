//! Regenerates **Fig. 5**: shepherded-symbolic-execution progress on
//! PHP-74194 with (a) control flow only, (b) first-iteration data values,
//! (c) second-iteration data values.
//!
//! The paper disables the solver timeout and lets all three configurations
//! execute the same instruction stream; data values cut wall time from
//! 11468 s to 5006 s (1st iteration) to 1800 s (2nd iteration). Here the
//! same trace is shepherded with the recording sets ER selected in its
//! first and second iterations, under a budget generous enough that no
//! configuration stalls; the expected *shape* is monotonically decreasing
//! solver work and wall time.
//!
//! Usage: `fig5 [--full]`

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_bench::rows::fig5_series;
use er_workloads::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::FULL
    } else {
        Scale::TEST
    };
    println!("# Fig. 5: benefit of recorded data values (PHP-74194)");

    let series = fig5_series(scale);
    for s in &series {
        er_telemetry::log!(
            info,
            "  {}: {} ({} work units{})",
            s.label,
            fmt_duration(std::time::Duration::from_secs_f64(s.wall_seconds)),
            s.solver_work_units,
            if s.stalled { ", STALLED" } else { "" }
        );
    }

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                s.sites.to_string(),
                s.steps.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(s.wall_seconds)),
                s.solver_work_units.to_string(),
                s.solver_queries.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 5: symbex cost for the same trace under growing recording sets",
        &[
            "Configuration",
            "Sites",
            "Instructions",
            "Wall",
            "Solver work",
            "Queries",
        ],
        &rows,
    );
    let w0 = series[0].solver_work_units as f64;
    let w2 = series[2].solver_work_units.max(1) as f64;
    println!(
        "Speedup (work units, no-values vs 2nd-iteration): {:.1}x (paper: 11468s/1800s = 6.4x wall)",
        w0 / w2
    );
    write_json("fig5", &series);
}
