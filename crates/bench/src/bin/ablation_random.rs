//! Regenerates the **§5.2 random-recording ablation**: replacing key data
//! value selection with random selection of the same byte budget.
//!
//! The paper: "ER with random data recording only reproduces one failure
//! among the failures that require data value recording (Nasm-2004-1287)."
//!
//! Usage: `ablation_random [--seeds N]`

use er_bench::harness::{print_table, write_json};
use er_core::reconstruct::{ErConfig, Reconstructor};
use er_core::select::SelectorKind;
use er_workloads::{all, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    needs_data: bool,
    key_value_occurrences: Option<u32>,
    random_reproduced: bool,
    random_successes: u32,
    seeds_tried: u32,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("# §5.2 ablation: key data value selection vs random recording");

    let mut rows_out = Vec::new();
    for w in all() {
        let needs_data = w.expected_occurrences > 1;
        // Key-value baseline.
        let kv = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        // Random with the same recording budget, several seeds.
        // Fairness: random selection gets the same data budget per
        // iteration *and* the same number of failure occurrences that key
        // data value selection needed.
        let mut successes = 0u32;
        if needs_data {
            for seed in 0..seeds {
                let config = ErConfig {
                    selector: SelectorKind::Random { seed: seed * 7 + 1 },
                    max_occurrences: kv.occurrences.max(2),
                    ..w.er_config()
                };
                let r = Reconstructor::new(config).reconstruct(&w.deployment(Scale::TEST));
                if r.reproduced() {
                    successes += 1;
                }
            }
        }
        er_telemetry::log!(
            info,
            "  {}: key-value {} | random {}/{}",
            w.name,
            if kv.reproduced() { "ok" } else { "FAIL" },
            successes,
            if needs_data { seeds } else { 0 }
        );
        rows_out.push(Row {
            name: w.name.to_string(),
            needs_data,
            key_value_occurrences: kv.reproduced().then_some(kv.occurrences),
            random_reproduced: successes > 0,
            random_successes: successes,
            seeds_tried: if needs_data { seeds as u32 } else { 0 },
        });
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                if r.needs_data { "yes" } else { "no" }.into(),
                r.key_value_occurrences
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| "FAILED".into()),
                if !r.needs_data {
                    "n/a".into()
                } else if r.random_reproduced {
                    format!("yes ({}/{})", r.random_successes, r.seeds_tried)
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    print_table(
        "Random recording vs key data value selection",
        &[
            "Workload",
            "Needs data",
            "Key-value #occur",
            "Random reproduces",
        ],
        &rows,
    );
    let random_ok = rows_out
        .iter()
        .filter(|r| r.needs_data && r.random_reproduced)
        .count();
    let data_needing = rows_out.iter().filter(|r| r.needs_data).count();
    println!(
        "Random recording reproduced {random_ok}/{data_needing} data-requiring failures (paper: 1/11)."
    );
    write_json("ablation_random", &rows_out);
}
