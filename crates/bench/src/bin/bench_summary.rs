//! The PR-2 performance artifact: runs the Table-1 sweep and the Fig.-5
//! series at test scale in both the optimized mode (incremental solver +
//! checkpoint resume + worker pool) and the sequential uncached baseline,
//! and writes `BENCH_PR2.json` with wall-clock, solver work, and symbex
//! steps per workload. The committed copy under `results/` is the
//! baseline future runs are compared against.
//!
//! Usage: `bench_summary [--full] [--serial] [--skip-baseline]`

use er_bench::harness::{fmt_duration, print_table, time_once, write_json};
use er_bench::rows::{fig5_series, table1_rows, Fig5Series, RowOptions, Table1Row};
use er_workloads::Scale;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct ModeSummary {
    wall_seconds_total: f64,
    rows: Vec<Table1Row>,
}

#[derive(Serialize)]
struct BenchSummary {
    scale: &'static str,
    serial: bool,
    optimized: ModeSummary,
    baseline: Option<ModeSummary>,
    speedup_wall: Option<f64>,
    fig5: Vec<Fig5Series>,
}

fn sweep(opts: RowOptions) -> ModeSummary {
    let (rows, wall) = time_once(|| table1_rows(opts));
    ModeSummary {
        wall_seconds_total: wall.as_secs_f64(),
        rows,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let serial = args.iter().any(|a| a == "--serial");
    let skip_baseline = args.iter().any(|a| a == "--skip-baseline");
    let scale = if full { Scale::FULL } else { Scale::TEST };

    println!(
        "# PR-2 bench summary (scale: {})",
        if full { "full" } else { "test" }
    );

    let optimized = sweep(RowOptions {
        scale,
        serial,
        baseline: false,
    });
    let baseline = (!skip_baseline).then(|| {
        sweep(RowOptions {
            scale,
            serial: true,
            baseline: true,
        })
    });
    let speedup_wall = baseline
        .as_ref()
        .map(|b| b.wall_seconds_total / optimized.wall_seconds_total.max(1e-9));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for r in &optimized.rows {
        let base = baseline
            .as_ref()
            .and_then(|b| b.rows.iter().find(|x| x.name == r.name));
        rows.push(vec![
            r.name.clone(),
            fmt_duration(Duration::from_secs_f64(r.wall_seconds)),
            base.map(|b| fmt_duration(Duration::from_secs_f64(b.wall_seconds)))
                .unwrap_or_else(|| "-".into()),
            r.solver_work_units.to_string(),
            base.map(|b| b.solver_work_units.to_string())
                .unwrap_or_else(|| "-".into()),
            r.symbex_steps.to_string(),
            base.map(|b| b.symbex_steps.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print_table(
        "PR-2: incremental + checkpoint-resume vs sequential uncached baseline",
        &[
            "Workload",
            "Wall (opt)",
            "Wall (base)",
            "Solver work (opt)",
            "Solver work (base)",
            "Symbex steps (opt)",
            "Symbex steps (base)",
        ],
        &rows,
    );
    if let Some(s) = speedup_wall {
        println!(
            "Sweep wall: optimized {} vs baseline {} — {s:.2}x",
            fmt_duration(Duration::from_secs_f64(optimized.wall_seconds_total)),
            fmt_duration(Duration::from_secs_f64(
                baseline.as_ref().unwrap().wall_seconds_total
            )),
        );
    }

    // Sanity: the optimization must not change reproduction results.
    if let Some(b) = &baseline {
        for (o, bz) in optimized.rows.iter().zip(&b.rows) {
            assert_eq!(
                o.deterministic_fields(),
                bz.deterministic_fields(),
                "optimized and baseline reproduction results diverged for {}",
                o.name
            );
        }
        println!("Reproduction results identical to baseline: yes");
    }

    let fig5 = fig5_series(scale);

    write_json(
        "BENCH_PR2",
        &BenchSummary {
            scale: if full { "full" } else { "test" },
            serial,
            optimized,
            baseline,
            speedup_wall,
            fig5,
        },
    );
}
