//! Regenerates the **§3.3.2 recording-cost reduction** comparison: the raw
//! bottleneck set vs the DFS-minimized recording set, in bytes per failing
//! run, for the first stalling iteration of each data-requiring workload.

use er_bench::harness::{print_table, write_json};
use er_core::deploy::Deployment;
use er_core::graph::ConstraintGraph;
use er_core::instrument::InstrumentedProgram;
use er_core::select::{self, SelectionInput};
use er_core::shepherd;
use er_minilang::ir::InstrId;
use er_workloads::{all, Scale};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Row {
    name: String,
    bottleneck_elements: usize,
    bottleneck_bytes: u64,
    recording_sites: usize,
    recording_bytes: u64,
}

fn main() {
    println!("# §3.3.2: bottleneck set vs minimized recording set (first stall)");
    let mut rows_out = Vec::new();
    for w in all() {
        if w.expected_occurrences == 1 {
            continue; // never stalls; nothing to record
        }
        let deployment: Deployment = w.deployment(Scale::TEST);
        let inst = InstrumentedProgram::unmodified(deployment.program());
        let Some(occ) = deployment.run_until_failure(&inst, None, 0, 50_000) else {
            continue;
        };
        let rep = shepherd::shepherd(
            &inst.program,
            &occ.trace,
            Some(&occ.failure_instrumented),
            w.er_config().sym,
        )
        .expect("decodes");
        let run = rep.run;
        let graph = ConstraintGraph::analyze(&run.pool);
        let mut origins: HashMap<er_solver::ExprRef, InstrId> = HashMap::new();
        for (&e, &s) in &run.origins {
            origins.insert(e, s);
        }
        let input = SelectionInput {
            pool: &run.pool,
            origins: &origins,
            site_counts: &run.site_counts,
        };
        // Naive strategy: record every bottleneck element at its own site.
        let bottleneck_bytes: u64 = graph
            .bottleneck
            .iter()
            .map(|b| {
                let count = origins
                    .get(&b.expr)
                    .and_then(|s| run.site_counts.get(s))
                    .copied()
                    .unwrap_or(1);
                b.size_bytes * count
            })
            .sum();
        let set = select::select_key_values(&graph, &input);
        er_telemetry::log!(
            info,
            "  {}: bottleneck {} elems / {} B -> recording {} sites / {} B",
            w.name,
            graph.bottleneck.len(),
            bottleneck_bytes,
            set.sites.len(),
            set.total_cost()
        );
        rows_out.push(Row {
            name: w.name.to_string(),
            bottleneck_elements: graph.bottleneck.len(),
            bottleneck_bytes,
            recording_sites: set.sites.len(),
            recording_bytes: set.total_cost(),
        });
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.bottleneck_elements.to_string(),
                r.bottleneck_bytes.to_string(),
                r.recording_sites.to_string(),
                r.recording_bytes.to_string(),
                format!(
                    "{:.1}x",
                    r.bottleneck_bytes as f64 / r.recording_bytes.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        "Recording-cost reduction by the DFS minimization",
        &[
            "Workload",
            "Bottleneck elems",
            "Bottleneck B",
            "Sites",
            "Recorded B",
            "Reduction",
        ],
        &rows,
    );
    write_json("ablation_recording_cost", &rows_out);
}
