//! Regenerates the **§5.4 invariant-based failure localization case study**.
//!
//! MIMIC mines likely invariants from four passing runs of the coreutils
//! `od` and `pr`, then localizes a failure by reporting violated
//! invariants. The paper's claim: feeding MIMIC the execution ER
//! reconstructs yields the *same* root-cause candidates as feeding it the
//! real failing input.

use er_bench::harness::{print_table, write_json};
use er_core::deploy::Deployment;
use er_core::reconstruct::{Outcome, Reconstructor};
use er_invariants::{observe, observe_with_sched, InvariantSet, MineOptions, Violation};
use er_minilang::env::Env;
use er_minilang::interp::RunOutcome;
use er_minilang::ir::Program;
use er_workloads::coreutils;
use serde::Serialize;

#[derive(Serialize)]
struct CaseResult {
    tool: String,
    invariants_mined: usize,
    direct_violations: Vec<String>,
    er_violations: Vec<String>,
    identical: bool,
    er_occurrences: u32,
}

/// Renders a violation as its root-cause identity (function, point,
/// invariant) — the witness values legitimately differ between the real
/// failing input and ER's reconstructed one.
fn violations_to_strings(vs: &[Violation]) -> Vec<String> {
    let mut out: Vec<String> = vs
        .iter()
        .map(|v| format!("{} @ {:?}: {}", v.func_name, v.point, v.invariant))
        .collect();
    out.sort();
    out.dedup();
    out
}

fn clone_env(env: &Env) -> Env {
    let mut out = Env::new();
    for s in env.sources() {
        out.push_input(s, env.stream_data(s).unwrap_or(&[]));
    }
    out
}

fn run_case(tool: &str, program: Program, passing: Vec<Env>, failing: Env) -> CaseResult {
    // Mine likely invariants from the passing runs (the paper uses 4).
    let passing_obs: Vec<_> = passing
        .into_iter()
        .map(|env| {
            let (outcome, obs) = observe(&program, env);
            assert!(matches!(outcome, RunOutcome::Completed));
            obs
        })
        .collect();
    // Range invariants over 4 samples are low-confidence (Daikon would
    // suppress them); disable them for the root-cause comparison.
    let invariants = InvariantSet::mine_with_options(
        &program,
        &passing_obs,
        MineOptions {
            include_ranges: false,
        },
    );

    // Direct localization from the real failing input.
    let (outcome, failing_obs) = observe(&program, clone_env(&failing));
    assert!(
        matches!(outcome, RunOutcome::Failure(_)),
        "{tool} must fail"
    );
    let direct = violations_to_strings(&invariants.violations(&failing_obs));

    // ER reconstruction: the deployment replays the failing request.
    let deployment = Deployment::new(program.clone(), move |_| clone_env(&failing));
    let report = Reconstructor::default().reconstruct(&deployment);
    let Outcome::Reproduced(test_case) = &report.outcome else {
        panic!(
            "{tool}: ER must reproduce the failure: {:?}",
            report.outcome
        );
    };
    let (outcome, er_obs) = observe_with_sched(&program, test_case.env(), test_case.sched);
    assert!(
        matches!(outcome, RunOutcome::Failure(_)),
        "{tool}: reconstructed input must fail"
    );
    let er = violations_to_strings(&invariants.violations(&er_obs));

    CaseResult {
        tool: tool.to_string(),
        invariants_mined: invariants.len(),
        identical: direct == er,
        direct_violations: direct,
        er_violations: er,
        er_occurrences: report.occurrences,
    }
}

fn main() {
    println!("# §5.4 case study: MIMIC-style invariant localization via ER");
    let od = run_case(
        "od",
        coreutils::od_program(),
        coreutils::od_passing_envs(),
        coreutils::od_failing_env(),
    );
    let pr = run_case(
        "pr",
        coreutils::pr_program(),
        coreutils::pr_passing_envs(),
        coreutils::pr_failing_env(),
    );

    for case in [&od, &pr] {
        let rows: Vec<Vec<String>> = case
            .direct_violations
            .iter()
            .map(|v| {
                vec![
                    v.clone(),
                    if case.er_violations.contains(v) {
                        "yes"
                    } else {
                        "NO"
                    }
                    .into(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "{}: {} invariants mined, ER reproduced in {} occurrence(s)",
                case.tool, case.invariants_mined, case.er_occurrences
            ),
            &[
                "Violated invariant (root-cause candidate)",
                "Also found via ER",
            ],
            &rows,
        );
    }
    for case in [&od, &pr] {
        let extras: Vec<&String> = case
            .er_violations
            .iter()
            .filter(|v| !case.direct_violations.contains(v))
            .collect();
        if !extras.is_empty() {
            println!("{} extra candidates via ER only: {extras:?}", case.tool);
        }
    }
    println!(
        "od: identical verdicts = {} | pr: identical verdicts = {} (paper: Daikon \
         identifies the same potential root causes)",
        od.identical, pr.identical
    );
    assert!(
        od.identical && pr.identical,
        "case study must match the paper"
    );
    write_json("case_study_mimic", &[od, pr]);
}
