//! Regenerates the **§4 trace-mapping study**: the paper observes that only
//! 91.5 % of x86-64 control-flow events map back to LLVM IR, and works
//! around it by tracing inside KLEE. This ablation quantifies the design
//! pressure: shepherded symbolic execution's divergence-detection rate as a
//! function of how many branch events are missing from the trace.

use er_bench::harness::{print_table, write_json};
use er_core::instrument::InstrumentedProgram;
use er_core::shepherd;
use er_pt::sink::drop_branches;
use er_symex::ShepherdStatus;
use er_workloads::{by_name, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    drop_per_mille: u32,
    trials: u32,
    completed: u32,
    diverged: u32,
}

fn main() {
    println!("# §4 ablation: shepherding under lossy control-flow traces");
    let w = by_name("SQLite-7be932d").expect("registered");
    let deployment = w.deployment(Scale::TEST);
    let inst = InstrumentedProgram::unmodified(deployment.program());
    let occ = deployment
        .run_until_failure(&inst, None, 0, 50_000)
        .expect("fails");
    let full = occ.trace.decode().expect("decodes");

    let mut rows_out = Vec::new();
    for drop in [0u32, 10, 85, 200, 500] {
        let trials = 8u32;
        let mut completed = 0;
        let mut diverged = 0;
        for seed in 0..trials {
            let trace = drop_branches(&full, drop, u64::from(seed) + 1);
            let rep = shepherd::shepherd_events(
                &inst.program,
                &trace.events,
                Some(&occ.failure_instrumented),
                w.er_config().sym,
            );
            match rep.run.status {
                ShepherdStatus::Completed | ShepherdStatus::Stalled { .. } => completed += 1,
                ShepherdStatus::Diverged(_) => diverged += 1,
            }
        }
        er_telemetry::log!(info, "  drop {drop}/1000: follows {completed}/{trials}");
        rows_out.push(Row {
            drop_per_mille: drop,
            trials,
            completed,
            diverged,
        });
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}%", f64::from(r.drop_per_mille) / 10.0),
                format!("{}/{}", r.completed, r.trials),
                format!("{}/{}", r.diverged, r.trials),
            ]
        })
        .collect();
    print_table(
        "Shepherding vs missing branch events (SQLite-7be932d trace)",
        &[
            "Branch events dropped",
            "Trace followed",
            "Divergence detected",
        ],
        &rows,
    );
    println!(
        "A complete trace always follows; at the paper's 8.5% loss rate \
         shepherding reliably detects the gap instead of mis-replaying — \
         which is why the prototype traces inside KLEE (exact mapping) and \
         why this reproduction shares one IR between executors."
    );
    assert_eq!(rows_out[0].completed, rows_out[0].trials);
    write_json("ablation_lossy_trace", &rows_out);
}
