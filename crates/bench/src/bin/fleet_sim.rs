//! Fleet-scale reconstruction benchmark (PR 3).
//!
//! Runs the Table-1 workloads through `er-fleet` — M mirrored instances,
//! content-addressed trace store, fault-signature triage, and the
//! concurrent reconstruction scheduler — and compares every fleet
//! reconstruction against the serial `Reconstructor::reconstruct` path.
//!
//! * default: all 13 workloads, serial-vs-parallel fleet sweep, writes
//!   `results/BENCH_PR3.json` (ingestion throughput, compression ratio,
//!   dedup ratio, time-to-first-repro).
//! * `--smoke`: 3 workloads at fleet size 3; asserts ≥1 dedup hit and a
//!   bit-identical reproduction per workload, then exits (CI gate).

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_core::Reconstructor;
use er_fleet::sim::{Fleet, FleetConfig, FleetReport, FleetSpec, Traffic};
use er_workloads::{all, by_name, Scale, Workload};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

const FLEET_SIZE: usize = 3;
const SMOKE_WORKLOADS: &[&str] = &["Libpng-2004-0597", "PHP-74194", "Memcached-2019-11596"];

fn spec_for(w: &Workload) -> FleetSpec {
    let input = w.input_gen;
    FleetSpec {
        program: w.program(Scale::TEST),
        input_gen: Arc::new(input),
        sched_gen: w.sched_gen.map(|s| {
            let f: Arc<dyn Fn(u64) -> er_minilang::interp::SchedConfig + Send + Sync> = Arc::new(s);
            f
        }),
        pt: er_pt::PtConfig::default(),
        reoccurrence: w.reoccurrence_model(1_000),
        er: w.er_config(),
        label: w.name.to_string(),
    }
}

/// One (workload, pool mode) measurement.
#[derive(Serialize)]
struct FleetRow {
    workload: String,
    instances: usize,
    /// Worker pool forced single-threaded (the determinism baseline).
    serial_pool: bool,
    groups: usize,
    reproduced: bool,
    /// Fleet test case bit-identical to the serial reconstructor's.
    bit_identical: bool,
    occurrences: u64,
    runs_observed: u64,
    rounds: u64,
    packets_ingested: u64,
    /// Packets through ingestion per wall second.
    ingest_packets_per_sec: f64,
    compression_ratio: f64,
    dedup_hits: u64,
    /// Fraction of store puts resolved by content-address dedup.
    dedup_ratio: f64,
    backpressure: u64,
    truncated: u64,
    time_to_first_repro_ms: Option<f64>,
    wall_ms: f64,
}

fn measure(w: &Workload, serial_pool: bool, serial_inputs: &[(u32, Vec<u8>)]) -> FleetRow {
    let report: FleetReport = Fleet::new(
        spec_for(w),
        FleetConfig {
            instances: FLEET_SIZE,
            serial: serial_pool,
            traffic: Traffic::Mirrored,
            ..FleetConfig::default()
        },
    )
    .run();
    let secs = report.wall.as_secs_f64().max(1e-9);
    let fleet_inputs = report
        .groups
        .first()
        .and_then(|g| g.report.outcome.test_case())
        .map(|t| t.inputs.clone())
        .unwrap_or_default();
    FleetRow {
        workload: w.name.to_string(),
        instances: FLEET_SIZE,
        serial_pool,
        groups: report.groups.len(),
        reproduced: report.all_reproduced(),
        bit_identical: fleet_inputs == serial_inputs,
        occurrences: report.groups.iter().map(|g| g.occurrences_seen).sum(),
        runs_observed: report.runs_observed,
        rounds: report.rounds,
        packets_ingested: report.store.packets,
        ingest_packets_per_sec: report.store.packets as f64 / secs,
        compression_ratio: report.store.compression_ratio(),
        dedup_hits: report.store.dedup_hits,
        dedup_ratio: report.store.dedup_hits as f64 / report.store.puts.max(1) as f64,
        backpressure: report.ingest.backpressure,
        truncated: report.ingest.truncated,
        time_to_first_repro_ms: report.time_to_first_repro.map(|d| d.as_secs_f64() * 1e3),
        wall_ms: report.wall.as_secs_f64() * 1e3,
    }
}

/// The serial reference: one deployment, one reconstructor.
fn serial_inputs(w: &Workload) -> Vec<(u32, Vec<u8>)> {
    er_telemetry::set_context(&format!("{}/serial-reference", w.name));
    let report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
    er_telemetry::set_context("");
    assert!(
        report.reproduced(),
        "{}: serial path must reproduce",
        w.name
    );
    report.outcome.test_case().unwrap().inputs.clone()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workloads: Vec<Workload> = if smoke {
        SMOKE_WORKLOADS
            .iter()
            .map(|n| by_name(n).expect("smoke workload exists"))
            .collect()
    } else {
        all()
    };

    let mut rows: Vec<FleetRow> = Vec::new();
    for w in &workloads {
        let reference = serial_inputs(w);
        rows.push(measure(w, false, &reference));
        if !smoke {
            rows.push(measure(w, true, &reference));
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                if r.serial_pool { "serial" } else { "parallel" }.to_string(),
                r.groups.to_string(),
                if r.reproduced { "yes" } else { "NO" }.to_string(),
                if r.bit_identical { "yes" } else { "NO" }.to_string(),
                r.occurrences.to_string(),
                format!("{:.0}k", r.ingest_packets_per_sec / 1e3),
                format!("{:.2}x", r.compression_ratio),
                format!("{}/{:.0}%", r.dedup_hits, r.dedup_ratio * 100.0),
                r.time_to_first_repro_ms
                    .map(|ms| fmt_duration(Duration::from_secs_f64(ms / 1e3)))
                    .unwrap_or_else(|| "—".into()),
                fmt_duration(Duration::from_secs_f64(r.wall_ms / 1e3)),
            ]
        })
        .collect();
    print_table(
        &format!("Fleet reconstruction (M={FLEET_SIZE}, mirrored traffic)"),
        &[
            "Workload",
            "Pool",
            "Groups",
            "Repro",
            "Bit-ident",
            "Occurr",
            "Ingest pkt/s",
            "Compress",
            "Dedup",
            "First repro",
            "Wall",
        ],
        &table,
    );

    let failures: Vec<&FleetRow> = rows
        .iter()
        .filter(|r| !r.reproduced || !r.bit_identical || (smoke && r.dedup_hits == 0))
        .collect();
    for r in &failures {
        er_telemetry::log!(
            error,
            "{} ({} pool): reproduced={} bit_identical={} dedup_hits={}",
            r.workload,
            if r.serial_pool { "serial" } else { "parallel" },
            r.reproduced,
            r.bit_identical,
            r.dedup_hits
        );
    }

    if !smoke {
        write_json("BENCH_PR3", &rows);
    }
    println!(
        "{} fleet runs over {} workloads{}",
        rows.len(),
        workloads.len(),
        if smoke { " (smoke)" } else { "" }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
