//! Regenerates the **address-handling ablation** (DESIGN.md §6 item 4):
//! ER's engine keeps single-object symbolic-address accesses symbolic
//! (building `Read`/`Write` constraints) and only concretizes as a
//! fallback. The alternative — concretizing *every* symbolic address to its
//! model value, as naive concolic engines do — avoids array constraints
//! entirely but over-constrains the generated input and changes the
//! iteration dynamics.

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_core::deploy::Deployment;
use er_core::reconstruct::{ErConfig, Reconstructor};
use er_minilang::env::Env;
use er_symex::SymConfig;
use er_workloads::{all, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    symbolic_reproduced: bool,
    symbolic_occurrences: u32,
    symbolic_secs: f64,
    concretize_reproduced: bool,
    concretize_occurrences: u32,
    concretize_secs: f64,
}

fn main() {
    println!("# Ablation: symbolic single-object addressing vs always-concretize");
    let mut rows_out = Vec::new();
    for w in all().into_iter().filter(|w| w.expected_occurrences > 1) {
        let sym = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        let config = ErConfig {
            sym: SymConfig {
                always_concretize: true,
                ..w.er_config().sym
            },
            ..w.er_config()
        };
        let conc = Reconstructor::new(config).reconstruct(&w.deployment(Scale::TEST));
        er_telemetry::log!(
            info,
            "  {}: symbolic occ={} ({}) | concretize occ={} ({})",
            w.name,
            sym.occurrences,
            sym.reproduced(),
            conc.occurrences,
            conc.reproduced()
        );
        rows_out.push(Row {
            name: w.name.to_string(),
            symbolic_reproduced: sym.reproduced(),
            symbolic_occurrences: sym.occurrences,
            symbolic_secs: sym.total_symbex.as_secs_f64(),
            concretize_reproduced: conc.reproduced(),
            concretize_occurrences: conc.occurrences,
            concretize_secs: conc.total_symbex.as_secs_f64(),
        });
    }

    // The paper's own Fig. 3 example is where concretization breaks: the
    // crash requires V-aliasing (x == d), and pinning each symbolic address
    // to an arbitrary feasible model value contradicts the recorded branch
    // outcomes downstream.
    let fig3 = er_minilang::compile(
        r#"
        global V: [u32; 256];
        fn foo(a: u32, b: u32, c: u32, d: u32) {
            let x: u32 = a + b;
            if x < 256 && c < 256 && d < 256 {
                V[x] = 1;
                if V[c] == 0 { V[c] = 512; }
                V[V[x]] = x;
                if c < d { if V[V[d]] == x { abort("fig3"); } }
            }
        }
        fn main() {
            let a: u32 = input_u32(0);
            let b: u32 = input_u32(0);
            let c: u32 = input_u32(0);
            let d: u32 = input_u32(0);
            foo(a, b, c, d);
            print(0);
        }
        "#,
    )
    .expect("fig3 compiles");
    let fig3_gen = |run: u64| {
        let mut env = Env::new();
        let vals: [u32; 4] = if run % 5 == 4 {
            [0, 2, 0, 2]
        } else {
            [(run % 100) as u32, 2, 1, 57]
        };
        for v in vals {
            env.push_input(0, &v.to_le_bytes());
        }
        env
    };
    let fig3_config = |always_concretize: bool| ErConfig {
        sym: SymConfig {
            solver_budget: er_solver::solve::Budget {
                max_conflicts: 5_000,
                max_array_cells: 900,
                max_clauses: 400_000,
            },
            max_steps: 10_000_000,
            always_concretize,
            ..SymConfig::default()
        },
        final_budget: er_solver::solve::Budget {
            max_conflicts: 50_000,
            max_array_cells: 900,
            max_clauses: 400_000,
        },
        max_occurrences: 8,
        ..ErConfig::default()
    };
    let sym = Reconstructor::new(fig3_config(false))
        .reconstruct(&Deployment::new(fig3.clone(), fig3_gen));
    let conc =
        Reconstructor::new(fig3_config(true)).reconstruct(&Deployment::new(fig3.clone(), fig3_gen));
    er_telemetry::log!(
        info,
        "  Fig. 3: symbolic occ={} ({}) | concretize occ={} ({})",
        sym.occurrences,
        sym.reproduced(),
        conc.occurrences,
        conc.reproduced()
    );
    rows_out.push(Row {
        name: "Paper Fig. 3 (aliasing)".into(),
        symbolic_reproduced: sym.reproduced(),
        symbolic_occurrences: sym.occurrences,
        symbolic_secs: sym.total_symbex.as_secs_f64(),
        concretize_reproduced: conc.reproduced(),
        concretize_occurrences: conc.occurrences,
        concretize_secs: conc.total_symbex.as_secs_f64(),
    });

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!(
                    "{} occ, {}",
                    r.symbolic_occurrences,
                    fmt_duration(std::time::Duration::from_secs_f64(r.symbolic_secs))
                ),
                format!(
                    "{}{} occ, {}",
                    if r.concretize_reproduced {
                        ""
                    } else {
                        "FAILED after "
                    },
                    r.concretize_occurrences,
                    fmt_duration(std::time::Duration::from_secs_f64(r.concretize_secs))
                ),
            ]
        })
        .collect();
    print_table(
        "ER addressing (symbolic within one object) vs always-concretize",
        &["Workload", "ER (symbolic)", "Always-concretize"],
        &rows,
    );
    write_json("ablation_addr_concretize", &rows_out);
}
