//! Regenerates the **§4 solver-timeout trade-off**: the paper tunes a 30 s
//! solver timeout balancing per-iteration symbex time against the number of
//! failure reoccurrences needed. Our deterministic analogue sweeps the
//! solver budget and reports occurrences vs total symbolic-execution work.

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_core::reconstruct::{ErConfig, Reconstructor};
use er_solver::solve::Budget;
use er_symex::SymConfig;
use er_workloads::{by_name, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    budget_cells: u64,
    budget_conflicts: u64,
    reproduced: bool,
    occurrences: u32,
    symbex_seconds: f64,
}

fn main() {
    let w = by_name("PHP-2012-2386").expect("registered");
    println!("# §4 ablation: solver budget (timeout analogue) vs occurrences");

    let budgets: [(u64, u64); 5] = [
        (1_000, 5_000),
        (3_000, 20_000),
        (10_000, 50_000),
        (40_000, 200_000),
        (200_000, 1_000_000),
    ];
    let mut rows_out = Vec::new();
    for (cells, conflicts) in budgets {
        let budget = Budget {
            max_conflicts: conflicts,
            max_array_cells: cells,
            max_clauses: 4_000_000,
        };
        let config = ErConfig {
            sym: SymConfig {
                solver_budget: budget,
                max_steps: 500_000_000,
                always_concretize: false,
                ..SymConfig::default()
            },
            final_budget: budget,
            max_occurrences: 32,
            ..w.er_config()
        };
        let report = Reconstructor::new(config).reconstruct(&w.deployment(Scale::TEST));
        er_telemetry::log!(
            info,
            "  cells={cells} conflicts={conflicts}: occ={} {}",
            report.occurrences,
            fmt_duration(report.total_symbex)
        );
        rows_out.push(Row {
            budget_cells: cells,
            budget_conflicts: conflicts,
            reproduced: report.reproduced(),
            occurrences: report.occurrences,
            symbex_seconds: report.total_symbex.as_secs_f64(),
        });
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.budget_cells.to_string(),
                r.budget_conflicts.to_string(),
                if r.reproduced { "yes" } else { "no" }.into(),
                r.occurrences.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(r.symbex_seconds)),
            ]
        })
        .collect();
    print_table(
        "Budget sweep on PHP-2012-2386 (larger budget => fewer occurrences, more symbex work per iteration)",
        &["Cell budget", "Conflict budget", "Reproduced", "#Occur", "Symbex time"],
        &rows,
    );
    write_json("ablation_timeout", &rows_out);
}
