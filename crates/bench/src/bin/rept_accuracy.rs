//! Regenerates the **§2.2/§5.2 REPT accuracy comparison**: fraction of data
//! values REPT-style reverse recovery gets wrong or loses as the
//! reconstruction window grows, versus ER's exact reconstruction.
//!
//! Paper: REPT incorrectly recovers 15-60% of values for traces beyond
//! 100K instructions, while ER "accurately reconstructs all data values".

use er_baselines::rept::{ConcreteTape, ReptAnalysis};
use er_bench::harness::{print_table, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    window: usize,
    total: usize,
    correct_rate: f64,
    wrong_rate: f64,
    unknown_rate: f64,
}

fn main() {
    println!("# REPT recovery accuracy vs reconstruction window");
    // A representative latent-corruption program in the spirit of the
    // paper's MatrixSSL discussion: a working set that is repeatedly
    // overwritten (the table cycles every 64 entries) with a mix of
    // invertible arithmetic (recoverable backward from the crash state)
    // and lossy operations (the modulo breaks inversion), so recovery
    // quality is a genuine function of how far back the window reaches.
    let src = r#"
        global TBL: [u32; 64];
        fn main() {
            let n: u32 = input_u32(0);
            let acc: u32 = 0;
            for i: u32 = 0; i < n; i = i + 1 {
                let x: u32 = acc + i;
                let y: u32 = x ^ 2654435761;
                acc = y % 255;
                TBL[i % 64] = acc;
                let probe: u32 = TBL[(i * 7) % 64];
                let s: u32 = probe + 1;
                print(s);
            }
            assert(acc == 999999999, "latent corruption detected");
        }
    "#;
    let program = er_minilang::compile(src).expect("compiles");
    let mut env = er_minilang::env::Env::new();
    env.push_input(0, &40_000u32.to_le_bytes());
    let tape = ConcreteTape::record(&program, env, 2_000_000).expect("single-threaded");
    assert!(tape.faulted, "tape must end at the crash");
    println!(
        "tape length: {} value-defining instructions",
        tape.entries.len()
    );

    let rept = ReptAnalysis::default();
    let mut points = Vec::new();
    for window in [100usize, 1_000, 10_000, 50_000, 100_000, 500_000] {
        if window > tape.entries.len() * 2 {
            break;
        }
        let r = rept.analyze(&tape, window);
        er_telemetry::log!(
            info,
            "  window {window}: correct {:.1}% wrong {:.1}% unknown {:.1}%",
            r.correct_rate() * 100.0,
            100.0 * r.wrong as f64 / r.total.max(1) as f64,
            100.0 * r.unknown as f64 / r.total.max(1) as f64
        );
        points.push(Point {
            window,
            total: r.total,
            correct_rate: r.correct_rate(),
            wrong_rate: r.wrong as f64 / r.total.max(1) as f64,
            unknown_rate: r.unknown as f64 / r.total.max(1) as f64,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.window.to_string(),
                p.total.to_string(),
                format!("{:.1}%", p.correct_rate * 100.0),
                format!("{:.1}%", p.wrong_rate * 100.0),
                format!("{:.1}%", p.unknown_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        "REPT-style recovery vs window (ER recovers 100% by construction)",
        &["Window (defs)", "Graded", "Correct", "Wrong", "Unknown"],
        &rows,
    );
    let last = points.last().expect("at least one window");
    println!(
        "Largest window degradation: {:.1}% (paper: 15-60% beyond 100K instructions)",
        (1.0 - last.correct_rate) * 100.0
    );
    write_json("rept_accuracy", &points);
}
