//! Replays the telemetry journal into a per-phase time/effort table
//! (the §5.3 offline-overhead breakdown).
//!
//! Run a bench binary with `ER_TELEMETRY=full` first, e.g.
//! `ER_TELEMETRY=full cargo run -p er-bench --bin table1 -- --test`,
//! then `cargo run -p er-bench --bin obs_report`. Reads every
//! `er-journal-*.jsonl` under `ER_TELEMETRY_DIR` (default `telemetry/`).
//!
//! Usage: `obs_report [journal-dir-or-file]`

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_telemetry::Event;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// Pipeline phases in reporting order, with the span that accounts for
/// each. These mirror the per-iteration spans opened by
/// `er-core::reconstruct` and `er-core::shepherd`.
const PHASES: &[(&str, &str)] = &[
    ("decode", "shepherd.decode"),
    ("symbex", "shepherd.symbex"),
    ("solve", "shepherd.solve"),
    ("select", "phase.select"),
    ("instrument", "phase.instrument"),
    ("deploy", "phase.deploy"),
];

/// Effort counters summarized alongside the time breakdown.
const EFFORT: &[&str] = &[
    "symex.steps",
    "sat.conflicts",
    "sat.propagations",
    "pt.packets_encoded",
    "ring.overwrites",
    "select.graph_nodes",
];

/// Fleet counters rendered in the per-fleet-run table, in column order.
/// All `fleet.*` counters are bumped on the simulator's driver thread,
/// so the enclosing `fleet.run` span's counter delta accounts for each
/// exactly once per fleet run.
const FLEET: &[(&str, &str)] = &[
    ("Inst", "fleet.instances"),
    ("Rounds", "fleet.rounds"),
    ("Occurr", "fleet.occurrences"),
    ("Ingested", "fleet.ingest.accepted"),
    ("Backpr", "fleet.ingest.backpressure"),
    ("Puts", "fleet.store.puts"),
    ("Dedup", "fleet.store.dedup_hits"),
    ("Evict", "fleet.store.evictions"),
    ("Groups", "fleet.triage.groups"),
    ("Consumed", "fleet.sched.consumed"),
    ("Stale", "fleet.sched.stale_dropped"),
    ("Rollouts", "fleet.sched.rollouts"),
];

#[derive(Default, Serialize)]
struct WorkloadReport {
    name: String,
    iterations: u64,
    phase_ns: BTreeMap<String, u64>,
    effort: BTreeMap<String, u64>,
}

#[derive(Default, Serialize)]
struct FleetRunReport {
    name: String,
    runs: u64,
    wall_ns: u64,
    counters: BTreeMap<String, u64>,
}

fn main() {
    let arg = std::env::args().nth(1);
    let source = arg.map(PathBuf::from).unwrap_or_else(|| {
        PathBuf::from(std::env::var("ER_TELEMETRY_DIR").unwrap_or_else(|_| "telemetry".into()))
    });

    let events: Vec<Event> = if source.is_file() {
        er_telemetry::read_journal(&source)
    } else {
        er_telemetry::journal::read_journal_dir(&source)
    }
    .unwrap_or_else(|e| {
        er_telemetry::log!(error, "{e}");
        er_telemetry::log!(
            error,
            "hint: generate a journal with `ER_TELEMETRY=full cargo run -p er-bench --bin table1 -- --test`"
        );
        std::process::exit(1);
    });

    if events.is_empty() {
        er_telemetry::log!(error, "no span events found under {source:?}");
        std::process::exit(1);
    }

    // Group span durations by (workload ctx, phase) and sum effort
    // counters attributed to each workload's spans.
    let mut by_workload: BTreeMap<String, WorkloadReport> = BTreeMap::new();
    for ev in &events {
        if ev.kind != "span" {
            continue;
        }
        let ctx = if ev.ctx.is_empty() {
            "(untagged)".to_string()
        } else {
            ev.ctx.clone()
        };
        let rep = by_workload
            .entry(ctx.clone())
            .or_insert_with(|| WorkloadReport {
                name: ctx,
                ..WorkloadReport::default()
            });
        if let Some((label, _)) = PHASES.iter().find(|(_, span)| *span == ev.name) {
            *rep.phase_ns.entry((*label).to_string()).or_default() += ev.dur_ns;
        }
        // A span's counter deltas include those of its children, so sum
        // effort only over the sibling per-iteration spans — each unit of
        // work is counted exactly once.
        if ev.name == "reconstruct.iteration" {
            rep.iterations += 1;
            for (cname, v) in &ev.counters {
                if EFFORT.contains(&cname.as_str()) {
                    *rep.effort.entry(cname.clone()).or_default() += v;
                }
            }
        }
    }

    let reports: Vec<&WorkloadReport> = by_workload.values().collect();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let total: u64 = r.phase_ns.values().sum();
            let mut row = vec![r.name.clone(), r.iterations.to_string()];
            for (label, _) in PHASES {
                let ns = r.phase_ns.get(*label).copied().unwrap_or(0);
                row.push(fmt_duration(Duration::from_nanos(ns)));
            }
            row.push(fmt_duration(Duration::from_nanos(total)));
            row
        })
        .collect();

    print_table(
        "Per-phase reconstruction time (from telemetry journal)",
        &[
            "Workload",
            "Iters",
            "Decode",
            "Symbex",
            "Solve",
            "Select",
            "Instrument",
            "Deploy",
            "Total",
        ],
        &rows,
    );

    let effort_rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            for c in EFFORT {
                row.push(r.effort.get(*c).copied().unwrap_or(0).to_string());
            }
            row
        })
        .collect();
    print_table(
        "Per-workload effort counters",
        &[
            "Workload",
            "Symex Steps",
            "SAT Conflicts",
            "SAT Props",
            "PT Packets",
            "Ring Overwrites",
            "Graph Nodes",
        ],
        &effort_rows,
    );

    // Fleet-simulation runs: one `fleet.run` span per `er_fleet::Fleet::run`,
    // tagged with the workload/fleet label; its counter deltas carry every
    // `fleet.*` counter of that run.
    let mut fleet_runs: BTreeMap<String, FleetRunReport> = BTreeMap::new();
    for ev in &events {
        if ev.kind != "span" || ev.name != "fleet.run" {
            continue;
        }
        let ctx = if ev.ctx.is_empty() {
            "(untagged)".to_string()
        } else {
            ev.ctx.clone()
        };
        let rep = fleet_runs
            .entry(ctx.clone())
            .or_insert_with(|| FleetRunReport {
                name: ctx,
                ..FleetRunReport::default()
            });
        rep.runs += 1;
        rep.wall_ns += ev.dur_ns;
        for (cname, v) in &ev.counters {
            if cname.starts_with("fleet.") {
                *rep.counters.entry(cname.clone()).or_default() += v;
            }
        }
    }
    let fleet_reports: Vec<&FleetRunReport> = fleet_runs.values().collect();
    if !fleet_reports.is_empty() {
        let fleet_rows: Vec<Vec<String>> = fleet_reports
            .iter()
            .map(|r| {
                let mut row = vec![r.name.clone()];
                for (_, c) in FLEET {
                    row.push(r.counters.get(*c).copied().unwrap_or(0).to_string());
                }
                row.push(fmt_duration(Duration::from_nanos(r.wall_ns)));
                row
            })
            .collect();
        let mut header = vec!["Fleet"];
        header.extend(FLEET.iter().map(|(label, _)| *label));
        header.push("Wall");
        print_table(
            "Fleet simulation counters (per fleet.run span)",
            &header,
            &fleet_rows,
        );
    }

    // Chaos fault-injection counters (`chaos.*`) and durability/watchdog
    // counters (`durable.*`, `watchdog.*`), summed over the top-level
    // driver spans — `reconstruct` for the serial path, `fleet.run` for
    // fleet runs, `durable.recover` for WAL replay (opened by
    // `Scheduler::recover` *before* the resumed `fleet.run` starts) — so
    // each delta is counted exactly once (those spans never nest;
    // everything else is a child of one of them).
    let mut chaos: BTreeMap<String, u64> = BTreeMap::new();
    let mut robustness: BTreeMap<String, u64> = BTreeMap::new();
    for ev in &events {
        if ev.kind != "span"
            || (ev.name != "reconstruct" && ev.name != "fleet.run" && ev.name != "durable.recover")
        {
            continue;
        }
        for (cname, v) in &ev.counters {
            if cname.starts_with("chaos.") {
                *chaos.entry(cname.clone()).or_default() += v;
            }
            if cname.starts_with("durable.") || cname.starts_with("watchdog.") {
                *robustness.entry(cname.clone()).or_default() += v;
            }
        }
    }
    if !chaos.is_empty() {
        let chaos_rows: Vec<Vec<String>> = chaos
            .iter()
            .map(|(c, v)| vec![c.clone(), v.to_string()])
            .collect();
        print_table(
            "Chaos fault-injection counters (injected vs. handled)",
            &["Counter", "Count"],
            &chaos_rows,
        );
    }
    if !robustness.is_empty() {
        let robust_rows: Vec<Vec<String>> = robustness
            .iter()
            .map(|(c, v)| vec![c.clone(), v.to_string()])
            .collect();
        print_table(
            "Durability & watchdog counters (WAL, recovery, supervision)",
            &["Counter", "Count"],
            &robust_rows,
        );
    }

    println!(
        "{} workloads, {} fleet runs, {} span events",
        reports.len(),
        fleet_reports.len(),
        events.iter().filter(|e| e.kind == "span").count()
    );
    #[derive(Serialize)]
    struct ObsReport {
        workloads: Vec<WorkloadReport>,
        fleet: Vec<FleetRunReport>,
        chaos: BTreeMap<String, u64>,
        robustness: BTreeMap<String, u64>,
    }
    drop((reports, fleet_reports));
    write_json(
        "obs_report",
        &ObsReport {
            workloads: by_workload.into_values().collect(),
            fleet: fleet_runs.into_values().collect(),
            chaos,
            robustness,
        },
    );
}
