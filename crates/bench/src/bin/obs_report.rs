//! Replays the telemetry journal into a per-phase time/effort table
//! (the §5.3 offline-overhead breakdown).
//!
//! Run a bench binary with `ER_TELEMETRY=full` first, e.g.
//! `ER_TELEMETRY=full cargo run -p er-bench --bin table1 -- --test`,
//! then `cargo run -p er-bench --bin obs_report`. Reads every
//! `er-journal-*.jsonl` under `ER_TELEMETRY_DIR` (default `telemetry/`).
//!
//! Usage: `obs_report [journal-dir-or-file]`

use er_bench::harness::{fmt_duration, print_table, write_json};
use er_telemetry::Event;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// Pipeline phases in reporting order, with the span that accounts for
/// each. These mirror the per-iteration spans opened by
/// `er-core::reconstruct` and `er-core::shepherd`.
const PHASES: &[(&str, &str)] = &[
    ("decode", "shepherd.decode"),
    ("symbex", "shepherd.symbex"),
    ("solve", "shepherd.solve"),
    ("select", "phase.select"),
    ("instrument", "phase.instrument"),
    ("deploy", "phase.deploy"),
];

/// Effort counters summarized alongside the time breakdown.
const EFFORT: &[&str] = &[
    "symex.steps",
    "sat.conflicts",
    "sat.propagations",
    "pt.packets_encoded",
    "ring.overwrites",
    "select.graph_nodes",
];

#[derive(Default, Serialize)]
struct WorkloadReport {
    name: String,
    iterations: u64,
    phase_ns: BTreeMap<String, u64>,
    effort: BTreeMap<String, u64>,
}

fn main() {
    let arg = std::env::args().nth(1);
    let source = arg.map(PathBuf::from).unwrap_or_else(|| {
        PathBuf::from(std::env::var("ER_TELEMETRY_DIR").unwrap_or_else(|_| "telemetry".into()))
    });

    let events: Vec<Event> = if source.is_file() {
        er_telemetry::read_journal(&source)
    } else {
        er_telemetry::journal::read_journal_dir(&source)
    }
    .unwrap_or_else(|e| {
        er_telemetry::log!(error, "{e}");
        er_telemetry::log!(
            error,
            "hint: generate a journal with `ER_TELEMETRY=full cargo run -p er-bench --bin table1 -- --test`"
        );
        std::process::exit(1);
    });

    if events.is_empty() {
        er_telemetry::log!(error, "no span events found under {source:?}");
        std::process::exit(1);
    }

    // Group span durations by (workload ctx, phase) and sum effort
    // counters attributed to each workload's spans.
    let mut by_workload: BTreeMap<String, WorkloadReport> = BTreeMap::new();
    for ev in &events {
        if ev.kind != "span" {
            continue;
        }
        let ctx = if ev.ctx.is_empty() {
            "(untagged)".to_string()
        } else {
            ev.ctx.clone()
        };
        let rep = by_workload
            .entry(ctx.clone())
            .or_insert_with(|| WorkloadReport {
                name: ctx,
                ..WorkloadReport::default()
            });
        if let Some((label, _)) = PHASES.iter().find(|(_, span)| *span == ev.name) {
            *rep.phase_ns.entry((*label).to_string()).or_default() += ev.dur_ns;
        }
        // A span's counter deltas include those of its children, so sum
        // effort only over the sibling per-iteration spans — each unit of
        // work is counted exactly once.
        if ev.name == "reconstruct.iteration" {
            rep.iterations += 1;
            for (cname, v) in &ev.counters {
                if EFFORT.contains(&cname.as_str()) {
                    *rep.effort.entry(cname.clone()).or_default() += v;
                }
            }
        }
    }

    let reports: Vec<&WorkloadReport> = by_workload.values().collect();
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let total: u64 = r.phase_ns.values().sum();
            let mut row = vec![r.name.clone(), r.iterations.to_string()];
            for (label, _) in PHASES {
                let ns = r.phase_ns.get(*label).copied().unwrap_or(0);
                row.push(fmt_duration(Duration::from_nanos(ns)));
            }
            row.push(fmt_duration(Duration::from_nanos(total)));
            row
        })
        .collect();

    print_table(
        "Per-phase reconstruction time (from telemetry journal)",
        &[
            "Workload",
            "Iters",
            "Decode",
            "Symbex",
            "Solve",
            "Select",
            "Instrument",
            "Deploy",
            "Total",
        ],
        &rows,
    );

    let effort_rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let mut row = vec![r.name.clone()];
            for c in EFFORT {
                row.push(r.effort.get(*c).copied().unwrap_or(0).to_string());
            }
            row
        })
        .collect();
    print_table(
        "Per-workload effort counters",
        &[
            "Workload",
            "Symex Steps",
            "SAT Conflicts",
            "SAT Props",
            "PT Packets",
            "Ring Overwrites",
            "Graph Nodes",
        ],
        &effort_rows,
    );

    println!(
        "{} workloads, {} span events",
        reports.len(),
        events.iter().filter(|e| e.kind == "span").count()
    );
    write_json("obs_report", &reports);
}
