//! Regenerates **Fig. 6**: runtime recording overhead of ER's PT-style
//! tracing vs an rr-style record/replay engine, per application.
//!
//! Each workload's performance benchmark runs `reps` times under three
//! monitors — none (baseline), ER (PT sink), rr (full recorder) — and the
//! table reports mean normalized overhead with standard error, as in the
//! paper (which measured ER at 0.3% average / 1.1% max and rr at 48.0%
//! average / 142.2% max).
//!
//! Usage: `fig6 [--test] [--reps N]`

use er_baselines::rr::RrRecorder;
use er_bench::harness::{overhead_pct, print_table, stats, time_reps, write_json, Stats};
use er_minilang::interp::Machine;
use er_pt::sink::{PtConfig, PtSink};
use er_workloads::{all, Scale, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    baseline_secs: Stats,
    er_overhead_pct: Stats,
    rr_overhead_pct: Stats,
    er_trace_bytes: u64,
    rr_trace_bytes: u64,
}

fn bench_workload(w: &Workload, scale: Scale, reps: usize) -> Row {
    let program = w.program(scale);
    let sched = w
        .sched_gen
        .map(|s| s(0))
        .unwrap_or(er_minilang::interp::SchedConfig {
            quantum: 1_000,
            seed: 1,
            max_instrs: 500_000_000,
        });

    // Warm up every configuration (page in code paths, size buffers).
    let _ = Machine::new(&program, (w.perf_gen)(0))
        .with_sched(sched)
        .run();
    let _ = Machine::with_sink(&program, (w.perf_gen)(0), PtSink::new(PtConfig::default()))
        .with_sched(sched)
        .run();
    let _ = Machine::with_sink(&program, (w.perf_gen)(0), RrRecorder::new(sched))
        .with_sched(sched)
        .run();

    // Paired measurement: each rep times all three configurations
    // back-to-back so machine-load drift cancels in the ratios.
    let mut base = Vec::with_capacity(reps);
    let mut er_pcts = Vec::with_capacity(reps);
    let mut rr_pcts = Vec::with_capacity(reps);
    let mut er_bytes = 0u64;
    let mut rr_bytes = 0u64;
    for _ in 0..reps {
        let t_base = time_reps(1, || {
            let r = Machine::new(&program, (w.perf_gen)(1))
                .with_sched(sched)
                .run();
            assert!(matches!(
                r.outcome,
                er_minilang::interp::RunOutcome::Completed
            ));
        })[0];
        let t_er = time_reps(1, || {
            let r = Machine::with_sink(&program, (w.perf_gen)(1), PtSink::new(PtConfig::default()))
                .with_sched(sched)
                .run();
            er_bytes = r.sink.stats().bytes;
        })[0];
        let t_rr = time_reps(1, || {
            let r = Machine::with_sink(&program, (w.perf_gen)(1), RrRecorder::new(sched))
                .with_sched(sched)
                .run();
            rr_bytes = r.sink.finish().trace_bytes;
        })[0];
        base.push(t_base);
        er_pcts.push(overhead_pct(t_base, t_er));
        rr_pcts.push(overhead_pct(t_base, t_rr));
    }
    Row {
        name: w.name.to_string(),
        baseline_secs: stats(&base),
        er_overhead_pct: stats(&er_pcts),
        rr_overhead_pct: stats(&rr_pcts),
        er_trace_bytes: er_bytes,
        rr_trace_bytes: rr_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test");
    let scale = if test_scale { Scale::TEST } else { Scale::FULL };
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("# Fig. 6: online recording overhead ({reps} reps)");

    let mut rows_out = Vec::new();
    for w in all() {
        let row = bench_workload(&w, scale, reps);
        er_telemetry::log!(
            info,
            "  {}: ER {:+.2}% rr {:+.2}%",
            row.name,
            row.er_overhead_pct.mean,
            row.rr_overhead_pct.mean
        );
        rows_out.push(row);
    }

    let rows: Vec<Vec<String>> = rows_out
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1} ms", r.baseline_secs.mean * 1000.0),
                format!(
                    "{:+.2}% ± {:.2}",
                    r.er_overhead_pct.mean, r.er_overhead_pct.stderr
                ),
                format!(
                    "{:+.2}% ± {:.2}",
                    r.rr_overhead_pct.mean, r.rr_overhead_pct.stderr
                ),
                r.er_trace_bytes.to_string(),
                r.rr_trace_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 6: normalized recording overhead",
        &[
            "Application",
            "Baseline",
            "ER overhead",
            "rr overhead",
            "ER trace B",
            "rr trace B",
        ],
        &rows,
    );

    let er_avg =
        rows_out.iter().map(|r| r.er_overhead_pct.mean).sum::<f64>() / rows_out.len() as f64;
    let er_max = rows_out
        .iter()
        .map(|r| r.er_overhead_pct.mean)
        .fold(f64::MIN, f64::max);
    let rr_avg =
        rows_out.iter().map(|r| r.rr_overhead_pct.mean).sum::<f64>() / rows_out.len() as f64;
    let rr_max = rows_out
        .iter()
        .map(|r| r.rr_overhead_pct.mean)
        .fold(f64::MIN, f64::max);
    println!("ER: avg {er_avg:.2}% max {er_max:.2}%  (paper: avg 0.3%, max 1.1%)");
    println!("rr: avg {rr_avg:.2}% max {rr_max:.2}%  (paper: avg 48.0%, max 142.2%)");
    write_json("fig6", &rows_out);
}
