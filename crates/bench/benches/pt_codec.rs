//! Criterion micro-benchmarks for the PT packet codec: the per-branch cost
//! that makes always-on tracing production-viable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use er_minilang::trace::TraceSink;
use er_pt::sink::{PtConfig, PtSink};

fn bench_branch_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pt/branches");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("encode_100k_branches", |b| {
        b.iter(|| {
            let mut sink = PtSink::new(PtConfig::default());
            for i in 0..100_000u32 {
                sink.cond_branch(i % 3 == 0);
            }
            sink.finish()
        });
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut sink = PtSink::new(PtConfig::default());
    for i in 0..100_000u32 {
        sink.cond_branch(i % 3 == 0);
        if i % 1000 == 0 {
            sink.ptwrite(u64::from(i));
        }
    }
    let trace = sink.finish();
    let mut group = c.benchmark_group("pt/decode");
    group.throughput(Throughput::Bytes(trace.bytes.len() as u64));
    group.bench_function("decode_100k_branch_trace", |b| {
        b.iter(|| trace.decode().unwrap());
    });
    group.finish();
}

fn bench_resync(c: &mut Criterion) {
    let mut group = c.benchmark_group("pt/resync");
    for kb in [64usize, 128, 256] {
        let n = kb << 10;
        // Adversarial wrapped buffer: every byte is a PSB candidate and the
        // last byte is damaged. Full-decode validation re-decoded the whole
        // suffix per candidate — O(n²) — and then rejected every sync point
        // anyway; bounded-lookahead validation accepts the first candidate
        // in O(RESYNC_LOOKAHEAD), so time stays flat as the buffer grows.
        let mut bytes = vec![0xA0u8; n - 1];
        bytes.push(0xFF);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_function(&format!("corrupt_tail_{kb}kb"), |b| {
            b.iter(|| er_pt::codec::resync(&bytes, 0));
        });
        // No sync point at all: the scan itself must stay linear.
        let noise = vec![0x00u8; n];
        group.bench_function(&format!("no_sync_point_{kb}kb"), |b| {
            b.iter(|| er_pt::codec::resync(&noise, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_branch_tracing, bench_decode, bench_resync);
criterion_main!(benches);
