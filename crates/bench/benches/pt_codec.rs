//! Criterion micro-benchmarks for the PT packet codec: the per-branch cost
//! that makes always-on tracing production-viable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use er_minilang::trace::TraceSink;
use er_pt::sink::{PtConfig, PtSink};

fn bench_branch_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pt/branches");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("encode_100k_branches", |b| {
        b.iter(|| {
            let mut sink = PtSink::new(PtConfig::default());
            for i in 0..100_000u32 {
                sink.cond_branch(i % 3 == 0);
            }
            sink.finish()
        });
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut sink = PtSink::new(PtConfig::default());
    for i in 0..100_000u32 {
        sink.cond_branch(i % 3 == 0);
        if i % 1000 == 0 {
            sink.ptwrite(u64::from(i));
        }
    }
    let trace = sink.finish();
    let mut group = c.benchmark_group("pt/decode");
    group.throughput(Throughput::Bytes(trace.bytes.len() as u64));
    group.bench_function("decode_100k_branch_trace", |b| {
        b.iter(|| trace.decode().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_branch_tracing, bench_decode);
criterion_main!(benches);
