//! Criterion micro-benchmarks for the constraint solver: the costs behind
//! ER's stall model (bitvector solving, array-chain elimination).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_solver::expr::{BvOp, CmpKind, ExprPool};
use er_solver::solve::{Budget, SatResult, Solver};

fn bench_linear_bv(c: &mut Criterion) {
    c.bench_function("solver/linear_equation_32bit", |b| {
        b.iter(|| {
            let mut pool = ExprPool::new();
            let x = pool.var("x", 32);
            let three = pool.bv_const(3, 32);
            let five = pool.bv_const(5, 32);
            let target = pool.bv_const(3 * 1234 + 5, 32);
            let t = pool.bin(BvOp::Mul, x, three);
            let t = pool.bin(BvOp::Add, t, five);
            let eq = pool.cmp(CmpKind::Eq, t, target);
            let mut s = Solver::new(&mut pool);
            s.assert(eq);
            assert!(matches!(s.check(&Budget::default()), SatResult::Sat(_)));
        });
    });
}

fn bench_mul_inversion(c: &mut Criterion) {
    c.bench_function("solver/factor_16bit_product", |b| {
        b.iter(|| {
            let mut pool = ExprPool::new();
            let x = pool.var("x", 16);
            let y = pool.var("y", 16);
            let m = pool.bin(BvOp::Mul, x, y);
            let target = pool.bv_const(143, 16);
            let eq = pool.cmp(CmpKind::Eq, m, target);
            let two = pool.bv_const(2, 16);
            let gx = pool.cmp(CmpKind::Ule, two, x);
            let gy = pool.cmp(CmpKind::Ule, two, y);
            let mut s = Solver::new(&mut pool);
            s.assert(eq);
            s.assert(gx);
            s.assert(gy);
            assert!(matches!(s.check(&Budget::default()), SatResult::Sat(_)));
        });
    });
}

/// The paper's §3.3.1 complexity sources: solving cost vs write-chain
/// length over a fixed-size object.
fn bench_write_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/write_chain");
    for &chain in &[2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(chain), &chain, |b, &chain| {
            b.iter(|| {
                let mut pool = ExprPool::new();
                let mut arr = pool.array("V", 256, 8, None);
                for i in 0..chain {
                    let idx = pool.var(format!("i{i}"), 64);
                    let val = pool.bv_const(i as u64, 8);
                    arr = pool.write(arr, idx, val);
                }
                let j = pool.var("j", 64);
                let r = pool.read(arr, j);
                let zero = pool.bv_const(0, 8);
                let eq = pool.cmp(CmpKind::Eq, r, zero);
                let mut s = Solver::new(&mut pool);
                s.assert(eq);
                let _ = s.check(&Budget::default());
            });
        });
    }
    group.finish();
}

/// Object size is the second complexity source.
fn bench_object_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/object_size");
    for &len in &[64u64, 512, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                let mut pool = ExprPool::new();
                let arr = pool.array("V", len, 8, None);
                let i = pool.var("i", 64);
                let r = pool.read(arr, i);
                let v = pool.bv_const(0, 8);
                let eq = pool.cmp(CmpKind::Eq, r, v);
                let mut s = Solver::new(&mut pool);
                s.assert(eq);
                let _ = s.check(&Budget::default());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linear_bv,
    bench_mul_inversion,
    bench_write_chains,
    bench_object_size
);
criterion_main!(benches);
