//! Criterion micro-benchmarks for the PR-2 incremental solver: repeated
//! `check_assuming` against a shared growing constraint prefix — the exact
//! query pattern shepherded symbolic execution issues at every symbolic
//! memory access — on one persistent engine vs a fresh solve per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_solver::expr::{BvOp, CmpKind, ExprPool, ExprRef};
use er_solver::inc::IncrementalSolver;
use er_solver::solve::Budget;

/// A shepherding-shaped workload: a write chain over a medium array plus a
/// stack of bitvector path constraints, probed with per-access assumptions.
fn build(pool: &mut ExprPool, prefix_len: usize) -> (Vec<ExprRef>, Vec<ExprRef>) {
    let mut arr = pool.array("V", 256, 8, None);
    for i in 0..8u64 {
        let idx = pool.var(format!("w{i}"), 64);
        let val = pool.bv_const(i, 8);
        arr = pool.write(arr, idx, val);
    }
    let j = pool.var("j", 64);
    let r = pool.read(arr, j);
    let zero = pool.bv_const(0, 8);
    let mut prefix = vec![pool.cmp(CmpKind::Eq, r, zero)];
    let x = pool.var("x", 32);
    let y = pool.var("y", 32);
    for i in 0..prefix_len as u64 {
        let k = pool.bv_const(i.wrapping_mul(2654435761) & 0xffff, 32);
        let t = pool.bin(BvOp::Add, x, k);
        prefix.push(pool.cmp(CmpKind::Ule, t, y));
    }
    let probes = (0..16u64)
        .map(|i| {
            let k = pool.bv_const(i * 3 + 1, 64);
            pool.cmp(CmpKind::Ult, j, k)
        })
        .collect();
    (prefix, probes)
}

fn bench_repeated_check_assuming(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/repeated_check_assuming");
    for &prefix_len in &[4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("shared", prefix_len),
            &prefix_len,
            |b, &n| {
                b.iter(|| {
                    let mut pool = ExprPool::new();
                    let (prefix, probes) = build(&mut pool, n);
                    let mut inc = IncrementalSolver::new();
                    for &p in &probes {
                        let _ = inc.check_assuming(&mut pool, &prefix, &[p], &Budget::default());
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fresh", prefix_len),
            &prefix_len,
            |b, &n| {
                b.iter(|| {
                    let mut pool = ExprPool::new();
                    let (prefix, probes) = build(&mut pool, n);
                    for &p in &probes {
                        let mut fresh = IncrementalSolver::new();
                        let _ = fresh.check_assuming(&mut pool, &prefix, &[p], &Budget::default());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repeated_check_assuming);
criterion_main!(benches);
