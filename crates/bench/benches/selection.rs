//! Criterion micro-benchmarks for constraint-graph analysis and key data
//! value selection (the paper reports <= 15 s on 40K-node graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::graph::ConstraintGraph;
use er_core::select::{self, SelectionInput};
use er_minilang::ir::{BlockId, FuncId, InstrId};
use er_solver::expr::{BvOp, ExprPool, ExprRef};
use std::collections::HashMap;

fn build_pool(stages: usize) -> (ExprPool, HashMap<ExprRef, InstrId>, HashMap<InstrId, u64>) {
    let mut pool = ExprPool::new();
    let mut origins = HashMap::new();
    let mut counts = HashMap::new();
    let mut site = 0usize;
    let mut next_site = |origins: &mut HashMap<ExprRef, InstrId>,
                         counts: &mut HashMap<InstrId, u64>,
                         e: ExprRef| {
        let id = InstrId {
            func: FuncId(0),
            block: BlockId(0),
            index: site,
        };
        origins.insert(e, id);
        counts.insert(id, 1);
        site += 1;
    };
    for s in 0..stages {
        let mut arr = pool.array(format!("T{s}"), 2048, 8, None);
        let k = pool.var(format!("k{s}"), 64);
        next_site(&mut origins, &mut counts, k);
        let eight = pool.bv_const(8, 64);
        let addr = pool.bin(BvOp::Mul, k, eight);
        next_site(&mut origins, &mut counts, addr);
        for byte in 0..8u64 {
            let off = pool.bv_const(byte, 64);
            let idx = pool.bin(BvOp::Add, addr, off);
            let v = pool.bv_const(byte, 8);
            arr = pool.write(arr, idx, v);
        }
        let p = pool.var(format!("p{s}"), 64);
        next_site(&mut origins, &mut counts, p);
        let r = pool.read(arr, p);
        next_site(&mut origins, &mut counts, r);
    }
    (pool, origins, counts)
}

fn bench_analyze_and_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/analyze_and_select");
    for &stages in &[4usize, 32, 128] {
        let (pool, origins, counts) = build_pool(stages);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| {
                let graph = ConstraintGraph::analyze(&pool);
                let input = SelectionInput {
                    pool: &pool,
                    origins: &origins,
                    site_counts: &counts,
                };
                let set = select::select_key_values(&graph, &input);
                assert!(!set.is_empty());
                set
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyze_and_select);
criterion_main!(benches);
