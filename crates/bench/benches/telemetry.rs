//! Criterion micro-benchmarks for the telemetry layer.
//!
//! The headline number is `telemetry/counter_add_disabled`: the cost the
//! instrumentation imposes on every hot-path callsite when
//! `ER_TELEMETRY=off`. The design target is < 2 ns/op (one relaxed
//! atomic load and a predictable branch).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_telemetry::{counter, histogram, span, Mode};

fn bench_counter_disabled(c: &mut Criterion) {
    er_telemetry::set_mode(Mode::Off);
    c.bench_function("telemetry/counter_add_disabled", |b| {
        b.iter(|| counter!("bench.disabled").add(black_box(1)));
    });
}

fn bench_counter_enabled(c: &mut Criterion) {
    er_telemetry::set_mode(Mode::Counters);
    c.bench_function("telemetry/counter_add_enabled", |b| {
        b.iter(|| counter!("bench.enabled").add(black_box(1)));
    });
    er_telemetry::set_mode(Mode::Off);
}

fn bench_histogram_enabled(c: &mut Criterion) {
    er_telemetry::set_mode(Mode::Counters);
    c.bench_function("telemetry/histogram_record_enabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9e37_79b9);
            histogram!("bench.hist").record(black_box(v));
        });
    });
    er_telemetry::set_mode(Mode::Off);
}

fn bench_span_disabled(c: &mut Criterion) {
    er_telemetry::set_mode(Mode::Off);
    c.bench_function("telemetry/span_disabled", |b| {
        b.iter(|| {
            let _s = span!("bench.span_off");
        });
    });
}

fn bench_span_counters(c: &mut Criterion) {
    er_telemetry::set_mode(Mode::Counters);
    c.bench_function("telemetry/span_enter_drop_counters", |b| {
        b.iter(|| {
            let _s = span!("bench.span_on");
        });
    });
    er_telemetry::set_mode(Mode::Off);
}

criterion_group!(
    benches,
    bench_counter_disabled,
    bench_counter_enabled,
    bench_histogram_enabled,
    bench_span_disabled,
    bench_span_counters,
);
criterion_main!(benches);
