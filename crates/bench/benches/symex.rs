//! Criterion micro-benchmarks for shepherded symbolic execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use er_minilang::compile;
use er_minilang::env::Env;
use er_minilang::interp::{Machine, RunOutcome};
use er_pt::sink::{PtConfig, PtSink};
use er_symex::{SymConfig, SymMachine};

fn record(
    src: &str,
    input: u32,
) -> (
    er_minilang::ir::Program,
    Vec<er_pt::TraceEvent>,
    er_minilang::error::Failure,
) {
    let program = compile(src).unwrap();
    let mut env = Env::new();
    env.push_input(0, &input.to_le_bytes());
    let report = Machine::with_sink(&program, env, PtSink::new(PtConfig::default())).run();
    let RunOutcome::Failure(f) = report.outcome else {
        panic!()
    };
    let events = report.sink.finish().decode().unwrap().events;
    (program, events, f)
}

/// Mostly-concrete shepherding: the fast path that dominates real traces.
fn bench_concrete_path(c: &mut Criterion) {
    let src = r#"
        fn main() {
            let n: u32 = input_u32(0);
            let h: u32 = 2166136261;
            for i: u32 = 0; i < 20000; i = i + 1 {
                h = (h ^ i) * 16777619;
            }
            if h == n { print(1); }
            abort("end");
        }
    "#;
    let (program, events, failure) = record(src, 5);
    let mut group = c.benchmark_group("symex/concrete_shepherd");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("20k_iteration_loop", |b| {
        b.iter(|| {
            let r = SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
            assert!(matches!(r.status, er_symex::ShepherdStatus::Completed));
        });
    });
    group.finish();
}

/// Symbolic dataflow shepherding: input-tainted arithmetic each iteration.
fn bench_symbolic_path(c: &mut Criterion) {
    let src = r#"
        fn main() {
            let n: u32 = input_u32(0);
            let h: u32 = n;
            for i: u32 = 0; i < 2000; i = i + 1 {
                h = (h ^ i) * 31;
            }
            if h == 0 { print(1); }
            abort("end");
        }
    "#;
    let (program, events, failure) = record(src, 77);
    c.bench_function("symex/symbolic_dataflow_2k", |b| {
        b.iter(|| {
            let r = SymMachine::new(&program, SymConfig::default()).run(&events, Some(&failure));
            assert!(matches!(r.status, er_symex::ShepherdStatus::Completed));
        });
    });
}

criterion_group!(benches, bench_concrete_path, bench_symbolic_path);
criterion_main!(benches);
