//! Property: recovery from ANY truncation point of a valid WAL yields
//! exactly the longest prefix of complete records — never a partial
//! record, never a lost complete one (satellite: torn-tail recovery).

use er_durable::event::{ConsumeOutcome, DurableEvent};
use er_durable::Wal;
use proptest::prelude::*;

fn sample_events(n: usize) -> Vec<DurableEvent> {
    (0..n as u64)
        .map(|i| match i % 3 {
            0 => DurableEvent::SessionStarted {
                group: i,
                label: format!("wl-{i}"),
            },
            1 => DurableEvent::OccurrenceConsumed {
                group: i,
                run_index: i * 11,
                outcome: ConsumeOutcome::NeedMore,
            },
            _ => DurableEvent::SymexCheckpoint {
                group: i,
                occurrence: i as u32,
                cursors: vec![i, i + 1, i + 2],
            },
        })
        .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("er-durable-proptests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate a healthy WAL at an arbitrary byte and recover.
    #[test]
    fn any_truncation_point_recovers_the_complete_prefix(
        n_events in 1usize..8,
        cut_seed in any::<u64>(),
    ) {
        let events = sample_events(n_events);
        let path = tmp(&format!("trunc_{n_events}_{cut_seed:x}.wal"));
        let mut wal = Wal::create(&path).expect("create");
        // Record where each append's frame ends, so the expected
        // surviving prefix is computable from the cut point alone.
        let mut frame_ends = Vec::with_capacity(events.len());
        for ev in &events {
            wal.append(ev).expect("append");
            frame_ends.push(std::fs::metadata(&path).expect("meta").len());
        }
        let total = *frame_ends.last().expect("nonempty");
        let cut = cut_seed % (total + 1);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open for truncate");
        file.set_len(cut).expect("truncate");
        drop(file);

        let survivors = frame_ends.iter().filter(|&&end| end <= cut).count();
        let (reopened, recovered, info) = Wal::open(&path).expect("recover");
        prop_assert_eq!(&recovered[..], &events[..survivors]);
        prop_assert_eq!(reopened.records(), survivors as u64);
        prop_assert_eq!(info.records, survivors as u64);
        let expect_torn = frame_ends.get(survivors).map_or(0, |_| {
            cut - if survivors == 0 { 0 } else { frame_ends[survivors - 1] }
        });
        prop_assert_eq!(info.torn_bytes, expect_torn);

        // The repaired file is stable: a second open sees no tail.
        let (_, again, info2) = Wal::open(&path).expect("reopen repaired");
        prop_assert_eq!(again, recovered);
        prop_assert_eq!(info2.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    /// A truncated-then-recovered log accepts appends and the composite
    /// log round-trips.
    #[test]
    fn recovery_then_append_is_seamless(
        n_events in 2usize..6,
        cut_back in 1u64..20,
    ) {
        let events = sample_events(n_events);
        let path = tmp(&format!("resume_{n_events}_{cut_back}.wal"));
        let mut wal = Wal::create(&path).expect("create");
        for ev in &events {
            wal.append(ev).expect("append");
        }
        let total = std::fs::metadata(&path).expect("meta").len();
        let cut = total.saturating_sub(cut_back);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open for truncate");
        file.set_len(cut).expect("truncate");
        drop(file);

        let (mut wal, mut recovered, _) = Wal::open(&path).expect("recover");
        let tail = DurableEvent::Terminal {
            group: 99,
            reproduced: true,
            reason: String::new(),
            occurrences: recovered.len() as u32,
        };
        wal.append(&tail).expect("append after recovery");
        let (_, all, info) = Wal::open(&path).expect("final open");
        recovered.push(tail);
        prop_assert_eq!(all, recovered);
        prop_assert_eq!(info.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }
}
