//! WAL record framing: length-prefixed, checksummed, torn-tail tolerant.
//!
//! Every record is `[u32 le payload len][u64 le FNV-1a of payload][payload]`.
//! The frame is written (and flushed) as one unit; a crash mid-write leaves
//! at most one *torn tail* — an incomplete header, a short payload, or a
//! payload whose checksum disagrees with the header. [`scan`] classifies
//! exactly that: everything up to the last complete, checksum-valid record
//! is trusted, the tail (if any) is reported for truncation. A WAL can
//! therefore lose at most the one append that was in flight at the crash —
//! never a record that was already acknowledged.

/// Bytes of framing per record (4-byte length + 8-byte checksum).
pub const HEADER_LEN: usize = 12;

/// Upper bound on one record's payload. Anything larger in a length field
/// is treated as tail garbage, not an allocation request — a torn header
/// must not make recovery attempt a 4 GB read.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// FNV-1a over `bytes` — the same cheap content hash the trace store uses
/// for content addressing; collisions are irrelevant here because the
/// checksum only guards against *truncated or torn* writes, not adversarial
/// ones.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Frames one payload: header + payload, ready to append.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds frame bound");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`scan`] found in a WAL image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Payloads of every complete, checksum-valid record, in log order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the trusted prefix (where the torn tail, if any,
    /// begins). Recovery truncates the file to this length.
    pub clean_len: usize,
    /// Whether bytes past `clean_len` were present and discarded.
    pub torn: bool,
}

/// Walks `bytes` record by record, stopping at the first frame that is
/// incomplete or fails its checksum.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return ScanResult {
                records,
                clean_len: pos,
                torn: false,
            };
        }
        if rest.len() < HEADER_LEN {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD || rest.len() < HEADER_LEN + len {
            break; // garbage length or torn payload
        }
        let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if fnv64(payload) != sum {
            break; // payload bytes from a torn write
        }
        records.push(payload.to_vec());
        pos += HEADER_LEN + len;
    }
    ScanResult {
        records,
        clean_len: pos,
        torn: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut log = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 300], b"hello".to_vec()];
        for p in &payloads {
            log.extend_from_slice(&frame(p));
        }
        let scan = scan(&log);
        assert_eq!(scan.records, payloads);
        assert_eq!(scan.clean_len, log.len());
        assert!(!scan.torn);
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_record() {
        let mut log = frame(b"first");
        log.extend_from_slice(&frame(b"second"));
        let clean = log.len();
        // Append most of a third record, cut mid-payload.
        let third = frame(b"third-record-payload");
        log.extend_from_slice(&third[..third.len() - 3]);
        let s = scan(&log);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.clean_len, clean);
        assert!(s.torn);
    }

    #[test]
    fn corrupt_checksum_is_a_torn_tail() {
        let mut log = frame(b"ok");
        let mut bad = frame(b"damaged");
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let clean = log.len();
        log.extend_from_slice(&bad);
        let s = scan(&log);
        assert_eq!(s.records, vec![b"ok".to_vec()]);
        assert_eq!(s.clean_len, clean);
        assert!(s.torn);
    }

    #[test]
    fn insane_length_field_does_not_allocate() {
        let mut log = frame(b"ok");
        let clean = log.len();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 8]);
        let s = scan(&log);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.clean_len, clean);
        assert!(s.torn);
    }

    #[test]
    fn empty_log_is_clean() {
        let s = scan(&[]);
        assert!(s.records.is_empty());
        assert_eq!(s.clean_len, 0);
        assert!(!s.torn);
    }
}
