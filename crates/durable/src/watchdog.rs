//! Watchdog policy: per-phase deadlines and the escalation ladder.
//!
//! The mechanism lives in [`er_solver::cancel`] (a cooperative token the
//! hot loops tick); this module is the *policy* the scheduler applies
//! around it: initial per-phase budgets, the multiplication factor a
//! cancelled iteration's budgets grow by before the occurrence is
//! re-queued, and the escalation cap after which the session takes a typed
//! give-up ([`er_core::reconstruct::GiveUpReason::WatchdogExhausted`])
//! instead of burning occurrences forever.

use er_solver::cancel::PhaseBudgets;

/// Watchdog supervision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Initial per-phase work budgets for every supervised iteration.
    pub budgets: PhaseBudgets,
    /// Budget multiplier applied on each escalation.
    pub escalation_factor: u64,
    /// Escalations allowed per group before the typed give-up.
    pub max_escalations: u32,
}

impl WatchdogConfig {
    /// A config with the given initial budgets, doubling twice before
    /// giving up (factor 4, cap 3 — the final attempt runs at 64× the
    /// original deadline, enough that only a genuine livelock still
    /// trips).
    pub fn new(budgets: PhaseBudgets) -> WatchdogConfig {
        WatchdogConfig {
            budgets,
            escalation_factor: 4,
            max_escalations: 3,
        }
    }
}

/// One group's position on the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogState {
    budgets: PhaseBudgets,
    escalations: u32,
}

impl WatchdogState {
    /// A fresh state at the bottom of the ladder.
    pub fn new(config: &WatchdogConfig) -> WatchdogState {
        WatchdogState {
            budgets: config.budgets,
            escalations: 0,
        }
    }

    /// The budgets the next supervised iteration should be armed with.
    pub fn budgets(&self) -> PhaseBudgets {
        self.budgets
    }

    /// Escalations taken so far.
    pub fn escalations(&self) -> u32 {
        self.escalations
    }

    /// Climbs one rung: scales the budgets and counts the escalation.
    /// Returns `false` when the cap is exhausted — the caller must stop
    /// re-queueing and close the session with a typed give-up.
    pub fn escalate(&mut self, config: &WatchdogConfig) -> bool {
        if self.escalations >= config.max_escalations {
            return false;
        }
        self.escalations += 1;
        self.budgets = self.budgets.scaled(config.escalation_factor);
        true
    }

    /// Restores a recovered group to rung `level` (replay of
    /// [`crate::event::DurableEvent::Escalated`] events).
    pub fn restore(&mut self, config: &WatchdogConfig, level: u32) {
        self.budgets = config.budgets;
        self.escalations = 0;
        for _ in 0..level {
            self.escalate(config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets(n: u64) -> PhaseBudgets {
        PhaseBudgets {
            decode: n,
            shepherd: n,
            solve: n,
            select: n,
        }
    }

    #[test]
    fn ladder_scales_then_caps() {
        let cfg = WatchdogConfig::new(budgets(100));
        let mut st = WatchdogState::new(&cfg);
        assert_eq!(st.budgets().shepherd, 100);
        assert!(st.escalate(&cfg));
        assert_eq!(st.budgets().shepherd, 400);
        assert!(st.escalate(&cfg));
        assert!(st.escalate(&cfg));
        assert_eq!(st.budgets().shepherd, 6400);
        assert_eq!(st.escalations(), 3);
        assert!(!st.escalate(&cfg), "cap reached");
        assert_eq!(st.escalations(), 3, "failed escalation does not count");
    }

    #[test]
    fn restore_lands_on_the_same_rung() {
        let cfg = WatchdogConfig::new(budgets(10));
        let mut walked = WatchdogState::new(&cfg);
        walked.escalate(&cfg);
        walked.escalate(&cfg);
        let mut restored = WatchdogState::new(&cfg);
        restored.restore(&cfg, 2);
        assert_eq!(walked, restored);
    }
}
