//! The logical events a reconstruction scheduler journals, with a
//! hand-rolled binary codec.
//!
//! The WAL records *events*, not state: a symbolic machine snapshot holds
//! an expression pool and an incremental SAT instance and is not
//! serializable, so recovery instead re-feeds every consumed occurrence —
//! trace bytes included — through a fresh session in logged order. The
//! pipeline is deterministic, so replay reconverges on the same session
//! state, and the checkpoint/selection/terminal events double as durable
//! *assertions*: replay cross-checks what it rebuilds against what the
//! crashed process had acknowledged.

use er_core::reconstruct::OccurrenceInfo;
use er_minilang::error::{Failure, RuntimeFault};
use er_minilang::interp::SchedConfig;
use er_minilang::ir::{FuncId, InstrId};
use std::fmt;

/// Why consuming an occurrence ended the way it did — enough for replay to
/// cross-check its own step outcome against the crashed process's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumeOutcome {
    /// Session wants another occurrence under the same binary.
    NeedMore,
    /// Session wants another occurrence under a *new* binary (version
    /// bumped).
    Reinstrumented,
    /// Session closed (report follows as a [`DurableEvent::Terminal`]).
    Closed,
}

impl ConsumeOutcome {
    fn tag(self) -> u8 {
        match self {
            ConsumeOutcome::NeedMore => 0,
            ConsumeOutcome::Reinstrumented => 1,
            ConsumeOutcome::Closed => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, DecodeError> {
        Ok(match t {
            0 => ConsumeOutcome::NeedMore,
            1 => ConsumeOutcome::Reinstrumented,
            2 => ConsumeOutcome::Closed,
            _ => return Err(DecodeError::BadTag("consume outcome", t)),
        })
    }
}

/// One durable event in a reconstruction scheduler's life.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableEvent {
    /// A failure group was first sighted and a session created for it.
    SessionStarted {
        /// Group id (failure signature hash).
        group: u64,
        /// Human-readable label for reports.
        label: String,
    },
    /// An occurrence passed the scheduler's stale/duplicate checks and was
    /// queued. Carries the compressed trace so recovery does not depend on
    /// the (volatile) trace store.
    OccurrenceIngested {
        /// Owning group.
        group: u64,
        /// Binary provenance (`None` = baseline binary).
        for_group: Option<u64>,
        /// Instrumentation version that produced the trace.
        version: u32,
        /// Decoded stream starts with a gap (ring wrapped).
        leading_gap: bool,
        /// Occurrence metadata.
        info: Box<OccurrenceInfo>,
        /// Compressed trace packets; `None` when the trace was
        /// undecodable (`error` says why).
        trace: Option<Vec<u8>>,
        /// Decode error, when `trace` is `None`.
        error: Option<String>,
    },
    /// The session consumed the queued occurrence at `run_index`.
    OccurrenceConsumed {
        /// Owning group.
        group: u64,
        /// Which production run's occurrence was consumed.
        run_index: u64,
        /// How the iteration ended.
        outcome: ConsumeOutcome,
    },
    /// Symbex snapshots surviving the last consume — the cursors a
    /// restarted session must be able to resume from.
    SymexCheckpoint {
        /// Owning group.
        group: u64,
        /// 1-based occurrence count at the time of the snapshot.
        occurrence: u32,
        /// Event cursors of the retained machine snapshots.
        cursors: Vec<u64>,
    },
    /// Solver-side progress marker for the last consume.
    SolverCheckpoint {
        /// Owning group.
        group: u64,
        /// 1-based occurrence count.
        occurrence: u32,
        /// Symbex steps spent on this iteration.
        symbex_steps: u64,
        /// Solver work units spent on this iteration.
        solver_work: u64,
    },
    /// Key data values selected after a stall.
    SelectionMade {
        /// Owning group.
        group: u64,
        /// 1-based occurrence count.
        occurrence: u32,
        /// Newly selected recording sites (original coordinates).
        new_sites: Vec<InstrId>,
    },
    /// A new instrumentation plan rolled out to the fleet.
    PlanDeployed {
        /// Owning group.
        group: u64,
        /// New version number.
        version: u32,
        /// The full accumulated recording set (original coordinates).
        sites: Vec<InstrId>,
    },
    /// The watchdog cancelled a stalled iteration and re-queued the
    /// occurrence with escalated budgets.
    Escalated {
        /// Owning group.
        group: u64,
        /// Escalation level after this step (1 = first escalation).
        level: u32,
        /// Name of the phase whose budget tripped.
        phase: String,
    },
    /// The investigation closed.
    Terminal {
        /// Owning group.
        group: u64,
        /// Whether a verified test case was produced.
        reproduced: bool,
        /// Debug rendering of the outcome (for reports; replay re-derives
        /// the real one).
        reason: String,
        /// Occurrences consumed in total.
        occurrences: u32,
    },
}

impl DurableEvent {
    /// The group this event belongs to.
    pub fn group(&self) -> u64 {
        match *self {
            DurableEvent::SessionStarted { group, .. }
            | DurableEvent::OccurrenceIngested { group, .. }
            | DurableEvent::OccurrenceConsumed { group, .. }
            | DurableEvent::SymexCheckpoint { group, .. }
            | DurableEvent::SolverCheckpoint { group, .. }
            | DurableEvent::SelectionMade { group, .. }
            | DurableEvent::PlanDeployed { group, .. }
            | DurableEvent::Escalated { group, .. }
            | DurableEvent::Terminal { group, .. } => group,
        }
    }

    /// Serializes to the WAL payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            DurableEvent::SessionStarted { group, label } => {
                w.u8(0);
                w.u64(*group);
                w.str(label);
            }
            DurableEvent::OccurrenceIngested {
                group,
                for_group,
                version,
                leading_gap,
                info,
                trace,
                error,
            } => {
                w.u8(1);
                w.u64(*group);
                w.opt_u64(*for_group);
                w.u32(*version);
                w.bool(*leading_gap);
                w.info(info);
                w.opt_bytes(trace.as_deref());
                w.opt_str(error.as_deref());
            }
            DurableEvent::OccurrenceConsumed {
                group,
                run_index,
                outcome,
            } => {
                w.u8(2);
                w.u64(*group);
                w.u64(*run_index);
                w.u8(outcome.tag());
            }
            DurableEvent::SymexCheckpoint {
                group,
                occurrence,
                cursors,
            } => {
                w.u8(3);
                w.u64(*group);
                w.u32(*occurrence);
                w.u64(cursors.len() as u64);
                for &c in cursors {
                    w.u64(c);
                }
            }
            DurableEvent::SolverCheckpoint {
                group,
                occurrence,
                symbex_steps,
                solver_work,
            } => {
                w.u8(4);
                w.u64(*group);
                w.u32(*occurrence);
                w.u64(*symbex_steps);
                w.u64(*solver_work);
            }
            DurableEvent::SelectionMade {
                group,
                occurrence,
                new_sites,
            } => {
                w.u8(5);
                w.u64(*group);
                w.u32(*occurrence);
                w.sites(new_sites);
            }
            DurableEvent::PlanDeployed {
                group,
                version,
                sites,
            } => {
                w.u8(6);
                w.u64(*group);
                w.u32(*version);
                w.sites(sites);
            }
            DurableEvent::Escalated {
                group,
                level,
                phase,
            } => {
                w.u8(7);
                w.u64(*group);
                w.u32(*level);
                w.str(phase);
            }
            DurableEvent::Terminal {
                group,
                reproduced,
                reason,
                occurrences,
            } => {
                w.u8(8);
                w.u64(*group);
                w.bool(*reproduced);
                w.str(reason);
                w.u32(*occurrences);
            }
        }
        w.0
    }

    /// Deserializes a WAL payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a short buffer, unknown tag, or trailing
    /// bytes — all symptoms of a frame that checksummed correctly but was
    /// written by an incompatible (or corrupted) producer.
    pub fn decode(payload: &[u8]) -> Result<DurableEvent, DecodeError> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let ev = match r.u8()? {
            0 => DurableEvent::SessionStarted {
                group: r.u64()?,
                label: r.str()?,
            },
            1 => DurableEvent::OccurrenceIngested {
                group: r.u64()?,
                for_group: r.opt_u64()?,
                version: r.u32()?,
                leading_gap: r.bool()?,
                info: Box::new(r.info()?),
                trace: r.opt_bytes()?,
                error: r.opt_str()?,
            },
            2 => DurableEvent::OccurrenceConsumed {
                group: r.u64()?,
                run_index: r.u64()?,
                outcome: ConsumeOutcome::from_tag(r.u8()?)?,
            },
            3 => {
                let group = r.u64()?;
                let occurrence = r.u32()?;
                let n = r.u64()? as usize;
                let mut cursors = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    cursors.push(r.u64()?);
                }
                DurableEvent::SymexCheckpoint {
                    group,
                    occurrence,
                    cursors,
                }
            }
            4 => DurableEvent::SolverCheckpoint {
                group: r.u64()?,
                occurrence: r.u32()?,
                symbex_steps: r.u64()?,
                solver_work: r.u64()?,
            },
            5 => DurableEvent::SelectionMade {
                group: r.u64()?,
                occurrence: r.u32()?,
                new_sites: r.sites()?,
            },
            6 => DurableEvent::PlanDeployed {
                group: r.u64()?,
                version: r.u32()?,
                sites: r.sites()?,
            },
            7 => DurableEvent::Escalated {
                group: r.u64()?,
                level: r.u32()?,
                phase: r.str()?,
            },
            8 => DurableEvent::Terminal {
                group: r.u64()?,
                reproduced: r.bool()?,
                reason: r.str()?,
                occurrences: r.u32()?,
            },
            t => return Err(DecodeError::BadTag("event", t)),
        };
        if r.pos != payload.len() {
            return Err(DecodeError::TrailingBytes(payload.len() - r.pos));
        }
        Ok(ev)
    }
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the field being read.
    Truncated,
    /// An enum discriminant had no meaning (`what`, value).
    BadTag(&'static str, u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The payload had this many undecoded bytes past the event.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadTag(what, t) => write!(f, "unknown {what} tag {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after event"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[derive(Default)]
struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
    fn opt_bytes(&mut self, v: Option<&[u8]>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.bytes(x);
            }
            None => self.u8(0),
        }
    }
    fn opt_str(&mut self, v: Option<&str>) {
        self.opt_bytes(v.map(str::as_bytes));
    }
    fn instr_id(&mut self, id: InstrId) {
        self.u32(id.func.0);
        self.u32(id.block.0);
        self.u64(id.index as u64);
    }
    fn sites(&mut self, sites: &[InstrId]) {
        self.u64(sites.len() as u64);
        for &s in sites {
            self.instr_id(s);
        }
    }
    fn fault(&mut self, fault: &RuntimeFault) {
        match fault {
            RuntimeFault::NullDeref { addr } => {
                self.u8(0);
                self.u64(*addr);
            }
            RuntimeFault::Unmapped { addr } => {
                self.u8(1);
                self.u64(*addr);
            }
            RuntimeFault::UseAfterFree { addr } => {
                self.u8(2);
                self.u64(*addr);
            }
            RuntimeFault::InvalidFree { addr } => {
                self.u8(3);
                self.u64(*addr);
            }
            RuntimeFault::OutOfBounds { addr, base, size } => {
                self.u8(4);
                self.u64(*addr);
                self.u64(*base);
                self.u64(*size);
            }
            RuntimeFault::Abort { message } => {
                self.u8(5);
                self.str(message);
            }
            RuntimeFault::AssertFailed { message } => {
                self.u8(6);
                self.str(message);
            }
            RuntimeFault::DivByZero => self.u8(7),
            RuntimeFault::InputExhausted { source } => {
                self.u8(8);
                self.u32(*source);
            }
            RuntimeFault::BadJoin { tid } => {
                self.u8(9);
                self.u64(*tid);
            }
            RuntimeFault::Hang => self.u8(10),
            RuntimeFault::Deadlock => self.u8(11),
        }
    }
    fn failure(&mut self, f: &Failure) {
        self.fault(&f.fault);
        self.instr_id(f.at);
        self.u64(f.call_stack.len() as u64);
        for fid in &f.call_stack {
            self.u32(fid.0);
        }
        self.u64(f.tid);
    }
    fn info(&mut self, info: &OccurrenceInfo) {
        self.u64(info.run_index);
        self.u64(info.instr_count);
        self.u64(info.trace_bytes);
        self.u64(info.sched.quantum);
        self.u64(info.sched.seed);
        self.u64(info.sched.max_instrs);
        self.failure(&info.failure);
        self.failure(&info.failure_instrumented);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u64()?),
        })
    }
    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.bytes()?),
        })
    }
    fn opt_str(&mut self) -> Result<Option<String>, DecodeError> {
        match self.opt_bytes()? {
            None => Ok(None),
            Some(b) => String::from_utf8(b)
                .map(Some)
                .map_err(|_| DecodeError::BadUtf8),
        }
    }
    fn instr_id(&mut self) -> Result<InstrId, DecodeError> {
        Ok(InstrId {
            func: FuncId(self.u32()?),
            block: er_minilang::ir::BlockId(self.u32()?),
            index: self.u64()? as usize,
        })
    }
    fn sites(&mut self) -> Result<Vec<InstrId>, DecodeError> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(self.instr_id()?);
        }
        Ok(out)
    }
    fn fault(&mut self) -> Result<RuntimeFault, DecodeError> {
        Ok(match self.u8()? {
            0 => RuntimeFault::NullDeref { addr: self.u64()? },
            1 => RuntimeFault::Unmapped { addr: self.u64()? },
            2 => RuntimeFault::UseAfterFree { addr: self.u64()? },
            3 => RuntimeFault::InvalidFree { addr: self.u64()? },
            4 => RuntimeFault::OutOfBounds {
                addr: self.u64()?,
                base: self.u64()?,
                size: self.u64()?,
            },
            5 => RuntimeFault::Abort {
                message: self.str()?,
            },
            6 => RuntimeFault::AssertFailed {
                message: self.str()?,
            },
            7 => RuntimeFault::DivByZero,
            8 => RuntimeFault::InputExhausted {
                source: self.u32()?,
            },
            9 => RuntimeFault::BadJoin { tid: self.u64()? },
            10 => RuntimeFault::Hang,
            11 => RuntimeFault::Deadlock,
            t => return Err(DecodeError::BadTag("runtime fault", t)),
        })
    }
    fn failure(&mut self) -> Result<Failure, DecodeError> {
        let fault = self.fault()?;
        let at = self.instr_id()?;
        let n = self.u64()? as usize;
        let mut call_stack = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            call_stack.push(FuncId(self.u32()?));
        }
        let tid = self.u64()?;
        Ok(Failure {
            fault,
            at,
            call_stack,
            tid,
        })
    }
    fn info(&mut self) -> Result<OccurrenceInfo, DecodeError> {
        Ok(OccurrenceInfo {
            run_index: self.u64()?,
            instr_count: self.u64()?,
            trace_bytes: self.u64()?,
            sched: SchedConfig {
                quantum: self.u64()?,
                seed: self.u64()?,
                max_instrs: self.u64()?,
            },
            failure: self.failure()?,
            failure_instrumented: self.failure()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::ir::BlockId;

    fn failure(kind: u8) -> Failure {
        let fault = match kind {
            0 => RuntimeFault::NullDeref { addr: 0x10 },
            1 => RuntimeFault::OutOfBounds {
                addr: 0x30,
                base: 0x20,
                size: 8,
            },
            2 => RuntimeFault::Abort {
                message: "boom".into(),
            },
            3 => RuntimeFault::Deadlock,
            _ => RuntimeFault::InputExhausted { source: 3 },
        };
        Failure {
            fault,
            at: InstrId {
                func: FuncId(1),
                block: BlockId(2),
                index: usize::MAX, // terminator sentinel must survive the codec
            },
            call_stack: vec![FuncId(0), FuncId(1)],
            tid: 7,
        }
    }

    fn info() -> OccurrenceInfo {
        OccurrenceInfo {
            run_index: 41,
            instr_count: 100_000,
            trace_bytes: 4096,
            sched: SchedConfig {
                quantum: 100,
                seed: 9,
                max_instrs: 1_000_000,
            },
            failure: failure(2),
            failure_instrumented: failure(2),
        }
    }

    fn sample_events() -> Vec<DurableEvent> {
        vec![
            DurableEvent::SessionStarted {
                group: 0xdead,
                label: "abort@f1:b2".into(),
            },
            DurableEvent::OccurrenceIngested {
                group: 0xdead,
                for_group: Some(0xdead),
                version: 2,
                leading_gap: true,
                info: Box::new(info()),
                trace: Some(vec![1, 2, 3, 0xff]),
                error: None,
            },
            DurableEvent::OccurrenceIngested {
                group: 0xdead,
                for_group: None,
                version: 0,
                leading_gap: false,
                info: Box::new(info()),
                trace: None,
                error: Some("decode failed: bad packet".into()),
            },
            DurableEvent::OccurrenceConsumed {
                group: 0xdead,
                run_index: 41,
                outcome: ConsumeOutcome::Reinstrumented,
            },
            DurableEvent::SymexCheckpoint {
                group: 0xdead,
                occurrence: 1,
                cursors: vec![0, 64, 128],
            },
            DurableEvent::SolverCheckpoint {
                group: 0xdead,
                occurrence: 1,
                symbex_steps: 12_345,
                solver_work: 678,
            },
            DurableEvent::SelectionMade {
                group: 0xdead,
                occurrence: 1,
                new_sites: vec![InstrId {
                    func: FuncId(0),
                    block: BlockId(3),
                    index: 4,
                }],
            },
            DurableEvent::PlanDeployed {
                group: 0xdead,
                version: 3,
                sites: vec![],
            },
            DurableEvent::Escalated {
                group: 0xdead,
                level: 2,
                phase: "shepherd".into(),
            },
            DurableEvent::Terminal {
                group: 0xdead,
                reproduced: true,
                reason: "Reproduced".into(),
                occurrences: 4,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for ev in sample_events() {
            let bytes = ev.encode();
            let back = DurableEvent::decode(&bytes).expect("decodes");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        for ev in sample_events() {
            let bytes = ev.encode();
            for cut in 0..bytes.len() {
                // Every strict prefix must fail cleanly, never panic.
                assert!(DurableEvent::decode(&bytes[..cut]).is_err());
            }
        }
        assert_eq!(
            DurableEvent::decode(&[99]),
            Err(DecodeError::BadTag("event", 99))
        );
        let mut ok = sample_events()[0].encode();
        ok.push(0);
        assert_eq!(
            DurableEvent::decode(&ok),
            Err(DecodeError::TrailingBytes(1))
        );
    }
}
