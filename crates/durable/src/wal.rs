//! The write-ahead log: append-with-flush, torn-tail recovery, and the
//! simulated crash point.
//!
//! ## Durability model (fsync simulation)
//!
//! Appends write one framed record and `flush` it — the same
//! retry-or-degrade I/O discipline as the trace store's spill layer
//! ([`er_chaos::retry`] with bounded attempts). `flush` on this simulated
//! fleet plays the role of `fsync`: the *fsync point* is modeled, not
//! enforced against real power loss — see DESIGN.md §12 for the caveat.
//! What the model does enforce, via [`er_chaos::Fault::WalTear`], is the
//! crash-consistency contract: a crash can land mid-append, leaving a torn
//! frame that [`Wal::open`] must silently truncate, and everything already
//! acknowledged must survive.

use crate::event::DurableEvent;
use crate::record;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// How many attempts an append or open gives a transiently failing log
/// device (mirrors the spill layer's policy).
pub const WAL_IO_ATTEMPTS: u32 = 3;

/// Panic payload for a simulated crash ([`er_chaos::Fault::WalTear`]): the
/// "process" dies mid-append; a kill-restart harness catches the unwind at
/// its `catch_unwind` boundary, re-opens the WAL, and resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// Records fully appended before the torn one.
    pub records_appended: u64,
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Complete records recovered.
    pub records: u64,
    /// Bytes of torn tail truncated (0 = the log was clean).
    pub torn_bytes: u64,
    /// Records whose frame was intact but whose payload failed to decode
    /// (truncated away with everything after them).
    pub undecodable: u64,
}

/// An append-only, checksummed event log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    records: u64,
}

impl Wal {
    /// Creates (or truncates) the log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error once retries are exhausted.
    pub fn create(path: &Path) -> std::io::Result<Wal> {
        er_chaos::retry(WAL_IO_ATTEMPTS, |_| std::fs::write(path, []))?;
        Ok(Wal {
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Opens an existing log, truncating any torn tail, and returns the
    /// surviving events in append order.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error once retries are exhausted. A
    /// torn or partially corrupt log is NOT an error — that is the case
    /// this layer exists for.
    pub fn open(path: &Path) -> std::io::Result<(Wal, Vec<DurableEvent>, RecoveryInfo)> {
        let bytes = er_chaos::retry(WAL_IO_ATTEMPTS, |_| std::fs::read(path))?;
        let scan = record::scan(&bytes);
        let mut events = Vec::with_capacity(scan.records.len());
        let mut clean_len = 0usize;
        let mut undecodable = 0u64;
        for payload in &scan.records {
            match DurableEvent::decode(payload) {
                Ok(ev) => {
                    events.push(ev);
                    clean_len += record::HEADER_LEN + payload.len();
                }
                Err(e) => {
                    // A frame that checksums but does not decode is as
                    // untrustworthy as a torn one; keep the prefix only.
                    er_telemetry::log!(warn, "wal record {} undecodable: {e}", events.len());
                    undecodable += 1;
                    break;
                }
            }
        }
        let torn_bytes = (bytes.len() - clean_len) as u64;
        if torn_bytes > 0 {
            er_telemetry::counter!("durable.torn_tail_truncated").incr();
            er_telemetry::log!(
                warn,
                "wal torn tail: truncating {torn_bytes} bytes after {} records",
                events.len()
            );
            let file = OpenOptions::new().write(true).open(path)?;
            er_chaos::retry(WAL_IO_ATTEMPTS, |_| file.set_len(clean_len as u64))?;
            if er_chaos::armed() {
                // The torn write was (or could have been) injected; its
                // recovery is complete here.
                er_chaos::note_recovered(er_chaos::Domain::Store);
            }
        }
        er_telemetry::counter!("durable.opens").incr();
        let records = events.len() as u64;
        Ok((
            Wal {
                path: path.to_path_buf(),
                records,
            },
            events,
            RecoveryInfo {
                records,
                torn_bytes,
                undecodable,
            },
        ))
    }

    /// Appends one event and flushes it — the record's fsync point: once
    /// this returns, the event survives a crash.
    ///
    /// Under an armed [`er_chaos::Fault::WalTear`] policy, the append may
    /// instead write a torn prefix of the frame and *crash the process*
    /// (an unwind carrying [`CrashSignal`]); the entropy picks how much of
    /// the frame lands.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error once retries are exhausted.
    pub fn append(&mut self, ev: &DurableEvent) -> std::io::Result<()> {
        let frame = record::frame(&ev.encode());
        if let Some(entropy) = er_chaos::inject(er_chaos::Fault::WalTear) {
            // Power loss mid-write: some prefix of the frame (possibly
            // empty, never the whole frame) reaches the log, then the
            // process dies.
            let cut = (entropy as usize) % frame.len();
            let _ = self.write_all(&frame[..cut]);
            er_telemetry::counter!("durable.wal_tears").incr();
            er_telemetry::log!(
                warn,
                "wal tear injected at record {} ({cut}/{} bytes landed)",
                self.records,
                frame.len()
            );
            std::panic::panic_any(CrashSignal {
                records_appended: self.records,
            });
        }
        self.write_all(&frame)?;
        self.records += 1;
        er_telemetry::counter!("durable.appends").incr();
        Ok(())
    }

    fn write_all(&self, bytes: &[u8]) -> std::io::Result<()> {
        er_chaos::retry(WAL_IO_ATTEMPTS, |attempt| {
            if attempt > 0 && er_chaos::armed() {
                er_chaos::note_recovered(er_chaos::Domain::Store);
            }
            let mut f = OpenOptions::new().append(true).open(&self.path)?;
            f.write_all(bytes)?;
            f.flush()
        })
    }

    /// Records appended (or recovered) so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConsumeOutcome;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("er-durable-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn ev(run_index: u64) -> DurableEvent {
        DurableEvent::OccurrenceConsumed {
            group: 7,
            run_index,
            outcome: ConsumeOutcome::NeedMore,
        }
    }

    #[test]
    fn append_then_open_round_trips() {
        let path = tmp("round_trip.wal");
        let mut wal = Wal::create(&path).expect("create");
        for i in 0..5 {
            wal.append(&ev(i)).expect("append");
        }
        assert_eq!(wal.records(), 5);
        let (wal2, events, info) = Wal::open(&path).expect("open");
        assert_eq!(wal2.records(), 5);
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(events, (0..5).map(ev).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopened_wal_keeps_appending() {
        let path = tmp("reopen_append.wal");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(&ev(0)).expect("append");
        drop(wal);
        let (mut wal, _, _) = Wal::open(&path).expect("open");
        wal.append(&ev(1)).expect("append");
        let (_, events, _) = Wal::open(&path).expect("open again");
        assert_eq!(events, vec![ev(0), ev(1)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn_tail.wal");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(&ev(0)).expect("append");
        wal.append(&ev(1)).expect("append");
        // Simulate the crash: half of a third frame lands.
        let frame = record::frame(&ev(2).encode());
        let mut bytes = std::fs::read(&path).expect("read");
        let clean = bytes.len();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&path, &bytes).expect("write");
        let (wal, events, info) = Wal::open(&path).expect("open");
        assert_eq!(events, vec![ev(0), ev(1)]);
        assert_eq!(info.torn_bytes, (bytes.len() - clean) as u64);
        assert_eq!(wal.records(), 2);
        // The file itself was repaired: a second open is clean.
        let (_, _, info2) = Wal::open(&path).expect("open repaired");
        assert_eq!(info2.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_tear_crashes_and_recovers() {
        let _l = crate::testsync::chaos_lock();
        let path = tmp("chaos_tear.wal");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(&ev(0)).expect("append");
        let guard = er_chaos::arm(
            er_chaos::ChaosPlan::new(0x7ea2)
                .with(er_chaos::Fault::WalTear, er_chaos::FaultPolicy::at_nth(1)),
        );
        wal.append(&ev(1)).expect("tear waits for its position");
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wal.append(&ev(2))))
            .expect_err("injected tear must crash the append");
        let signal = crash
            .downcast_ref::<CrashSignal>()
            .expect("crash carries the signal");
        assert_eq!(signal.records_appended, 2);
        // Restart: the two acknowledged records survive; the torn one is
        // gone without a trace.
        let (_, events, _) = Wal::open(&path).expect("open after crash");
        assert_eq!(events, vec![ev(0), ev(1)]);
        drop(guard);
        std::fs::remove_file(&path).ok();
    }
}
