//! Crash-consistent durability for reconstruction sessions.
//!
//! ER's convergence loop accumulates state across failure occurrences —
//! traces, instrumentation plans, symbex checkpoints, selected key values.
//! Before this crate, that state lived only in the scheduler's process
//! memory: a reconstructor crash threw away every occurrence observed so
//! far and restarted from zero. This crate makes session progress durable
//! and supervised:
//!
//! * [`record`] — length-prefixed, FNV-checksummed framing with torn-tail
//!   classification: a crash mid-append loses at most the in-flight record.
//! * [`event`] — the logical events a scheduler journals
//!   ([`event::DurableEvent`]): occurrence ingested (trace bytes
//!   included), occurrence consumed, symbex/solver checkpoints, key-value
//!   selection, plan deployment, watchdog escalation, terminal verdict.
//! * [`wal`] — the append-only log itself: flush-per-record fsync points
//!   (simulated — see DESIGN.md §12), [`er_chaos::Fault::WalTear`] crash
//!   injection, and recovery-on-open.
//! * [`watchdog`] — the supervision policy layered on
//!   [`er_solver::cancel`]: per-phase deadlines, an escalation ladder, and
//!   a typed give-up at the cap.
//!
//! The WAL journals *events*, not state snapshots: symbolic machine state
//! is not serializable (it owns an expression pool and a live incremental
//! SAT instance), so recovery replays the logged occurrences through fresh
//! sessions in logged order. Determinism makes replay reconverge —
//! including re-entering mid-trace via the symbex checkpoints the replayed
//! occurrences re-create — which is what `fleet::sched`'s recovery path
//! (and the `crash_sweep` harness that kills it at seeded WAL positions)
//! builds on.

pub mod event;
pub mod record;
pub mod wal;
pub mod watchdog;

pub use event::{ConsumeOutcome, DecodeError, DurableEvent};
pub use record::{fnv64, frame, scan, ScanResult};
pub use wal::{CrashSignal, RecoveryInfo, Wal, WAL_IO_ATTEMPTS};
pub use watchdog::{WatchdogConfig, WatchdogState};

#[cfg(test)]
pub(crate) mod testsync {
    //! The chaos plan is process-global; unit tests across this crate's
    //! modules that arm one must serialize on this lock.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn chaos_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
