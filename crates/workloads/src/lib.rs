//! The evaluation workloads: one mini-language program per Table-1 bug,
//! plus the coreutils programs for the §5.4 MIMIC case study.
//!
//! Each workload reproduces its paper counterpart's *bug class* and
//! *constraint-complexity regime* (see DESIGN.md §4): programs whose
//! failures resolve from control flow alone reproduce in one occurrence;
//! the others embed one or more "symbolic table stages" — a store through a
//! masked symbolic index followed by a branch on a symbolic read — each of
//! which costs one solver stall and therefore one additional failure
//! occurrence, mirroring the paper's iterative recording counts.
//!
//! # Example
//!
//! ```
//! use er_workloads::{by_name, Scale};
//!
//! let w = by_name("Libpng-2004-0597").expect("registered workload");
//! let deployment = w.deployment(Scale::TEST);
//! let report = er_core::Reconstructor::new(w.er_config()).reconstruct(&deployment);
//! assert!(report.reproduced());
//! assert_eq!(report.occurrences, w.expected_occurrences);
//! ```

mod apps;
pub mod coreutils;

use er_core::deploy::{Deployment, NextFailing, ReoccurrenceModel};
use er_core::reconstruct::ErConfig;
use er_minilang::env::Env;
use er_minilang::interp::SchedConfig;
use er_minilang::ir::Program;
use er_solver::solve::Budget;
use er_symex::SymConfig;

/// Workload size multiplier: how much bulk (non-bug) work each run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub u32);

impl Scale {
    /// Small inputs for unit/integration tests.
    pub const TEST: Scale = Scale(1);
    /// Full-size runs for Table 1 (hundreds of thousands to millions of
    /// dynamic instructions).
    pub const FULL: Scale = Scale(40);
}

/// A registered evaluation workload.
pub struct Workload {
    /// Table-1 identifier, e.g. `"PHP-2012-2386"`.
    pub name: &'static str,
    /// Application and version, e.g. `"PHP 5.3.6"`.
    pub app: &'static str,
    /// Bug class as reported in Table 1.
    pub bug_type: &'static str,
    /// Whether the program is multithreaded.
    pub multithreaded: bool,
    /// Occurrences ER needs (by construction; matches the paper's column).
    pub expected_occurrences: u32,
    /// Builds the program source at a given scale.
    pub source: fn(Scale) -> String,
    /// Production input distribution: run index to environment.
    pub input_gen: fn(u64) -> Env,
    /// Performance-benchmark inputs (non-failing; Fig. 6).
    pub perf_gen: fn(u64) -> Env,
    /// Per-run scheduler configuration (None: deployment default).
    pub sched_gen: Option<fn(u64) -> SchedConfig>,
    /// Exact failing-run predictor `(offset, period)`: runs fail iff
    /// `run % period == offset`. Only single-threaded workloads have one —
    /// their failures are a pure function of the input stream — and it
    /// enables deploy fast-forward without changing which runs fail.
    /// Multithreaded failures are schedule-dependent, so `None`: every run
    /// must actually execute.
    pub failure_phase: Option<(u64, u64)>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

impl Workload {
    /// Compiles the workload's program at `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile (a bug in this
    /// crate, caught by tests).
    pub fn program(&self, scale: Scale) -> Program {
        er_minilang::compile(&(self.source)(scale))
            .unwrap_or_else(|e| panic!("workload {} does not compile: {e}", self.name))
    }

    /// A simulated production deployment of this workload.
    pub fn deployment(&self, scale: Scale) -> Deployment {
        let d = Deployment::new(self.program(scale), self.input_gen);
        match self.sched_gen {
            Some(s) => d.with_sched(s),
            None => d,
        }
    }

    /// The reoccurrence model fleet runs use: fast-forward past
    /// predictably healthy runs where the workload has an exact failure
    /// period, scan otherwise.
    pub fn reoccurrence_model(&self, inter_arrival_ns: u64) -> ReoccurrenceModel {
        ReoccurrenceModel {
            inter_arrival_ns,
            fast_forward: self.failure_phase.is_some(),
            predictor: self
                .failure_phase
                .map(|(offset, period)| NextFailing::Periodic { offset, period }),
        }
    }

    /// A deployment with the fleet reoccurrence model attached: identical
    /// occurrence sequence to [`deployment`](Self::deployment), but healthy
    /// runs between failures are skipped instead of executed where the
    /// failure period is known.
    pub fn fleet_deployment(&self, scale: Scale, inter_arrival_ns: u64) -> Deployment {
        self.deployment(scale)
            .with_reoccurrence(self.reoccurrence_model(inter_arrival_ns))
    }

    /// The ER configuration used in the evaluation: a deterministic budget
    /// small enough that symbolic-table stages stall (the analogue of the
    /// paper's 30-second solver timeout).
    pub fn er_config(&self) -> ErConfig {
        ErConfig {
            sym: SymConfig {
                solver_budget: Budget {
                    max_conflicts: 20_000,
                    max_array_cells: 3_000,
                    max_clauses: 1_000_000,
                },
                max_steps: 500_000_000,
                always_concretize: false,
                ..SymConfig::default()
            },
            final_budget: Budget {
                max_conflicts: 200_000,
                max_array_cells: 3_000,
                max_clauses: 2_000_000,
            },
            max_occurrences: 24,
            max_runs_per_occurrence: 50_000,
            ..ErConfig::default()
        }
    }
}

/// All thirteen Table-1 workloads, in the paper's row order.
pub fn all() -> Vec<Workload> {
    vec![
        apps::php_2012_2386(),
        apps::php_74194(),
        apps::sqlite_7be932d(),
        apps::sqlite_787fa71(),
        apps::sqlite_4e8e485(),
        apps::nasm_2004_1287(),
        apps::objdump_2018_6323(),
        apps::matrixssl_2014_1569(),
        apps::memcached_2019_11596(),
        apps::libpng_2004_0597(),
        apps::bash_108885(),
        apps::python_2018_1000030(),
        apps::pbzip2_094(),
    ]
}

/// Looks up a workload by its Table-1 name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_compile_at_test_scale() {
        let ws = all();
        assert_eq!(ws.len(), 13);
        for w in &ws {
            let p = w.program(Scale::TEST);
            assert!(p.static_instr_count() > 0, "{} is empty", w.name);
        }
    }

    #[test]
    fn names_are_unique_and_match_paper_rows() {
        let ws = all();
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 13);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 13);
        assert!(names.contains(&"Memcached-2019-11596"));
        assert!(names.contains(&"Pbzip2"));
    }

    #[test]
    fn expected_occurrences_average_matches_paper() {
        let ws = all();
        let total: u32 = ws.iter().map(|w| w.expected_occurrences).sum();
        let avg = f64::from(total) / 13.0;
        assert!(
            (3.0..4.0).contains(&avg),
            "paper reports ~3.5 average occurrences, got {avg}"
        );
        let single: usize = ws.iter().filter(|w| w.expected_occurrences == 1).count();
        assert_eq!(single, 2, "paper: 2/13 reproduce on first occurrence");
    }

    #[test]
    fn multithreaded_flags_match_table1() {
        let mt: Vec<&str> = all()
            .iter()
            .filter(|w| w.multithreaded)
            .map(|w| w.name)
            .collect();
        assert_eq!(
            mt,
            vec!["Memcached-2019-11596", "Python-2018-1000030", "Pbzip2"]
        );
    }

    #[test]
    fn perf_inputs_do_not_fail() {
        use er_minilang::interp::{Machine, RunOutcome};
        for w in all() {
            let p = w.program(Scale::TEST);
            for run in 0..3 {
                let env = (w.perf_gen)(run);
                let outcome = Machine::new(&p, env).run();
                assert!(
                    matches!(outcome.outcome, RunOutcome::Completed),
                    "{} perf run {run} failed: {:?}",
                    w.name,
                    outcome.outcome
                );
            }
        }
    }

    #[test]
    fn failure_kinds_match_table1_bug_types() {
        use er_core::instrument::InstrumentedProgram;
        use er_minilang::error::FailureKind;
        for w in all() {
            let d = w.deployment(Scale::TEST);
            let inst = InstrumentedProgram::unmodified(d.program());
            let occ = d
                .run_until_failure(&inst, None, 0, 2_000)
                .unwrap_or_else(|| panic!("{} must fail", w.name));
            let kind = occ.failure.fault.kind();
            let expected = match w.bug_type {
                "NULL pointer dereference" => FailureKind::NullDeref,
                "Use-after-free" => FailureKind::MemoryCorruption,
                // Overflows/overruns/corruptions are latent: the crash is
                // the downstream integrity check.
                _ => FailureKind::Assertion,
            };
            assert_eq!(kind, expected, "{}: {:?}", w.name, occ.failure.fault);
        }
    }

    #[test]
    fn table1_metadata_matches_paper_rows() {
        let expect: &[(&str, &str, u32)] = &[
            ("PHP-2012-2386", "Integer overflow", 6),
            ("PHP-74194", "Heap buffer overflow", 10),
            ("SQLite-7be932d", "NULL pointer dereference", 3),
            ("SQLite-787fa71", "Inconsistent data-structure", 4),
            ("SQLite-4e8e485", "NULL pointer dereference", 3),
            ("Nasm-2004-1287", "Stack buffer overrun", 3),
            ("Objdump-2018-6323", "Integer overflow", 3),
            ("Matrixssl-2014-1569", "Stack buffer overrun", 6),
            ("Memcached-2019-11596", "NULL pointer dereference", 2),
            ("Libpng-2004-0597", "Buffer overflow", 1),
            ("Bash-108885", "NULL pointer dereference", 1),
            ("Python-2018-1000030", "Shared data corruption", 2),
            ("Pbzip2", "Use-after-free", 2),
        ];
        let ws = all();
        for ((name, bug, occ), w) in expect.iter().zip(&ws) {
            assert_eq!(w.name, *name);
            assert_eq!(w.bug_type, *bug, "{name}");
            assert_eq!(w.expected_occurrences, *occ, "{name}");
        }
    }

    #[test]
    fn scale_changes_instruction_volume() {
        use er_core::instrument::InstrumentedProgram;
        let w = by_name("Objdump-2018-6323").unwrap();
        let count = |scale: Scale| {
            let d = w.deployment(scale);
            let inst = InstrumentedProgram::unmodified(d.program());
            d.run_until_failure(&inst, None, 0, 2_000)
                .unwrap()
                .instr_count
        };
        let small = count(Scale::TEST);
        let big = count(Scale(8));
        assert!(
            big > small * 4,
            "scale 8 should be much bigger: {small} vs {big}"
        );
    }

    #[test]
    fn failure_phase_predictors_are_exact() {
        // The predictor contract (deploy fast-forward) is that *every* run
        // it skips is healthy and every failing run lands on the period.
        // Scan the first 30 runs of each single-threaded workload and
        // compare the observed failing set against the declared phase.
        use er_minilang::interp::{Machine, RunOutcome};
        for w in all() {
            let Some((offset, period)) = w.failure_phase else {
                assert!(w.multithreaded, "{}: only MT workloads may omit", w.name);
                continue;
            };
            assert!(!w.multithreaded, "{}: MT failures are not periodic", w.name);
            let p = w.program(Scale::TEST);
            for run in 0..30u64 {
                let failed = matches!(
                    Machine::new(&p, (w.input_gen)(run)).run().outcome,
                    RunOutcome::Failure(_)
                );
                assert_eq!(
                    failed,
                    run % period == offset,
                    "{}: run {run} contradicts phase ({offset}, {period})",
                    w.name
                );
            }
        }
    }

    #[test]
    fn fleet_deployment_matches_plain_occurrences() {
        use er_core::instrument::InstrumentedProgram;
        let w = by_name("Libpng-2004-0597").unwrap();
        let plain = w.deployment(Scale::TEST);
        let fast = w.fleet_deployment(Scale::TEST, 1_000);
        let inst = InstrumentedProgram::unmodified(plain.program());
        let mut at = 0;
        for _ in 0..3 {
            let a = plain.run_until_failure(&inst, None, at, 1_000).unwrap();
            let b = fast.run_until_failure(&inst, None, at, 1_000).unwrap();
            assert_eq!(a.run_index, b.run_index);
            assert_eq!(a.pt_stats.bytes, b.pt_stats.bytes);
            at = a.run_index + 1;
        }
    }

    #[test]
    fn production_inputs_eventually_fail() {
        use er_core::instrument::InstrumentedProgram;
        for w in all() {
            let d = w.deployment(Scale::TEST);
            let inst = InstrumentedProgram::unmodified(d.program());
            let occ = d.run_until_failure(&inst, None, 0, 2_000);
            assert!(occ.is_some(), "{} never fails in 2000 runs", w.name);
        }
    }
}
