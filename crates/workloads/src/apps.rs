//! The thirteen Table-1 bug programs.
//!
//! Shared idioms:
//!
//! * **Bulk work** — every program calls `crunch(@BULK@)`, a concrete
//!   FNV-style loop whose bound is baked in at compile time from the
//!   [`Scale`], giving each workload its Table-1-like dynamic instruction
//!   count without adding symbolic state.
//! * **Symbolic table stages** — a store through a masked symbolic index
//!   into a table followed by a branch on a symbolic read of the same
//!   table. Each stage costs shepherded symbolic execution one solver
//!   stall, so a bug behind `k` stages reproduces in `k + 1` occurrences
//!   (the Table-1 `#Occur` column is engineered this way).
//! * **Failure alignment** — the production input generator aligns every
//!   stage's probe key with its store key on a fraction of runs; only those
//!   runs can reach the bug.

use crate::{Scale, Workload};
use er_minilang::env::Env;
use er_minilang::interp::SchedConfig;

/// The concrete bulk-work function shared by all programs.
const CRUNCH: &str = r#"
fn crunch(n: u64) -> u64 {
    let h: u64 = 14695981039346656037;
    for i: u64 = 0; i < n; i = i + 1 {
        h = (h ^ i) * 1099511628211;
        h = h ^ (h >> 33);
    }
    return h;
}
"#;

fn render(template: &str, scale: Scale, base: u64) -> String {
    let bulk = base * u64::from(scale.0);
    format!("{CRUNCH}{}", template.replace("@BULK@", &bulk.to_string()))
}

/// Splitmix-style hash for reproducible pseudo-random inputs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Emits `n` unrolled decoy statements: each reads fresh input (stream 2)
/// and stores it, tainting the constraint graph with symbolic values that
/// are irrelevant to the failure. Real programs carry large amounts of such
/// state; it is what makes the §5.2 random-recording ablation hard (each
/// decoy is a distinct static site competing for the recording budget).
fn decoy_block(n: u32) -> String {
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!(
            "    DECOYS[{}] = input_u64(2) ^ {};\n",
            i % 64,
            0x5151 + u64::from(i) * 97
        ));
    }
    out
}

fn push_decoys(env: &mut Env, run: u64, n: u32) {
    for i in 0..n {
        env.push_input(2, &mix(run ^ (u64::from(i) << 32)).to_le_bytes());
    }
}

/// Pushes `stages` (key, probe) u64 pairs onto stream 0; probes equal keys
/// exactly when `align` is true.
fn push_stage_keys(env: &mut Env, run: u64, stages: u32, align: bool) {
    for s in 0..stages {
        let k = mix(run.wrapping_mul(31).wrapping_add(u64::from(s)));
        let p = if align { k } else { k ^ 1 };
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &p.to_le_bytes());
    }
}

fn staged_inputs(stages: u32, period: u64, decoys: u32) -> impl Fn(u64) -> Env {
    move |run| {
        let mut env = Env::new();
        push_decoys(&mut env, run, decoys);
        push_stage_keys(&mut env, run, stages, run % period == period - 1);
        env
    }
}

fn staged_perf(stages: u32, decoys: u32) -> fn(u64) -> Env {
    // Stored per-arity via a small trampoline table to stay a fn pointer.
    match (stages, decoys) {
        (2, 2) => |run| {
            let mut env = Env::new();
            push_decoys(&mut env, run, 2);
            push_stage_keys(&mut env, run, 2, false);
            env
        },
        (2, _) => |run| {
            let mut env = Env::new();
            push_decoys(&mut env, run, 40);
            push_stage_keys(&mut env, run, 2, false);
            env
        },
        (3, _) => |run| {
            let mut env = Env::new();
            push_decoys(&mut env, run, 40);
            push_stage_keys(&mut env, run, 3, false);
            env
        },
        (5, _) => |run| {
            let mut env = Env::new();
            push_decoys(&mut env, run, 40);
            push_stage_keys(&mut env, run, 5, false);
            env
        },
        (9, _) => |run| {
            let mut env = Env::new();
            push_decoys(&mut env, run, 40);
            push_stage_keys(&mut env, run, 9, false);
            env
        },
        _ => |_| Env::new(),
    }
}

fn staged_prod(stages: u32, decoys: u32) -> fn(u64) -> Env {
    // fn-pointer trampolines per (stages, decoys) combination in use.
    match (stages, decoys) {
        (2, 2) => |run| staged_inputs(2, 5, 2)(run),
        (2, _) => |run| staged_inputs(2, 5, 40)(run),
        (3, _) => |run| staged_inputs(3, 5, 40)(run),
        (5, _) => |run| staged_inputs(5, 5, 40)(run),
        (9, _) => |run| staged_inputs(9, 5, 40)(run),
        _ => |run| staged_inputs(1, 5, 40)(run),
    }
}

/// Emits `n` nested symbolic-table stages (after `decoys` decoy reads) and
/// the crash body innermost.
fn stages_src(n: u32, decoys: u32, crash_body: &str) -> String {
    let mut decls = String::from("global DECOYS: [u64; 64];\n");
    let mut open = String::new();
    let mut close = String::new();
    for s in 1..=n {
        decls.push_str(&format!("global T{s}: [u64; 256];\n"));
        open.push_str(&format!(
            r#"
    let k{s}: u64 = input_u64(0) & 255;
    let p{s}: u64 = input_u64(0) & 255;
    T{s}[k{s}] = {marker};
    if T{s}[p{s}] == {marker} {{
"#,
            marker = 40 + s
        ));
        close.push_str("    }\n");
    }
    let decoy = decoy_block(decoys);
    format!(
        r#"{decls}
fn main() {{
    print(crunch(@BULK@));
{decoy}
{open}
{crash_body}
{close}
    print(0);
}}
"#
    )
}

pub(crate) fn php_2012_2386() -> Workload {
    // Integer overflow: a 32-bit element-count × element-size computation
    // wraps, the undersized heap buffer is overrun, and the corrupted
    // allocation header is detected on free (arbitrary-code-execution CVE
    // modeled as a fail-stop corruption check).
    fn source(scale: Scale) -> String {
        let crash = r#"
        let count: u32 = 0x1000_0010;
        let size: u32 = 16;
        let total: u32 = count * size;        // wraps to 0x100
        let buf: u64 = alloc(total as u64);
        let hdr: u64 = alloc(16);
        store64(hdr, 12648430);
        for i: u64 = 0; i < 272; i = i + 1 {  // writes past 0x100 bytes
            store8(buf + i, 65);
        }
        let magic: u64 = load64(hdr);
        assert(magic == 12648430, "allocator header corrupted");
        free(hdr);
        free(buf);
"#;
        render(&stages_src(5, 40, crash), scale, 11_000)
    }
    Workload {
        name: "PHP-2012-2386",
        app: "PHP 5.3.6",
        bug_type: "Integer overflow",
        multithreaded: false,
        expected_occurrences: 6,
        source,
        input_gen: staged_prod(5, 40),
        perf_gen: staged_perf(5, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn php_74194() -> Workload {
    // Heap buffer overflow while serializing an ArrayObject: nine rounds of
    // dictionary lookups (the Fig. 5 subject: the deepest stage pipeline)
    // followed by a serialization buffer overrun that corrupts the adjacent
    // object's length field, crashing on a bounds assertion.
    fn source(scale: Scale) -> String {
        let crash = r#"
        let payload: u64 = alloc(64);
        let meta: u64 = alloc(16);
        store64(meta, 64);
        for i: u64 = 0; i < 80; i = i + 1 {   // serializer writes 80 > 64
            store8(payload + i, 90);
        }
        let len: u64 = load64(meta);
        assert(len == 64, "serialized length field corrupted");
"#;
        render(&stages_src(9, 40, crash), scale, 12_000)
    }
    Workload {
        name: "PHP-74194",
        app: "PHP 7.1.6",
        bug_type: "Heap buffer overflow",
        multithreaded: false,
        expected_occurrences: 10,
        source,
        input_gen: staged_prod(9, 40),
        perf_gen: staged_perf(9, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn sqlite_7be932d() -> Workload {
    // NULL pointer dereference: the CLI's `.stats`/`.eqp` interaction leaves
    // a statement-table slot empty; executing through it dereferences null.
    fn source(scale: Scale) -> String {
        let crash = r#"
        var stmts: [u64; 16];
        stmts[3] = alloc(32);
        // The ".eqp" path resets a slot the ".stats" path still uses.
        stmts[3] = 0;
        let stmt: u64 = stmts[3];
        let opcode: u64 = load64(stmt);       // NULL deref
        print(opcode);
"#;
        render(&stages_src(2, 40, crash), scale, 2_900)
    }
    Workload {
        name: "SQLite-7be932d",
        app: "SQLite 3.27.0",
        bug_type: "NULL pointer dereference",
        multithreaded: false,
        expected_occurrences: 3,
        source,
        input_gen: staged_prod(2, 40),
        perf_gen: staged_perf(2, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn sqlite_787fa71() -> Workload {
    // Inconsistent data structure: a co-routine-style two-phase update
    // leaves a cursor's page/offset pair mismatched; the integrity assert
    // fires on the next access.
    fn source(scale: Scale) -> String {
        let crash = r#"
        global_page = 7;
        // Phase 2 of the multi-use subquery updates offset but the
        // co-routine path skips the matching page update.
        global_off = 7 * 256 + 64;
        global_page = 5;
        let page: u64 = global_page;
        let off: u64 = global_off;
        assert(off / 256 == page, "cursor page/offset inconsistent");
"#;
        let tmpl = format!(
            "global global_page: u64;\nglobal global_off: u64;\n{}",
            stages_src(3, 40, crash)
        );
        render(&tmpl, scale, 2_300)
    }
    Workload {
        name: "SQLite-787fa71",
        app: "SQLite 3.8.11",
        bug_type: "Inconsistent data-structure",
        multithreaded: false,
        expected_occurrences: 4,
        source,
        input_gen: staged_prod(3, 40),
        perf_gen: staged_perf(3, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn sqlite_4e8e485() -> Workload {
    // NULL pointer dereference: the OR-term WHERE-clause planner consults
    // an index-strategy table; the missing strategy entry is null.
    fn source(scale: Scale) -> String {
        let crash = r#"
        var strategies: [u64; 8];
        for s: u64 = 0; s < 7; s = s + 1 {
            strategies[s] = alloc(24);
        }
        // Strategy 7 (OR-term scan) was never registered.
        let chosen: u64 = strategies[7];
        let cost: u64 = load64(chosen + 8);   // NULL deref
        print(cost);
"#;
        render(&stages_src(2, 40, crash), scale, 2_500)
    }
    Workload {
        name: "SQLite-4e8e485",
        app: "SQLite 3.25.0",
        bug_type: "NULL pointer dereference",
        multithreaded: false,
        expected_occurrences: 3,
        source,
        input_gen: staged_prod(2, 40),
        perf_gen: staged_perf(2, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn nasm_2004_1287() -> Workload {
    // Stack buffer overrun: the `%error` preprocessor directive copies its
    // message into a fixed stack buffer without bounds checking; the
    // overrun tramples the adjacent parser-state array. The constraint
    // graph stays tiny, which is why even random data recording can solve
    // this one (paper §5.2).
    fn source(scale: Scale) -> String {
        let crash = r#"
        var msgbuf: [u8; 32];
        var state: [u8; 16];
        state[0] = 0;
        let msglen: u64 = 48;                 // directive message length
        for i: u64 = 0; i < msglen; i = i + 1 {
            msgbuf[i] = 88;                   // overruns into state
        }
        let mode: u8 = state[0];
        assert(mode == 0, "parser state trampled by %error directive");
"#;
        render(&stages_src(2, 2, crash), scale, 3_100)
    }
    Workload {
        name: "Nasm-2004-1287",
        app: "Nasm 0.98.34",
        bug_type: "Stack buffer overrun",
        multithreaded: false,
        expected_occurrences: 3,
        source,
        input_gen: staged_prod(2, 2),
        perf_gen: staged_perf(2, 2),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn objdump_2018_6323() -> Workload {
    // Integer overflow (shortest trace in Table 1): an ELF section's
    // `entsize * count` wraps in 32 bits, passing the sanity check, and the
    // relocation loop walks past the section end.
    fn source(scale: Scale) -> String {
        let crash = r#"
        let entsize: u32 = 0x4000_0001;
        let cnt: u32 = 4;
        let span: u32 = entsize * cnt;        // wraps to 4
        assert(span <= 64, "section span sanity check");
        var section: [u8; 64];
        var relocs: [u8; 16];
        relocs[0] = 0;
        for i: u64 = 0; i < 80; i = i + 1 {   // walks past section end
            section[i] = 7;
        }
        let tag: u8 = relocs[0];
        assert(tag == 0, "relocation table overwritten");
"#;
        render(&stages_src(2, 40, crash), scale, 670)
    }
    Workload {
        name: "Objdump-2018-6323",
        app: "Objdump 2.26",
        bug_type: "Integer overflow",
        multithreaded: false,
        expected_occurrences: 3,
        source,
        input_gen: staged_prod(2, 40),
        perf_gen: staged_perf(2, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn matrixssl_2014_1569() -> Workload {
    // Stack buffer overrun while parsing x.509 certificate lengths. The
    // corruption happens early and the crash only fires after the bulk of
    // the handshake (the paper measures the patch site ~3M instructions
    // before the failure) — a latent bug by construction: note the second
    // crunch between corruption and detection.
    fn source(scale: Scale) -> String {
        let crash = r#"
        var oidbuf: [u8; 24];
        var issuer: [u8; 16];
        issuer[0] = 0;
        let oidlen: u64 = 40;                 // attacker-controlled length
        for i: u64 = 0; i < oidlen; i = i + 1 {
            oidbuf[i] = 66;                   // tramples issuer
        }
        print(crunch(@BULK@));                // latent distance
        let tag: u8 = issuer[0];
        assert(tag == 0, "issuer field corrupted during OID parse");
"#;
        render(&stages_src(5, 40, crash), scale, 4_600)
    }
    Workload {
        name: "Matrixssl-2014-1569",
        app: "Matrixssl 4.0.1",
        bug_type: "Stack buffer overrun",
        multithreaded: false,
        expected_occurrences: 6,
        source,
        input_gen: staged_prod(5, 40),
        perf_gen: staged_perf(5, 40),
        sched_gen: None,
        failure_phase: Some((4, 5)),
    }
}

pub(crate) fn memcached_2019_11596() -> Workload {
    // Multithreaded NULL pointer dereference: a worker evicting an item
    // momentarily nulls its pointer-table slot; a racing lookup on the main
    // thread dereferences the null pointer (coarse interleaving: the
    // eviction window spans hundreds of instructions).
    fn source(scale: Scale) -> String {
        let decoy = decoy_block(32);
        let tmpl = r#"
global DECOYS: [u64; 64];
global PTRS: [u64; 256];
global HASH: [u64; 256];

fn evictor(key: u64) {
    let slot: u64 = key & 255;
    PTRS[slot] = 0;
    let acc: u64 = 0;
    for i: u64 = 0; i < 900; i = i + 1 { acc = acc + i; }
    PTRS[slot] = alloc(32);
    print(acc);
}

fn main() {
    print(crunch(@BULK@));
@DECOYS@
    let k: u64 = input_u64(0) & 255;
    let p: u64 = input_u64(0) & 255;
    PTRS[k] = alloc(32);
    HASH[k] = 41;
    let t: u64 = spawn evictor(k);
    let spin: u64 = 0;
    for i: u64 = 0; i < 250; i = i + 1 { spin = spin + 2; }
    print(spin);
    if HASH[p] == 41 {
        let item: u64 = PTRS[p];
        let flags: u64 = load64(item);        // NULL deref during eviction
        print(flags);
    }
    join(t);
    print(0);
}
"#;
        render(&tmpl.replace("@DECOYS@", &decoy), scale, 3_800)
    }
    fn inputs(run: u64) -> Env {
        let mut env = Env::new();
        push_decoys(&mut env, run, 32);
        let k = mix(run);
        let aligned = !run.is_multiple_of(3); // races need many aligned attempts
        let p = if aligned { k } else { k ^ 1 };
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &p.to_le_bytes());
        env
    }
    fn perf(run: u64) -> Env {
        let mut env = Env::new();
        push_decoys(&mut env, run, 32);
        let k = mix(run);
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &(k ^ 1).to_le_bytes());
        env
    }
    fn sched(run: u64) -> SchedConfig {
        SchedConfig {
            quantum: 400,
            seed: run + 1,
            max_instrs: 500_000_000,
        }
    }
    Workload {
        name: "Memcached-2019-11596",
        app: "Memcached 1.5.13",
        bug_type: "NULL pointer dereference",
        multithreaded: true,
        expected_occurrences: 2,
        source,
        input_gen: inputs,
        perf_gen: perf,
        sched_gen: Some(sched),
        failure_phase: None,
    }
}

pub(crate) fn libpng_2004_0597() -> Workload {
    // Buffer overflow reproducible from control flow alone (one of the two
    // single-occurrence rows): a chunk's declared length is not validated
    // against the row buffer, and the copy tramples the palette sentinel.
    fn source(scale: Scale) -> String {
        let tmpl = r#"
fn main() {
    print(crunch(@BULK@));
    let chunk_len: u32 = input_u32(0);
    var row: [u8; 48];
    var palette: [u8; 80];
    palette[0] = 0;
    let n: u32 = chunk_len & 127;
    for i: u32 = 0; i < n; i = i + 1 {
        row[i] = input_u8(0);
    }
    let sentinel: u8 = palette[0];
    assert(sentinel == 0, "palette corrupted by oversized chunk");
    print(n);
}
"#;
        render(tmpl, scale, 150)
    }
    fn inputs(run: u64) -> Env {
        let mut env = Env::new();
        // Every 4th request carries an oversized chunk with nonzero bytes.
        let n: u32 = if run % 4 == 3 { 80 } else { 32 };
        env.push_input(0, &n.to_le_bytes());
        for i in 0..(n & 127) {
            env.push_input(0, &[(mix(run + u64::from(i)) as u8) | 1]);
        }
        env
    }
    fn perf(run: u64) -> Env {
        let mut env = Env::new();
        env.push_input(0, &32u32.to_le_bytes());
        for i in 0..32 {
            env.push_input(0, &[mix(run + i) as u8]);
        }
        env
    }
    Workload {
        name: "Libpng-2004-0597",
        app: "Libpng 1.2.5",
        bug_type: "Buffer overflow",
        multithreaded: false,
        expected_occurrences: 1,
        source,
        input_gen: inputs,
        perf_gen: perf,
        sched_gen: None,
        failure_phase: Some((3, 4)),
    }
}

pub(crate) fn bash_108885() -> Workload {
    // NULL pointer dereference from a 4-byte script (the second
    // single-occurrence row): the here-doc redirection parser follows an
    // uninitialized word-descriptor pointer.
    fn source(scale: Scale) -> String {
        let tmpl = r#"
global WORD_DESC: u64;

fn main() {
    print(crunch(@BULK@));
    let c0: u8 = input_u8(0);
    let c1: u8 = input_u8(0);
    let c2: u8 = input_u8(0);
    let c3: u8 = input_u8(0);
    // "<<<\n": here-string with an empty word.
    if c0 == 60 && c1 == 60 && c2 == 60 && c3 == 10 {
        let w: u64 = WORD_DESC;               // never initialized: 0
        let first: u8 = load8(w);             // NULL deref
        print(first);
    }
    print(1);
}
"#;
        render(tmpl, scale, 1_800)
    }
    fn inputs(run: u64) -> Env {
        let mut env = Env::new();
        let bytes: [u8; 4] = if run % 6 == 5 {
            [60, 60, 60, 10]
        } else {
            [101, 99, 104, 111] // "echo"
        };
        env.push_input(0, &bytes);
        env
    }
    fn perf(_run: u64) -> Env {
        let mut env = Env::new();
        env.push_input(0, &[108, 115, 32, 10]); // "ls \n"
        env
    }
    Workload {
        name: "Bash-108885",
        app: "Bash 4.3.30",
        bug_type: "NULL pointer dereference",
        multithreaded: false,
        expected_occurrences: 1,
        source,
        input_gen: inputs,
        perf_gen: perf,
        sched_gen: None,
        failure_phase: Some((5, 6)),
    }
}

pub(crate) fn python_2018_1000030() -> Workload {
    // Multithreaded shared-data corruption (CVE-2018-1000030): the file
    // object's readahead buffer position/length pair is updated
    // non-atomically by a refilling thread, and a racing reader observes
    // pos > len.
    fn source(scale: Scale) -> String {
        let decoy = decoy_block(32);
        let tmpl = r#"
global DECOYS: [u64; 64];
global RA_POS: u64;
global RA_LEN: u64;
global LOOKUP: [u64; 256];

fn refill(n: u64) {
    RA_LEN = 0;
    let acc: u64 = 0;
    for i: u64 = 0; i < 900; i = i + 1 { acc = acc + 3; }
    RA_LEN = (n & 255) + 512;
    RA_POS = 0;
    print(acc);
}

fn main() {
    print(crunch(@BULK@));
@DECOYS@
    let k: u64 = input_u64(0) & 255;
    let p: u64 = input_u64(0) & 255;
    RA_LEN = 512;
    RA_POS = k + 1;
    LOOKUP[k] = 41;
    let t: u64 = spawn refill(k);
    let spin: u64 = 0;
    for i: u64 = 0; i < 300; i = i + 1 { spin = spin + 1; }
    print(spin);
    if LOOKUP[p] == 41 {
        let pos: u64 = RA_POS;
        let len: u64 = RA_LEN;
        assert(pos <= len, "readahead buffer corrupted");
        print(pos);
    }
    join(t);
    print(0);
}
"#;
        render(&tmpl.replace("@DECOYS@", &decoy), scale, 75_000)
    }
    fn inputs(run: u64) -> Env {
        let mut env = Env::new();
        push_decoys(&mut env, run, 32);
        let k = mix(run ^ 0xbeef);
        let p = if !run.is_multiple_of(3) { k } else { k ^ 1 };
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &p.to_le_bytes());
        env
    }
    fn perf(run: u64) -> Env {
        let mut env = Env::new();
        push_decoys(&mut env, run, 32);
        let k = mix(run ^ 0xbeef);
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &(k ^ 1).to_le_bytes());
        env
    }
    fn sched(run: u64) -> SchedConfig {
        SchedConfig {
            quantum: 400,
            seed: run * 3 + 2,
            max_instrs: 500_000_000,
        }
    }
    Workload {
        name: "Python-2018-1000030",
        app: "Python 2.7.14",
        bug_type: "Shared data corruption",
        multithreaded: true,
        expected_occurrences: 2,
        source,
        input_gen: inputs,
        perf_gen: perf,
        sched_gen: Some(sched),
        failure_phase: None,
    }
}

pub(crate) fn pbzip2_094() -> Workload {
    // Multithreaded use-after-free: the consumer thread frees a compressed
    // chunk while the producer still holds its pointer and touches it to
    // update accounting.
    fn source(scale: Scale) -> String {
        let decoy = decoy_block(32);
        let tmpl = r#"
global DECOYS: [u64; 64];
global QUEUE: [u64; 128];
global TAGS: [u64; 128];

fn consumer(idx: u64) {
    let slot: u64 = idx & 127;
    let chunk: u64 = QUEUE[slot];
    let acc: u64 = 0;
    for i: u64 = 0; i < 400; i = i + 1 { acc = acc + 5; }
    free(chunk);
    print(acc);
}

fn main() {
    print(crunch(@BULK@));
@DECOYS@
    let k: u64 = input_u64(0) & 127;
    let p: u64 = input_u64(0) & 127;
    let chunk: u64 = alloc(64);
    QUEUE[k] = chunk;
    TAGS[k] = 41;
    if TAGS[p] == 41 {
        let t: u64 = spawn consumer(k);
        let spin: u64 = 0;
        for i: u64 = 0; i < 900; i = i + 1 { spin = spin + 7; }
        print(spin);
        let c: u64 = QUEUE[p];
        store64(c, 77);                      // use-after-free
        print(1);
        join(t);
    } else {
        let t2: u64 = spawn consumer(k);
        join(t2);
    }
    print(0);
}
"#;
        render(&tmpl.replace("@DECOYS@", &decoy), scale, 14_000)
    }
    fn inputs(run: u64) -> Env {
        let mut env = Env::new();
        push_decoys(&mut env, run, 32);
        let k = mix(run ^ 0xf00d);
        let p = if !run.is_multiple_of(3) { k } else { k ^ 1 };
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &p.to_le_bytes());
        env
    }
    fn perf(run: u64) -> Env {
        let mut env = Env::new();
        push_decoys(&mut env, run, 32);
        let k = mix(run ^ 0xf00d);
        env.push_input(0, &k.to_le_bytes());
        env.push_input(0, &(k ^ 1).to_le_bytes());
        env
    }
    fn sched(run: u64) -> SchedConfig {
        SchedConfig {
            quantum: 350,
            seed: run * 5 + 1,
            max_instrs: 500_000_000,
        }
    }
    Workload {
        name: "Pbzip2",
        app: "Pbzip2 0.9.4",
        bug_type: "Use-after-free",
        multithreaded: true,
        expected_occurrences: 2,
        source,
        input_gen: inputs,
        perf_gen: perf,
        sched_gen: Some(sched),
        failure_phase: None,
    }
}
