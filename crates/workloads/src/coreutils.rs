//! Mini coreutils (`od`, `pr`) for the §5.4 MIMIC case study.
//!
//! The paper's case study mines likely invariants from four successful
//! executions of each tool, then checks which invariants the failing
//! execution violates — once directly on the failing input, once on the
//! execution ER reconstructs. Both tools are written so their functions
//! take the numeric arguments Daikon-style invariant mining keys on.

use er_minilang::env::Env;
use er_minilang::ir::Program;

/// `od`-like octal dumper. The bug (gnu bug-coreutils 2007-08): a skip
/// offset larger than the input length wraps the remaining-byte count,
/// which the dump loop then trusts.
pub fn od_source() -> &'static str {
    r#"
global OUT: [u64; 64];

fn format_byte(b: u8, pos: u64) -> u64 {
    let hi: u8 = b / 64;
    let mid: u8 = (b / 8) % 8;
    let lo: u8 = b % 8;
    let word: u64 = (hi as u64) * 100 + (mid as u64) * 10 + (lo as u64);
    OUT[pos & 63] = word;
    return word;
}

fn dump(len: u64, skip: u64) -> u64 {
    let remaining: u64 = len - skip;      // wraps when skip > len
    assert(remaining <= len, "od: wrapped dump length");
    let emitted: u64 = 0;
    for i: u64 = 0; i < remaining; i = i + 1 {
        let b: u8 = input_u8(0);
        format_byte(b, i);
        emitted = emitted + 1;
    }
    return emitted;
}

fn main() {
    let len: u64 = input_u64(1);
    let skip: u64 = input_u64(1);
    let n: u64 = dump(len, skip);
    print(n);
}
"#
}

/// `pr`-like paginator. The bug (gnu bug-coreutils 2008-04): a column
/// count of zero reaches the per-column width division.
pub fn pr_source() -> &'static str {
    r#"
global PAGE: [u64; 128];

fn layout(width: u64, cols: u64) -> u64 {
    let colw: u64 = width / cols;          // divide by zero when cols == 0
    return colw;
}

fn emit_page(lines: u64, cols: u64, width: u64) -> u64 {
    if lines == 0 { return 0; }
    let colw: u64 = layout(width, cols);
    let cells: u64 = 0;
    for l: u64 = 0; l < lines; l = l + 1 {
        for c: u64 = 0; c < cols; c = c + 1 {
            PAGE[(l * cols + c) & 127] = colw;
            cells = cells + 1;
        }
    }
    return cells;
}

fn main() {
    let lines: u64 = input_u64(1);
    let cols: u64 = input_u64(1);
    let width: u64 = 72;
    let cells: u64 = emit_page(lines % 16, cols % 8, width);
    print(cells);
}
"#
}

/// Compiles the od program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (covered by tests).
pub fn od_program() -> Program {
    er_minilang::compile(od_source()).expect("od compiles")
}

/// Compiles the pr program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (covered by tests).
pub fn pr_program() -> Program {
    er_minilang::compile(pr_source()).expect("pr compiles")
}

/// Four successful od runs (dump lengths 4, 9, 16, 25 with valid skips).
pub fn od_passing_envs() -> Vec<Env> {
    [(8u64, 4u64), (12, 3), (20, 4), (30, 5)]
        .iter()
        .map(|&(len, skip)| {
            let mut env = Env::new();
            env.push_input(1, &len.to_le_bytes());
            env.push_input(1, &skip.to_le_bytes());
            for i in 0..(len - skip) {
                env.push_input(0, &[(i * 37 + 11) as u8]);
            }
            env
        })
        .collect()
}

/// The failing od input: skip exceeds length, wrapping the count.
pub fn od_failing_env() -> Env {
    let mut env = Env::new();
    env.push_input(1, &4u64.to_le_bytes());
    env.push_input(1, &40u64.to_le_bytes());
    env
}

/// Four successful pr runs.
pub fn pr_passing_envs() -> Vec<Env> {
    [(5u64, 2u64), (8, 3), (10, 4), (12, 1)]
        .iter()
        .map(|&(lines, cols)| {
            let mut env = Env::new();
            env.push_input(1, &lines.to_le_bytes());
            env.push_input(1, &cols.to_le_bytes());
            env
        })
        .collect()
}

/// The failing pr input: a column count that reduces to zero.
pub fn pr_failing_env() -> Env {
    let mut env = Env::new();
    env.push_input(1, &6u64.to_le_bytes());
    env.push_input(1, &8u64.to_le_bytes()); // 8 % 8 == 0 columns
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::error::FailureKind;
    use er_minilang::interp::{Machine, RunOutcome};

    #[test]
    fn od_passes_then_fails() {
        let p = od_program();
        for env in od_passing_envs() {
            let r = Machine::new(&p, env).run();
            assert!(
                matches!(r.outcome, RunOutcome::Completed),
                "{:?}",
                r.outcome
            );
        }
        let r = Machine::new(&p, od_failing_env()).run();
        let RunOutcome::Failure(f) = r.outcome else {
            panic!("od must fail on wrapped skip")
        };
        assert_eq!(f.fault.kind(), FailureKind::Assertion);
    }

    #[test]
    fn pr_passes_then_fails() {
        let p = pr_program();
        for env in pr_passing_envs() {
            let r = Machine::new(&p, env).run();
            assert!(
                matches!(r.outcome, RunOutcome::Completed),
                "{:?}",
                r.outcome
            );
        }
        let r = Machine::new(&p, pr_failing_env()).run();
        let RunOutcome::Failure(f) = r.outcome else {
            panic!("pr must fail on zero columns")
        };
        assert_eq!(f.fault.kind(), FailureKind::Arithmetic);
    }
}
