//! Regression for the fleet pool's panic path: a panicking worker closure
//! used to poison its result slot and abort the entire round via
//! `expect("result slot poisoned")`. With `try_parallel_map`, a panic
//! costs exactly its own item — here, one of the 13 Table-1 workloads
//! blows up mid-closure while the other 12 still reproduce their failures.

use er_core::Reconstructor;
use er_fleet::pool::try_parallel_map;
use er_workloads::{all, Scale};

#[test]
fn one_panicking_workload_does_not_abort_the_round() {
    let workloads = all();
    assert_eq!(workloads.len(), 13, "Table 1 has 13 workloads");
    // The panicking "workload" stands in for any closure bug: a corrupted
    // report, an assertion in analysis code, an index out of bounds.
    let doomed = "PHP-74194";
    let results = try_parallel_map(&workloads, false, |_, w| {
        assert!(w.name != doomed, "injected workload panic");
        Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST))
    });
    assert_eq!(results.len(), 13);
    let mut reproduced = 0;
    let mut panicked = 0;
    for (w, r) in workloads.iter().zip(&results) {
        match r {
            Ok(report) => {
                assert!(report.reproduced(), "{}: must still reproduce", w.name);
                reproduced += 1;
            }
            Err(e) => {
                assert_eq!(w.name, doomed, "only the doomed workload may die");
                assert!(
                    e.message.contains("injected workload panic"),
                    "{}",
                    e.message
                );
                panicked += 1;
            }
        }
    }
    assert_eq!((reproduced, panicked), (12, 1));
}
