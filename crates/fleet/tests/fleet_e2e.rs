//! End-to-end fleet tests against the Table-1 workloads:
//!
//! * the fleet path reconstructs the same failure as the serial
//!   `Reconstructor::reconstruct` loop, with a **bit-identical test
//!   case** (mirrored traffic, any fleet size);
//! * parallel and `--serial` fleet runs are deterministic twins (same
//!   groups, same reconstruction results);
//! * mirrored replicas produce cross-occurrence dedup hits;
//! * backpressure and partial rollout degrade gracefully.

use er_core::Reconstructor;
use er_fleet::ingest::IngestConfig;
use er_fleet::sched::SchedulerConfig;
use er_fleet::sim::{Fleet, FleetConfig, FleetReport, FleetSpec, Traffic};
use er_workloads::{by_name, Scale, Workload};
use std::sync::Arc;

fn spec_for(w: &Workload, scale: Scale) -> FleetSpec {
    let input = w.input_gen;
    FleetSpec {
        program: w.program(scale),
        input_gen: Arc::new(input),
        sched_gen: w.sched_gen.map(|s| {
            let f: Arc<dyn Fn(u64) -> er_minilang::interp::SchedConfig + Send + Sync> = Arc::new(s);
            f
        }),
        pt: er_pt::PtConfig::default(),
        reoccurrence: w.reoccurrence_model(1_000),
        er: w.er_config(),
        label: w.name.to_string(),
    }
}

fn run_fleet(w: &Workload, config: FleetConfig) -> FleetReport {
    Fleet::new(spec_for(w, Scale::TEST), config).run()
}

/// One group's digest row: id, sightings, iterations, session
/// occurrences, reproduced flag, and the test-case inputs.
type GroupDigest = (u64, u64, u64, u32, bool, Vec<(u32, Vec<u8>)>);

/// Deterministic per-group digest: everything that must match between two
/// equivalent fleet runs.
fn digest(r: &FleetReport) -> Vec<GroupDigest> {
    let mut rows: Vec<_> = r
        .groups
        .iter()
        .map(|g| {
            (
                g.group,
                g.occurrences_seen,
                g.iterations,
                g.report.occurrences,
                g.report.reproduced(),
                g.report
                    .outcome
                    .test_case()
                    .map(|t| t.inputs.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn mirrored(instances: usize, serial: bool) -> FleetConfig {
    FleetConfig {
        instances,
        serial,
        traffic: Traffic::Mirrored,
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_matches_serial_reconstruction_bit_for_bit() {
    // One single-occurrence workload, one iterative (stall + rollout)
    // workload, one multithreaded workload — the three regimes.
    for name in ["Libpng-2004-0597", "PHP-74194", "Memcached-2019-11596"] {
        let w = &by_name(name).unwrap();
        let serial_report =
            Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
        assert!(serial_report.reproduced(), "{name}: serial path must work");
        let serial_tc = serial_report.outcome.test_case().unwrap();

        let fleet = run_fleet(w, mirrored(3, false));
        assert_eq!(fleet.groups.len(), 1, "{name}: one failure group");
        let g = &fleet.groups[0];
        assert!(
            g.report.reproduced(),
            "{name}: fleet outcome {:?}",
            g.report.outcome
        );
        assert_eq!(g.report.occurrences, serial_report.occurrences, "{name}");
        let fleet_tc = g.report.outcome.test_case().unwrap();
        assert_eq!(fleet_tc.inputs, serial_tc.inputs, "{name}: bit-identical");
        assert_eq!(fleet_tc.sched, serial_tc.sched, "{name}: same schedule");
        assert!(fleet_tc.verify(&w.program(Scale::TEST)).reproduced());
    }
}

#[test]
fn parallel_and_serial_fleets_are_deterministic_twins() {
    for name in ["Libpng-2004-0597", "PHP-74194"] {
        let w = &by_name(name).unwrap();
        let par = run_fleet(w, mirrored(3, false));
        let ser = run_fleet(w, mirrored(3, true));
        assert_eq!(digest(&par), digest(&ser), "{name}");
        assert_eq!(par.store.dedup_hits, ser.store.dedup_hits, "{name}");
        assert_eq!(par.runs_observed, ser.runs_observed, "{name}");
    }
}

#[test]
fn mirrored_replicas_dedup_and_compress() {
    let w = &by_name("PHP-74194").unwrap();
    let fleet = run_fleet(w, mirrored(4, false));
    assert!(fleet.all_reproduced());
    // Every occurrence ships from 4 replicas; 3 of each are redundant.
    assert!(
        fleet.store.dedup_hits >= 3,
        "dedup hits: {}",
        fleet.store.dedup_hits
    );
    assert!(
        fleet.store.compression_ratio() > 1.5,
        "compression ratio: {:.2}",
        fleet.store.compression_ratio()
    );
}

#[test]
fn fleet_size_one_still_works() {
    let w = &by_name("Bash-108885").unwrap();
    let fleet = run_fleet(w, mirrored(1, true));
    assert!(fleet.all_reproduced());
    assert_eq!(fleet.store.dedup_hits, 0);
}

#[test]
fn backpressure_retries_instead_of_dropping() {
    let w = &by_name("PHP-74194").unwrap();
    let fleet = run_fleet(
        w,
        FleetConfig {
            ingest: IngestConfig { queue_cap: 1 },
            ..mirrored(4, false)
        },
    );
    assert!(fleet.all_reproduced(), "reproduction survives a tiny queue");
    assert!(
        fleet.ingest.backpressure > 0,
        "a 4-wide fleet against a 1-deep queue must push back"
    );
}

#[test]
fn partial_rollout_reconstructs_with_stale_drops() {
    // Only 1 of 4 instances gets each re-instrumented binary; the other
    // replicas keep shipping stale-version traces that must be counted
    // and dropped, not consumed.
    let w = &by_name("PHP-74194").unwrap();
    let serial_report = Reconstructor::new(w.er_config()).reconstruct(&w.deployment(Scale::TEST));
    let fleet = run_fleet(
        w,
        FleetConfig {
            sched: SchedulerConfig {
                rollout: 0.25,
                ..SchedulerConfig::default()
            },
            ..mirrored(4, false)
        },
    );
    assert!(fleet.all_reproduced());
    let tc = fleet.groups[0].report.outcome.test_case().unwrap();
    assert_eq!(
        tc.inputs,
        serial_report.outcome.test_case().unwrap().inputs,
        "rollout fraction must not change the reconstruction"
    );
}

#[test]
fn partitioned_traffic_reconstructs_per_group() {
    let w = &by_name("Libpng-2004-0597").unwrap();
    let fleet = run_fleet(
        w,
        FleetConfig {
            instances: 3,
            serial: false,
            traffic: Traffic::Partitioned,
            ..FleetConfig::default()
        },
    );
    assert_eq!(fleet.groups.len(), 1);
    assert!(fleet.groups[0].report.reproduced());
}

#[test]
fn healthy_program_reports_no_groups() {
    let w = &by_name("Libpng-2004-0597").unwrap();
    let mut spec = spec_for(w, Scale::TEST);
    // Replace the traffic with never-failing inputs (run 2 is healthy:
    // failures need run % 4 == 3).
    let input = w.input_gen;
    spec.input_gen = Arc::new(move |_| input(2));
    spec.reoccurrence.predictor = None;
    spec.reoccurrence.fast_forward = false;
    spec.er.max_runs_per_occurrence = 200;
    let report = Fleet::new(
        spec,
        FleetConfig {
            instances: 2,
            batch_runs: 50,
            ..FleetConfig::default()
        },
    )
    .run();
    assert!(report.groups.is_empty());
    assert!(!report.all_reproduced());
}
