//! End-to-end durability and supervision: a crashed durable fleet must
//! resume from its WAL and converge on the bit-identical answer; replaying
//! the same WAL twice must rebuild identical scheduler state; and the
//! watchdog must escalate stalled iterations without changing the answer —
//! or give up with a typed reason when its ladder is exhausted.
//!
//! Lives in its own integration-test binary because chaos arming is
//! process-global; every test takes the local mutex.

use er_core::reconstruct::{GiveUpReason, Outcome};
use er_durable::{CrashSignal, DurableEvent, Wal, WatchdogConfig};
use er_fleet::sched::{Scheduler, SchedulerConfig};
use er_fleet::sim::{Fleet, FleetConfig, FleetReport, FleetSpec, Traffic};
use er_fleet::{StoreConfig, TraceStore};
use er_solver::cancel::PhaseBudgets;
use er_workloads::{by_name, Scale, Workload};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec_for(w: &Workload) -> FleetSpec {
    let input = w.input_gen;
    FleetSpec {
        program: w.program(Scale::TEST),
        input_gen: Arc::new(input),
        sched_gen: w.sched_gen.map(|s| {
            let f: Arc<dyn Fn(u64) -> er_minilang::interp::SchedConfig + Send + Sync> = Arc::new(s);
            f
        }),
        pt: er_pt::PtConfig::default(),
        reoccurrence: w.reoccurrence_model(1_000),
        er: w.er_config(),
        label: w.name.to_string(),
    }
}

fn fleet_with(w: &Workload, durable: Option<PathBuf>, watchdog: Option<WatchdogConfig>) -> Fleet {
    Fleet::new(
        spec_for(w),
        FleetConfig {
            instances: 2,
            serial: true,
            traffic: Traffic::Mirrored,
            durable,
            sched: SchedulerConfig {
                watchdog,
                ..SchedulerConfig::default()
            },
            ..FleetConfig::default()
        },
    )
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("er-durable-e2e-{}-{name}", std::process::id()))
}

/// One group's answer row: group id, reproduced?, occurrences, test-case
/// inputs — everything a crash or a watchdog must not change.
type GroupAnswer = (u64, bool, u32, Vec<(u32, Vec<u8>)>);

fn answer(r: &FleetReport) -> Vec<GroupAnswer> {
    let mut rows: Vec<_> = r
        .groups
        .iter()
        .map(|g| {
            (
                g.group,
                g.report.reproduced(),
                g.report.occurrences,
                g.report
                    .outcome
                    .test_case()
                    .map(|t| t.inputs.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn durable_journal_does_not_change_the_answer() {
    let _l = chaos_lock();
    let w = &by_name("PHP-74194").unwrap();
    let clean = answer(&fleet_with(w, None, None).run());
    let path = tmp("journal.wal");
    let durable = answer(&fleet_with(w, Some(path.clone()), None).run());
    assert_eq!(durable, clean, "journaling must be invisible to the answer");

    let (_, events, info) = Wal::open(&path).expect("completed run leaves a clean WAL");
    assert_eq!(info.torn_bytes, 0);
    assert!(events
        .iter()
        .any(|e| matches!(e, DurableEvent::SessionStarted { .. })));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, DurableEvent::SymexCheckpoint { .. })),
        "multi-occurrence workload must journal symbex checkpoints"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, DurableEvent::PlanDeployed { .. })),
        "iterative workload must journal a rollout"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, DurableEvent::Terminal { reproduced, .. } if *reproduced)));
    std::fs::remove_file(&path).ok();
}

/// Satellite: recovery idempotence — replaying the same WAL twice yields
/// byte-identical scheduler state.
#[test]
fn replaying_the_same_wal_twice_rebuilds_identical_state() {
    let _l = chaos_lock();
    let w = &by_name("PHP-74194").unwrap();
    let path = tmp("idempotent.wal");
    let report = fleet_with(w, Some(path.clone()), None).run();
    assert!(report.all_reproduced());

    let recover = || {
        let (wal, events, _) = Wal::open(&path).expect("open");
        let mut store = TraceStore::new(StoreConfig::default());
        let sched = Scheduler::recover(
            w.er_config(),
            SchedulerConfig::default(),
            &w.program(Scale::TEST),
            wal,
            &events,
            &mut store,
        );
        let mut digest: Vec<_> = sched
            .groups()
            .map(|g| {
                (
                    g.id,
                    g.version,
                    g.next_run(),
                    g.occurrences_consumed(),
                    g.pending_len(),
                    g.sites().to_vec(),
                    g.report.as_ref().map(|r| {
                        (
                            r.reproduced(),
                            r.occurrences,
                            r.outcome.test_case().map(|t| t.inputs.clone()),
                        )
                    }),
                )
            })
            .collect();
        digest.sort_by_key(|row| row.0);
        digest
    };
    let first = recover();
    let second = recover();
    assert!(!first.is_empty(), "replay must rebuild the group");
    assert!(
        first.iter().all(|row| row.6.is_some()),
        "completed run replays to closed sessions"
    );
    assert_eq!(first, second, "recovery must be idempotent");
    std::fs::remove_file(&path).ok();
}

#[test]
fn kill_restart_resumes_and_matches_the_uncrashed_answer() {
    let _l = chaos_lock();
    let w = &by_name("PHP-74194").unwrap();
    let reference = answer(&fleet_with(w, None, None).run());
    let path = tmp("crash.wal");
    let fleet = fleet_with(w, Some(path.clone()), None);

    // Crash the scheduler mid-append: the 5th WAL append tears and the
    // "process" dies.
    let guard = er_chaos::arm(
        er_chaos::ChaosPlan::new(0xdead)
            .with(er_chaos::Fault::WalTear, er_chaos::FaultPolicy::at_nth(4)),
    );
    let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fleet.run()))
        .expect_err("armed tear must crash the run");
    drop(guard);
    assert!(
        crash.downcast_ref::<CrashSignal>().is_some(),
        "the crash carries the WAL position"
    );

    // Restart: replay the WAL, resume, converge.
    let resumed = fleet.resume().expect("resume after crash");
    assert!(resumed.all_reproduced(), "resumed run must converge");
    assert_eq!(
        answer(&resumed),
        reference,
        "bit-identical answer across kill-restart"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn watchdog_escalates_stalls_and_still_converges() {
    let _l = chaos_lock();
    let w = &by_name("PHP-74194").unwrap();
    let reference = answer(&fleet_with(w, None, None).run());
    // A shepherd budget far below one occurrence's symex step count: the
    // first attempts trip, the ladder scales 8x per rung, and some rung
    // is big enough.
    let wd = WatchdogConfig {
        budgets: PhaseBudgets {
            shepherd: 50,
            ..PhaseBudgets::unlimited()
        },
        escalation_factor: 8,
        max_escalations: 10,
    };
    let report = fleet_with(w, None, Some(wd)).run();
    assert!(
        report.groups.iter().any(|g| g.watchdog_escalations > 0),
        "a 50-step shepherd budget must trip at least once"
    );
    assert_eq!(
        answer(&report),
        reference,
        "cancelled iterations must leave no trace on the answer"
    );
}

#[test]
fn exhausted_watchdog_ladder_is_a_typed_give_up() {
    let _l = chaos_lock();
    let w = &by_name("Libpng-2004-0597").unwrap();
    // Escalation factor 1: budgets never grow, every retry trips, the cap
    // is reached, and the session must close with the typed reason — no
    // panic, no livelock.
    let wd = WatchdogConfig {
        budgets: PhaseBudgets {
            shepherd: 10,
            ..PhaseBudgets::unlimited()
        },
        escalation_factor: 1,
        max_escalations: 2,
    };
    let report = fleet_with(w, None, Some(wd)).run();
    assert_eq!(report.groups.len(), 1);
    let g = &report.groups[0];
    assert!(!g.report.reproduced());
    assert_eq!(g.watchdog_escalations, 2);
    match &g.report.outcome {
        Outcome::GaveUp(GiveUpReason::WatchdogExhausted { phase, escalations }) => {
            assert_eq!(*phase, "shepherd");
            assert_eq!(*escalations, 2);
        }
        other => panic!("expected WatchdogExhausted, got {other:?}"),
    }
}
