//! End-to-end fault injection against the fleet: delivery-side faults
//! (dropped/duplicated crash reports, spill I/O failures, worker panics)
//! must not change the reconstructed answer, and an all-faulty trace
//! stream must end in a typed give-up — never a panic.
//!
//! Lives in its own integration-test binary because chaos arming is
//! process-global; the tests serialize on a local mutex anyway so that
//! per-fault injection budgets are not stolen across tests.

use er_fleet::sim::{Fleet, FleetConfig, FleetReport, FleetSpec, Traffic};
use er_fleet::StoreConfig;
use er_workloads::{by_name, Scale, Workload};
use std::sync::{Arc, Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec_for(w: &Workload) -> FleetSpec {
    let input = w.input_gen;
    FleetSpec {
        program: w.program(Scale::TEST),
        input_gen: Arc::new(input),
        sched_gen: w.sched_gen.map(|s| {
            let f: Arc<dyn Fn(u64) -> er_minilang::interp::SchedConfig + Send + Sync> = Arc::new(s);
            f
        }),
        pt: er_pt::PtConfig::default(),
        reoccurrence: w.reoccurrence_model(1_000),
        er: w.er_config(),
        label: w.name.to_string(),
    }
}

fn serial_fleet(w: &Workload, store: StoreConfig) -> FleetReport {
    Fleet::new(
        spec_for(w),
        FleetConfig {
            instances: 2,
            serial: true,
            traffic: Traffic::Mirrored,
            store,
            ..FleetConfig::default()
        },
    )
    .run()
}

/// One group's answer row: group id, reproduced?, test-case inputs.
type GroupAnswer = (u64, bool, Vec<(u32, Vec<u8>)>);

/// The per-group answer that faults must not change.
fn answer(r: &FleetReport) -> Vec<GroupAnswer> {
    let mut rows: Vec<_> = r
        .groups
        .iter()
        .map(|g| {
            (
                g.group,
                g.report.reproduced(),
                g.report
                    .outcome
                    .test_case()
                    .map(|t| t.inputs.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn delivery_faults_do_not_change_the_answer() {
    let _l = chaos_lock();
    for name in ["Libpng-2004-0597", "PHP-74194"] {
        let w = &by_name(name).unwrap();
        let clean = answer(&serial_fleet(w, StoreConfig::default()));
        assert!(
            clean.iter().all(|(_, repro, _)| *repro),
            "{name}: clean run"
        );

        // Ingest drops + duplicates + worker panics, all bounded.
        let plan = er_chaos::ChaosPlan::new(0xfee1)
            .with(
                er_chaos::Fault::IngestDrop,
                er_chaos::FaultPolicy::always(2),
            )
            .with(
                er_chaos::Fault::IngestDuplicate,
                er_chaos::FaultPolicy::always(2),
            )
            .with(
                er_chaos::Fault::WorkerPanic,
                er_chaos::FaultPolicy::always(2),
            );
        let guard = er_chaos::arm(plan);
        let faulted = answer(&serial_fleet(w, StoreConfig::default()));
        let stats = er_chaos::stats().expect("armed");
        let ingest = stats.domain(er_chaos::Domain::Ingest);
        let pool = stats.domain(er_chaos::Domain::Pool);
        drop(guard);

        assert!(ingest.injected >= 1, "{name}: ingest faults must fire");
        assert!(pool.injected >= 1, "{name}: pool faults must fire");
        assert_eq!(
            ingest.injected,
            ingest.handled(),
            "{name}: every ingest fault accounted for"
        );
        assert_eq!(faulted, clean, "{name}: bit-identical answer under faults");
    }
}

#[test]
fn spill_faults_degrade_without_changing_the_answer() {
    let _l = chaos_lock();
    let w = &by_name("Libpng-2004-0597").unwrap();
    let spill = std::env::temp_dir().join(format!("er-chaos-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&spill).unwrap();
    // byte_budget 1: every stored trace goes through the spill path.
    let store = || StoreConfig {
        byte_budget: 1,
        spill_dir: Some(spill.clone()),
        ..StoreConfig::default()
    };
    let clean = answer(&serial_fleet(w, store()));

    let plan = er_chaos::ChaosPlan::new(0xd15c)
        .with(
            er_chaos::Fault::SpillWrite,
            er_chaos::FaultPolicy::always(2),
        )
        .with(er_chaos::Fault::SpillRead, er_chaos::FaultPolicy::always(2));
    let guard = er_chaos::arm(plan);
    let faulted = answer(&serial_fleet(w, store()));
    let stats = er_chaos::stats().expect("armed");
    let dom = stats.domain(er_chaos::Domain::Store);
    drop(guard);
    let _ = std::fs::remove_dir_all(&spill);

    assert!(dom.injected >= 1, "spill faults must fire");
    assert!(dom.handled() >= 1, "spill faults must be handled");
    assert_eq!(faulted, clean, "bit-identical answer under spill faults");
}

#[test]
fn all_faulty_traces_give_up_with_a_typed_reason() {
    let _l = chaos_lock();
    let w = &by_name("Libpng-2004-0597").unwrap();
    // Every shipped trace truncated: no occurrence survives, so the group
    // must close with a typed give-up — and nothing may panic.
    let plan = er_chaos::ChaosPlan::new(0xbad5).with(
        er_chaos::Fault::TraceTruncate,
        er_chaos::FaultPolicy::always(u64::MAX),
    );
    let guard = er_chaos::arm(plan);
    let report = serial_fleet(w, StoreConfig::default());
    let stats = er_chaos::stats().expect("armed");
    let injected = stats.domain(er_chaos::Domain::Trace).injected;
    drop(guard);

    assert!(injected >= 1, "trace faults must fire");
    for g in &report.groups {
        assert!(
            !g.report.reproduced(),
            "{}: cannot reproduce from all-truncated traces",
            g.label
        );
        let er_core::reconstruct::Outcome::GaveUp(reason) = &g.report.outcome else {
            panic!("{}: expected a typed give-up", g.label);
        };
        // The reason is typed; exactly which one depends on where the
        // truncation bit: decode error, divergence, or budget exhaustion.
        let _ = reason;
    }
}
