//! Trace ingestion: the bounded queue between producing instances and the
//! analysis side, and the drain that compresses, triages, and stores each
//! crash report.
//!
//! Ingestion is where the fleet pays its storage bill, so everything is
//! counted: truncated traces (ring wrapped / packets overwritten),
//! undecodable traces, backpressure rejections when the queue is full.
//! A rejected report is *not lost* — the producing instance's cursor does
//! not advance past the failing run, so the same occurrence is re-offered
//! next round (no group can lose its first occurrence to backpressure).

use crate::store::{TraceId, TraceStore};
use crate::triage::Triage;
use er_core::deploy::FailureOccurrence;
use er_core::reconstruct::OccurrenceInfo;
use std::collections::VecDeque;

/// Queue sizing.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Maximum crash reports held between drains; offers beyond this are
    /// rejected (backpressure).
    pub queue_cap: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { queue_cap: 64 }
    }
}

/// One instance's crash report: the occurrence plus which binary produced
/// it, so the scheduler can tell current-version occurrences from stale
/// ones.
#[derive(Debug)]
pub struct CrashReport {
    /// Reporting instance index.
    pub instance: usize,
    /// Group whose instrumented binary the instance ran; `None` for the
    /// uninstrumented baseline binary.
    pub for_group: Option<u64>,
    /// Instrumentation version of that binary (0 = uninstrumented).
    pub version: u32,
    /// The occurrence itself (global run coordinates).
    pub occ: FailureOccurrence,
}

/// An ingested occurrence parked for analysis: trace in the store, failure
/// routed to its group. `Clone` exists for duplicate-delivery fault
/// injection ([`er_chaos::Fault::IngestDuplicate`]).
#[derive(Debug, Clone)]
pub struct PendingOccurrence {
    /// Failure group this occurrence belongs to.
    pub group: u64,
    /// Binary provenance (see [`CrashReport`]).
    pub for_group: Option<u64>,
    /// Instrumentation version that produced the trace.
    pub version: u32,
    /// Stored compressed trace; `None` when the trace failed to decode
    /// (`error` says why) — delivered to the session as a decode failure,
    /// exactly like the serial path.
    pub trace: Option<TraceId>,
    /// Ring wrapped: the decoded stream starts with a gap.
    pub leading_gap: bool,
    /// Occurrence metadata for the session.
    pub info: OccurrenceInfo,
    /// Decode error, when `trace` is `None`.
    pub error: Option<String>,
}

/// Cumulative ingestion statistics (serialized into the fleet report).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct IngestStats {
    /// Reports accepted into the queue.
    pub accepted: u64,
    /// Reports rejected by backpressure (re-offered by the producer).
    pub backpressure: u64,
    /// Accepted reports whose ring wrapped or dropped packets.
    pub truncated: u64,
    /// Accepted reports whose trace failed to decode.
    pub decode_errors: u64,
    /// Reports dropped by injected packet loss (re-offered like
    /// backpressure) — 0 outside fault-injection runs.
    pub chaos_dropped: u64,
    /// Duplicate deliveries injected into a drain — 0 outside
    /// fault-injection runs.
    pub chaos_duplicates: u64,
}

/// The bounded ingest queue and its drain.
#[derive(Debug, Default)]
pub struct Ingestor {
    config: IngestConfig,
    queue: VecDeque<CrashReport>,
    stats: IngestStats,
}

impl Ingestor {
    /// An empty queue with the given capacity.
    pub fn new(config: IngestConfig) -> Ingestor {
        Ingestor {
            config,
            queue: VecDeque::new(),
            stats: IngestStats::default(),
        }
    }

    /// Offers one crash report. `false` means the queue is full and the
    /// producer must hold its cursor and retry after the next drain.
    pub fn offer(&mut self, report: CrashReport) -> bool {
        if er_chaos::inject(er_chaos::Fault::IngestDrop).is_some() {
            // Injected packet loss rides the backpressure contract: `false`
            // rolls the producer's cursor back, so the same occurrence is
            // re-executed and re-offered next round — nothing is lost.
            self.stats.chaos_dropped += 1;
            er_chaos::note_recovered(er_chaos::Domain::Ingest);
            return false;
        }
        if self.queue.len() >= self.config.queue_cap {
            self.stats.backpressure += 1;
            er_telemetry::counter!("fleet.ingest.backpressure").incr();
            return false;
        }
        self.stats.accepted += 1;
        er_telemetry::counter!("fleet.ingest.accepted").incr();
        self.queue.push_back(report);
        true
    }

    /// Queued reports awaiting the next drain.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Drains the queue: decodes, compresses, stores, and triages every
    /// queued report in deterministic `(run_index, instance)` order —
    /// independent of the thread interleaving that produced them — and
    /// returns the pending occurrences for the scheduler.
    pub fn drain(&mut self, triage: &mut Triage, store: &mut TraceStore) -> Vec<PendingOccurrence> {
        let mut batch: Vec<CrashReport> = self.queue.drain(..).collect();
        batch.sort_by_key(|r| (r.occ.run_index, r.instance));
        let mut out = Vec::with_capacity(batch.len());
        for report in batch {
            let info = OccurrenceInfo::of(&report.occ);
            if report.occ.trace.wrapped || report.occ.pt_stats.packets_dropped > 0 {
                self.stats.truncated += 1;
                er_telemetry::counter!("fleet.ingest.truncated").incr();
            }
            let (group, _new) = triage.classify(&info.failure, info.run_index);
            let (trace, leading_gap, error) = match report.occ.trace.packets() {
                Ok((packets, gap)) => {
                    let put = store.put(group, &packets, gap);
                    (Some(put.id), gap, None)
                }
                Err(e) => {
                    self.stats.decode_errors += 1;
                    er_telemetry::counter!("fleet.ingest.decode_errors").incr();
                    (None, false, Some(e.to_string()))
                }
            };
            let pending = PendingOccurrence {
                group,
                for_group: report.for_group,
                version: report.version,
                trace,
                leading_gap,
                info,
                error,
            };
            if er_chaos::inject(er_chaos::Fault::IngestDuplicate).is_some() {
                // Deliver the occurrence twice: the scheduler's run-index
                // watermark and duplicate checks drop the second copy, so a
                // double-delivered crash report costs nothing downstream.
                self.stats.chaos_duplicates += 1;
                er_chaos::note_recovered(er_chaos::Domain::Ingest);
                out.push(pending.clone());
            }
            out.push(pending);
        }
        out
    }
}
