//! The fleet simulator: M concurrent instances of one deployed program,
//! wired to ingestion, triage, the trace store, and the reconstruction
//! scheduler.
//!
//! The simulation advances in *rounds* of three phases:
//!
//! 1. **produce** — every instance runs production traffic from its cursor
//!    until its first failure or the batch cap, in parallel over the
//!    worker pool. Production pauses while analysis has a consumable
//!    occurrence queued, so no instance runs ahead of the binary its
//!    group's next iteration will deploy.
//! 2. **ingest** — queued crash reports drain in deterministic
//!    `(run, instance)` order: trace compressed into the content-addressed
//!    store (reoccurrences dedup), failure triaged to its group.
//! 3. **analyze** — the scheduler drives the highest-priority groups one
//!    reconstruction iteration each (bounded concurrency); a grown
//!    recording set bumps the group's version and rolls the new binary
//!    out to the instrumented slice of instances.
//!
//! Under [`Traffic::Mirrored`] every instance executes the *same* global
//! run stream — the model of one failing request class hitting all
//! replicas — which makes the consumed occurrence sequence, and therefore
//! the reconstructed test case, bit-identical to the serial
//! `Reconstructor::reconstruct` loop for any fleet size, while every
//! additional instance contributes one dedup hit per occurrence.
//! [`Traffic::Partitioned`] shards the stream (instance `i` owns runs
//! `i, i+M, …`) — more realistic, but reconstruction order then depends
//! on fleet size, so nothing is promised beyond per-group correctness.

use crate::ingest::{CrashReport, IngestConfig, IngestStats, Ingestor};
use crate::pool;
use crate::sched::{Scheduler, SchedulerConfig};
use crate::store::{StoreConfig, StoreStats, TraceStore};
use crate::triage::Triage;
use er_core::deploy::{Deployment, ReoccurrenceModel};
use er_core::instrument::InstrumentedProgram;
use er_core::reconstruct::{ErConfig, ReconstructionReport};
use er_durable::Wal;
use er_minilang::env::Env;
use er_minilang::interp::SchedConfig;
use er_minilang::ir::Program;
use er_pt::PtConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How production traffic maps onto instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Every instance executes the same global run stream.
    Mirrored,
    /// Instance `i` of `M` owns global runs `i, i+M, i+2M, …`.
    Partitioned,
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of concurrent instances (M).
    pub instances: usize,
    /// Run every phase single-threaded (the determinism baseline).
    pub serial: bool,
    /// Traffic model.
    pub traffic: Traffic,
    /// Production runs per instance per produce phase.
    pub batch_runs: u64,
    /// Safety cap on rounds.
    pub max_rounds: u64,
    /// Ingest queue sizing.
    pub ingest: IngestConfig,
    /// Trace-store retention policy.
    pub store: StoreConfig,
    /// Scheduler policy.
    pub sched: SchedulerConfig,
    /// Durable session WAL path. When set, [`Fleet::run`] journals every
    /// scheduler decision there and [`Fleet::resume`] can rebuild the
    /// investigation after a crash.
    pub durable: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            instances: 4,
            serial: false,
            traffic: Traffic::Mirrored,
            batch_runs: 2_000,
            max_rounds: 10_000,
            ingest: IngestConfig::default(),
            store: StoreConfig::default(),
            sched: SchedulerConfig::default(),
            durable: None,
        }
    }
}

/// What the fleet deploys: the program, its production traffic, and the
/// reconstruction configuration. Generators are shared (`Arc`) so each
/// instance can own a partition-shifted view of the same stream.
pub struct FleetSpec {
    /// The deployed program.
    pub program: Program,
    /// Global production input stream: run index to environment.
    pub input_gen: Arc<dyn Fn(u64) -> Env + Send + Sync>,
    /// Per-run scheduler configuration; `None` uses the deployment default.
    pub sched_gen: Option<Arc<dyn Fn(u64) -> SchedConfig + Send + Sync>>,
    /// PT tracing configuration.
    pub pt: PtConfig,
    /// Reoccurrence inter-arrival model (fast-forward only applies under
    /// [`Traffic::Mirrored`]; partitioned streams break the predictor's
    /// periodicity, so it is ignored there).
    pub reoccurrence: ReoccurrenceModel,
    /// Reconstruction configuration for every failure group.
    pub er: ErConfig,
    /// Telemetry/report label, e.g. the workload name.
    pub label: String,
}

impl std::fmt::Debug for FleetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSpec")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// One group's slice of the final report.
#[derive(Debug)]
pub struct FleetGroupReport {
    /// Group id (fault-signature hash).
    pub group: u64,
    /// Human label (`triage::FailureGroup::label`).
    pub label: String,
    /// Total sightings across instances, including deduplicated ones.
    pub occurrences_seen: u64,
    /// Reoccurrence rate, occurrences per 1000 observed runs.
    pub rate_per_mille: u64,
    /// Analyze iterations the group consumed.
    pub iterations: u64,
    /// Final instrumentation version.
    pub version: u32,
    /// Watchdog escalations taken (0 when unsupervised).
    pub watchdog_escalations: u32,
    /// The reconstruction outcome.
    pub report: ReconstructionReport,
}

/// The full fleet run record.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-group outcomes, by group id.
    pub groups: Vec<FleetGroupReport>,
    /// Rounds executed.
    pub rounds: u64,
    /// Global production runs observed (max instance cursor).
    pub runs_observed: u64,
    /// Store statistics.
    pub store: StoreStats,
    /// Ingestion statistics.
    pub ingest: IngestStats,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Wall time until the first verified reproduction, if any.
    pub time_to_first_repro: Option<Duration>,
}

impl FleetReport {
    /// Whether every group reproduced its failure.
    pub fn all_reproduced(&self) -> bool {
        !self.groups.is_empty() && self.groups.iter().all(|g| g.report.reproduced())
    }
}

struct Instance {
    /// Next *local* run index this instance would execute.
    cursor: u64,
}

/// The simulator.
pub struct Fleet {
    spec: FleetSpec,
    config: FleetConfig,
    deployments: Vec<Deployment>,
}

impl Fleet {
    /// Builds a fleet of `config.instances` deployments of `spec`.
    pub fn new(spec: FleetSpec, config: FleetConfig) -> Fleet {
        let m = config.instances.max(1) as u64;
        let mut deployments = Vec::with_capacity(config.instances);
        for i in 0..m {
            let input = spec.input_gen.clone();
            let gen: Box<dyn Fn(u64) -> Env + Send + Sync> = match config.traffic {
                Traffic::Mirrored => Box::new(move |run| input(run)),
                Traffic::Partitioned => Box::new(move |run| input(run * m + i)),
            };
            let mut d = Deployment::new(spec.program.clone(), gen).with_pt_config(spec.pt);
            if let Some(sg) = &spec.sched_gen {
                let sg = sg.clone();
                d = match config.traffic {
                    Traffic::Mirrored => d.with_sched(move |run| sg(run)),
                    Traffic::Partitioned => d.with_sched(move |run| sg(run * m + i)),
                };
            } else if config.traffic == Traffic::Partitioned {
                // Default schedule seeds by run index; shift it the same
                // way inputs are sharded so global run identity holds.
                d = d.with_sched(move |run| SchedConfig {
                    quantum: 1_000,
                    seed: run * m + i + 1,
                    max_instrs: 500_000_000,
                });
            }
            let reocc = match config.traffic {
                Traffic::Mirrored => spec.reoccurrence,
                // A periodic predictor over global runs is not periodic
                // over one shard; scan instead of mispredicting.
                Traffic::Partitioned => ReoccurrenceModel {
                    fast_forward: false,
                    predictor: None,
                    ..spec.reoccurrence
                },
            };
            deployments.push(d.with_reoccurrence(reocc));
        }
        Fleet {
            spec,
            config,
            deployments,
        }
    }

    fn global_run(&self, instance: usize, local: u64) -> u64 {
        match self.config.traffic {
            Traffic::Mirrored => local,
            Traffic::Partitioned => local * self.config.instances.max(1) as u64 + instance as u64,
        }
    }

    /// Runs the fleet to completion: until every discovered failure group
    /// closed its investigation, or production ran `er.max_runs_per_occurrence`
    /// runs past the last sighting without a reoccurrence, or the round cap.
    ///
    /// With [`FleetConfig::durable`] set, a fresh WAL is created at that
    /// path and every scheduler decision is journaled; if the WAL cannot
    /// be created the run proceeds without durability (logged).
    pub fn run(&self) -> FleetReport {
        let scheduler = Scheduler::new(self.spec.er, self.config.sched);
        let scheduler = match &self.config.durable {
            Some(path) => match Wal::create(path) {
                Ok(wal) => scheduler.with_wal(wal),
                Err(e) => {
                    er_telemetry::log!(
                        warn,
                        "durable WAL unavailable at {} ({e}); running without durability",
                        path.display()
                    );
                    scheduler
                }
            },
            None => scheduler,
        };
        self.drive(scheduler, TraceStore::new(self.config.store.clone()))
    }

    /// Restarts a crashed durable fleet: opens the WAL at
    /// [`FleetConfig::durable`] (truncating any torn tail), replays it
    /// into a recovered scheduler — re-deriving session state, symbex
    /// checkpoints, and watchdog ladders from the journaled occurrences —
    /// and drives the fleet to completion. Production cursors restart at
    /// zero: re-produced occurrences dedup in the content-addressed store
    /// and runs the recovered sessions already consumed are dropped at the
    /// scheduler's per-group run watermark, so nothing is double-counted.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the config has no durable path; otherwise the
    /// WAL-open I/O error.
    pub fn resume(&self) -> std::io::Result<FleetReport> {
        let path = self.config.durable.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "resume requires FleetConfig::durable",
            )
        })?;
        let _counters = er_telemetry::ensure_counters();
        er_telemetry::set_context(&self.spec.label);
        let (wal, events, info) = Wal::open(path)?;
        er_telemetry::log!(
            info,
            "resuming from {}: {} records ({} torn bytes truncated)",
            path.display(),
            info.records,
            info.torn_bytes
        );
        let mut store = TraceStore::new(self.config.store.clone());
        let scheduler = Scheduler::recover(
            self.spec.er,
            self.config.sched,
            &self.spec.program,
            wal,
            &events,
            &mut store,
        );
        er_telemetry::set_context("");
        Ok(self.drive(scheduler, store))
    }

    fn drive(&self, mut scheduler: Scheduler, mut store: TraceStore) -> FleetReport {
        let _counters = er_telemetry::ensure_counters();
        er_telemetry::set_context(&self.spec.label);
        let _span = er_telemetry::span!("fleet.run");
        let start = Instant::now();
        let m = self.config.instances.max(1);
        er_telemetry::counter!("fleet.instances").add(m as u64);

        let baseline = InstrumentedProgram::unmodified(&self.spec.program);
        let mut triage = Triage::new();
        let mut ingestor = Ingestor::new(self.config.ingest);
        let mut instances: Vec<Instance> = (0..m).map(|_| Instance { cursor: 0 }).collect();

        let mut rounds = 0u64;
        let mut time_to_first_repro = None;
        // Global runs observed at the last failure sighting; the give-up
        // budget counts from here.
        let mut last_sighting = 0u64;

        while rounds < self.config.max_rounds {
            rounds += 1;
            er_telemetry::counter!("fleet.rounds").incr();
            let _round = er_telemetry::span!("fleet.round");
            let runs_observed = self.runs_observed(&instances);

            // Produce, unless analysis still owes a queued occurrence its
            // iteration (pause keeps instances from running ahead of the
            // binary that iteration may roll out).
            let pause = scheduler.has_eligible_pending() || !ingestor.is_empty();
            if !pause {
                let _p = er_telemetry::span!("fleet.produce");
                let assignments: Vec<(Option<u64>, u32, InstrumentedProgram)> = (0..m)
                    .map(|i| scheduler.binary_for(i, m, runs_observed.max(1), &baseline))
                    .collect();
                let cursors: Vec<u64> = instances.iter().map(|s| s.cursor).collect();
                let label = self.spec.label.clone();
                let produced = pool::try_parallel_map(
                    &(0..m).collect::<Vec<usize>>(),
                    self.config.serial,
                    |_, &i| {
                        er_telemetry::set_context(&label);
                        let (_, _, inst) = &assignments[i];
                        let occ = self.deployments[i].run_until_failure(
                            inst,
                            None,
                            cursors[i],
                            self.config.batch_runs,
                        );
                        er_telemetry::set_context("");
                        occ
                    },
                );
                for (i, occ) in produced.into_iter().enumerate() {
                    match occ {
                        Err(panic) => {
                            // The producer worker died: nothing was
                            // observed, the cursor stays put, and the same
                            // batch re-runs (identically) next round.
                            er_telemetry::counter!("fleet.produce.worker_panics").incr();
                            er_telemetry::log!(
                                warn,
                                "produce worker died for instance {i}: {}",
                                panic.message
                            );
                            er_chaos::note_recovered(er_chaos::Domain::Pool);
                        }
                        Ok(Some(occ)) => {
                            er_telemetry::counter!("fleet.occurrences").incr();
                            let mut occ = occ;
                            instances[i].cursor = occ.run_index + 1;
                            occ.run_index = self.global_run(i, occ.run_index);
                            let (for_group, version, _) = &assignments[i];
                            let report = CrashReport {
                                instance: i,
                                for_group: *for_group,
                                version: *version,
                                occ,
                            };
                            if !ingestor.offer(report) {
                                // Backpressure: hold the cursor so the run
                                // re-executes and re-offers next round.
                                instances[i].cursor -= 1;
                            }
                        }
                        Ok(None) => instances[i].cursor += self.config.batch_runs,
                    }
                }
            }

            // Ingest: compress, store, triage, queue.
            {
                let _s = er_telemetry::span!("fleet.ingest");
                let pending = ingestor.drain(&mut triage, &mut store);
                if !pending.is_empty() {
                    last_sighting = self.runs_observed(&instances);
                }
                for p in &pending {
                    scheduler.note_group(
                        p.group,
                        &self.spec.program,
                        &self.label_for(p.group, &triage),
                    );
                }
                scheduler.enqueue(pending, &mut store);
                scheduler.update_rates(&triage);
            }

            // Analyze: bounded-concurrency reconstruction iterations.
            {
                let _s = er_telemetry::span!("fleet.analyze");
                let runs = self.runs_observed(&instances).max(1);
                let stepped = scheduler.analyze_round(&mut store, runs, self.config.serial);
                if time_to_first_repro.is_none()
                    && stepped.iter().any(|&(id, _)| {
                        scheduler
                            .groups()
                            .find(|g| g.id == id)
                            .and_then(|g| g.report.as_ref())
                            .is_some_and(|r| r.reproduced())
                    })
                {
                    time_to_first_repro = Some(start.elapsed());
                }
            }

            // Termination: all discovered investigations closed and
            // nothing in flight…
            let quiet = !scheduler.has_eligible_pending() && ingestor.is_empty();
            if quiet && !scheduler.any_open() && triage.groups().is_empty() {
                // no failures at all: give up after the serial loop's
                // budget of failure-free runs.
                if self.runs_observed(&instances) >= self.spec.er.max_runs_per_occurrence {
                    break;
                }
            } else if quiet && !scheduler.any_open() {
                break;
            } else if quiet
                && self.runs_observed(&instances).saturating_sub(last_sighting)
                    >= self.spec.er.max_runs_per_occurrence
            {
                // …or open groups starved of reoccurrences for the serial
                // loop's per-wait budget: close them as NoFailureObserved.
                scheduler.close_all(&mut store);
                break;
            }
        }
        scheduler.close_all(&mut store);

        let runs_observed = self.runs_observed(&instances);
        let groups = scheduler
            .into_states()
            .into_iter()
            .map(|mut g| {
                let t = triage.group(g.id);
                FleetGroupReport {
                    group: g.id,
                    label: t.map(|t| t.label()).unwrap_or_else(|| g.label.clone()),
                    occurrences_seen: g.occurrences_seen,
                    rate_per_mille: t
                        .map(|t| t.rate_per_mille(runs_observed.max(1)))
                        .unwrap_or(0),
                    iterations: g.iterations,
                    version: g.version,
                    watchdog_escalations: g.watchdog_escalations(),
                    report: g.report.take().expect("all groups closed"),
                }
            })
            .collect();
        let report = FleetReport {
            groups,
            rounds,
            runs_observed: self.runs_observed(&instances),
            store: store.stats(),
            ingest: ingestor.stats(),
            wall: start.elapsed(),
            time_to_first_repro,
        };
        // The journal reads the context at span close, and pool closures
        // (which can run on this thread) reset it: restore the label, close
        // the span so the fleet.run event carries it, then clear.
        er_telemetry::set_context(&self.spec.label);
        drop(_span);
        er_telemetry::set_context("");
        report
    }

    fn label_for(&self, group: u64, triage: &Triage) -> String {
        triage
            .group(group)
            .map(|g| format!("{}/{}", self.spec.label, g.label()))
            .unwrap_or_else(|| self.spec.label.clone())
    }

    /// Global runs observed so far: the furthest cursor under mirrored
    /// traffic (all instances see the same stream), the sum under
    /// partitioned (each run is distinct).
    fn runs_observed(&self, instances: &[Instance]) -> u64 {
        match self.config.traffic {
            Traffic::Mirrored => instances.iter().map(|s| s.cursor).max().unwrap_or(0),
            Traffic::Partitioned => instances.iter().map(|s| s.cursor).sum(),
        }
    }
}
