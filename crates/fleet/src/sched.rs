//! The concurrent reconstruction scheduler.
//!
//! One [`ReconstructionSession`] per failure group, parked between
//! reoccurrences. Each analyze round picks the highest-priority groups —
//! priority is reoccurrence rate × (1 + stall depth), i.e. "fails often
//! and still needs data" — and drives at most `max_concurrent` of them one
//! iteration each, fanning out over [`crate::pool::parallel_map`].
//!
//! Version discipline keeps the fleet path bit-identical to the serial
//! loop: a group only consumes occurrences produced by its *current*
//! instrumented binary, in run order, and never re-consumes a run it has
//! already advanced past. When an iteration grows the recording set, the
//! group's version bumps, queued stale occurrences are dropped (counted),
//! and the new binary rolls out to the instrumented slice of instances.

use crate::ingest::PendingOccurrence;
use crate::pool;
use crate::store::TraceStore;
use er_core::instrument::InstrumentedProgram;
use er_core::reconstruct::{
    ErConfig, GiveUpReason, ReconstructionReport, ReconstructionSession, SessionStep,
};
use er_minilang::ir::Program;
use er_pt::packets_to_events;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Reconstruction iterations driven concurrently per analyze round.
    pub max_concurrent: usize,
    /// Fraction of instances that receive a group's instrumented binary
    /// (at least one instance always does).
    pub rollout: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: 2,
            rollout: 1.0,
        }
    }
}

/// One failure group's investigation state.
#[derive(Debug)]
pub struct GroupState {
    /// Group id (signature hash).
    pub id: u64,
    /// Short label for telemetry context.
    pub label: String,
    /// Current instrumentation version (0 = uninstrumented).
    pub version: u32,
    session: ReconstructionSession,
    inst: InstrumentedProgram,
    pending: VecDeque<PendingOccurrence>,
    /// Runs at or below this index are already consumed; later-arriving
    /// occurrences of them are duplicates from other instances.
    next_run: u64,
    /// Final report, once the investigation closed.
    pub report: Option<ReconstructionReport>,
    /// Analyze rounds in which this group consumed an occurrence.
    pub iterations: u64,
    /// Total sightings across all instances (triage's count, including
    /// redundant ones) — the numerator of the reoccurrence rate.
    pub occurrences_seen: u64,
}

impl GroupState {
    /// Whether this group still wants occurrences.
    fn open(&self) -> bool {
        self.report.is_none() && self.session.wants_more()
    }

    /// The oldest queued occurrence consumable right now: produced by the
    /// current-version binary for this group (or the baseline binary while
    /// the group is still at version 0), at a run not yet consumed.
    fn next_eligible(&self) -> Option<usize> {
        self.pending.iter().position(|p| {
            p.version == self.version
                && (p.for_group.is_none() || p.for_group == Some(self.id))
                && p.info.run_index >= self.next_run
        })
    }

    /// Stall depth of the underlying session.
    pub fn stall_depth(&self) -> u32 {
        self.session.stall_depth()
    }
}

/// What one analyze iteration did to a group.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum StepOutcome {
    /// Consumed an occurrence; the group wants another under the same
    /// binary.
    NeedMore,
    /// Consumed an occurrence; the recording set grew and version bumped.
    Reinstrumented,
    /// The investigation closed (report available on the group).
    Closed,
}

/// The per-fleet scheduler.
#[derive(Debug)]
pub struct Scheduler {
    er: ErConfig,
    policy: SchedulerConfig,
    groups: BTreeMap<u64, GroupState>,
}

impl Scheduler {
    /// A scheduler creating sessions with `er` for every new group.
    pub fn new(er: ErConfig, policy: SchedulerConfig) -> Scheduler {
        Scheduler {
            er,
            policy,
            groups: BTreeMap::new(),
        }
    }

    /// Ensures a group exists, creating its session on first sight.
    pub fn note_group(&mut self, id: u64, program: &Program, label: &str) {
        let er = self.er;
        self.groups.entry(id).or_insert_with(|| {
            let session = ReconstructionSession::new(er, program.clone());
            let inst = session.instrumented();
            GroupState {
                id,
                label: label.to_string(),
                version: 0,
                session,
                inst,
                pending: VecDeque::new(),
                next_run: 0,
                report: None,
                iterations: 0,
                occurrences_seen: 0,
            }
        });
    }

    /// Refreshes each group's sighting count from the triage table (called
    /// after every drain, so priorities track live reoccurrence rates).
    pub fn update_rates(&mut self, triage: &crate::triage::Triage) {
        for g in self.groups.values_mut() {
            if let Some(t) = triage.group(g.id) {
                g.occurrences_seen = t.occurrences;
            }
        }
    }

    /// Queues drained occurrences on their groups, pinning their traces.
    /// Stale occurrences (old version, already-consumed run, or a
    /// duplicate of a queued one from another instance) are dropped
    /// immediately and counted.
    pub fn enqueue(&mut self, pending: Vec<PendingOccurrence>, store: &mut TraceStore) {
        for p in pending {
            let Some(g) = self.groups.get_mut(&p.group) else {
                continue; // group must be noted first
            };
            let stale = g.report.is_some()
                || p.version != g.version
                || (p.for_group.is_some() && p.for_group != Some(g.id))
                || p.info.run_index < g.next_run;
            let duplicate = g.pending.iter().any(|q| {
                q.version == p.version && q.info.run_index == p.info.run_index && q.trace == p.trace
            });
            if stale {
                er_telemetry::counter!("fleet.sched.stale_dropped").incr();
            } else if duplicate {
                er_telemetry::counter!("fleet.sched.redundant").incr();
            } else {
                if let Some(id) = p.trace {
                    store.pin(id);
                }
                g.pending.push_back(p);
            }
        }
    }

    /// Whether any open group has a consumable occurrence queued — the
    /// production pause signal: analysis must catch up before instances
    /// run further ahead.
    pub fn has_eligible_pending(&self) -> bool {
        self.groups
            .values()
            .any(|g| g.open() && g.next_eligible().is_some())
    }

    /// Whether any group's investigation is still open.
    pub fn any_open(&self) -> bool {
        self.groups.values().any(|g| g.open())
    }

    /// All groups, by id.
    pub fn groups(&self) -> impl Iterator<Item = &GroupState> {
        self.groups.values()
    }

    /// The binary instance `idx` of `total` should run right now: the
    /// highest-priority open group's current binary on the instrumented
    /// slice (`ceil(rollout × total)`, at least 1), the uninstrumented
    /// baseline elsewhere. Returns `(group, version, binary)`.
    pub fn binary_for(
        &self,
        idx: usize,
        total: usize,
        runs_observed: u64,
        baseline: &InstrumentedProgram,
    ) -> (Option<u64>, u32, InstrumentedProgram) {
        let instrumented = ((self.policy.rollout * total as f64).ceil() as usize).clamp(1, total);
        let lead = self
            .priority_order(runs_observed)
            .into_iter()
            .next()
            .and_then(|id| self.groups.get(&id));
        match lead {
            Some(g) if idx < instrumented && g.version > 0 => {
                (Some(g.id), g.version, g.inst.clone())
            }
            _ => (None, 0, baseline.clone()),
        }
    }

    /// Open groups in descending priority order: reoccurrence rate ×
    /// (1 + stall depth), rate in occurrences per 1000 observed runs.
    /// Ties break toward the smaller group id, so the order is total and
    /// deterministic.
    fn priority_order(&self, runs_observed: u64) -> Vec<u64> {
        let mut scored: Vec<(u64, u64)> = self
            .groups
            .values()
            .filter(|g| g.open())
            .map(|g| {
                let rate = g.occurrences_seen.max(1) * 1000 / runs_observed.max(1);
                let score = rate.max(1) * (1 + u64::from(g.stall_depth()));
                (score, g.id)
            })
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// Runs one analyze round: up to `max_concurrent` highest-priority
    /// groups each consume their oldest eligible occurrence, in parallel
    /// unless `serial`. Returns `(group, outcome)` per iteration driven.
    pub fn analyze_round(
        &mut self,
        store: &mut TraceStore,
        runs_observed: u64,
        serial: bool,
    ) -> Vec<(u64, StepOutcome)> {
        // Pick and detach the work: group state + its popped occurrence.
        let mut selected: Vec<(GroupState, PendingOccurrence)> = Vec::new();
        for id in self.priority_order(runs_observed) {
            if selected.len() >= self.policy.max_concurrent {
                break;
            }
            let g = self.groups.get_mut(&id).expect("scored group exists");
            if let Some(at) = g.next_eligible() {
                let p = g.pending.remove(at).expect("eligible index valid");
                let g = self.groups.remove(&id).expect("group present");
                selected.push((g, p));
            }
        }
        if selected.is_empty() {
            return Vec::new();
        }

        // Sessions of different groups are independent, so their
        // iterations run concurrently; the store is only read here.
        let work: Vec<Mutex<Option<(GroupState, PendingOccurrence)>>> =
            selected.into_iter().map(|w| Mutex::new(Some(w))).collect();
        let outcomes = pool::try_parallel_map(&work, serial, |_, slot| {
            let (mut g, p) = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("work present");
            let label = g.label.clone();
            er_telemetry::set_context(&label);
            let outcome = Self::run_iteration(&mut g, &p, store);
            er_telemetry::set_context("");
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((g, p));
            outcome
        });

        let mut out = Vec::with_capacity(outcomes.len());
        for (slot, outcome) in work.into_iter().zip(outcomes) {
            let slot = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (mut g, p, outcome) = match (outcome, slot) {
                // Normal completion: the worker put the state back.
                (Ok(outcome), Some((g, p))) => (g, p, outcome),
                (Err(panic), Some((mut g, p))) => {
                    // The worker died *before* touching the work (the pool
                    // kills at its boundary under chaos): group state and
                    // occurrence are intact, so requeue the occurrence and
                    // let a later round consume it. The trace stays pinned.
                    er_telemetry::counter!("fleet.sched.requeued").incr();
                    er_telemetry::log!(
                        warn,
                        "analyze worker died for group {:#x} ({}); occurrence requeued",
                        g.id,
                        panic.message
                    );
                    er_chaos::note_recovered(er_chaos::Domain::Pool);
                    g.pending.push_front(p);
                    self.groups.insert(g.id, g);
                    continue;
                }
                (_, None) => {
                    // The closure panicked mid-iteration: the session state
                    // unwound with it. The group is lost — log it, count
                    // it, and keep the round (and every other group) alive.
                    er_telemetry::counter!("fleet.sched.lost_groups").incr();
                    er_telemetry::log!(
                        warn,
                        "analyze worker panicked mid-iteration; group state lost"
                    );
                    er_chaos::note_typed_error(er_chaos::Domain::Pool);
                    continue;
                }
            };
            if let Some(id) = p.trace {
                store.unpin(id);
            }
            er_telemetry::counter!("fleet.sched.consumed").incr();
            match outcome {
                StepOutcome::Reinstrumented => {
                    er_telemetry::counter!("fleet.sched.rollouts").incr();
                    // Everything queued was produced by the old binary.
                    for stale in g.pending.drain(..) {
                        if let Some(id) = stale.trace {
                            store.unpin(id);
                        }
                        er_telemetry::counter!("fleet.sched.stale_dropped").incr();
                    }
                }
                StepOutcome::Closed => {
                    for rest in g.pending.drain(..) {
                        if let Some(id) = rest.trace {
                            store.unpin(id);
                        }
                    }
                }
                StepOutcome::NeedMore => {}
            }
            out.push((g.id, outcome));
            self.groups.insert(g.id, g);
        }
        out
    }

    /// One group iteration: retrieve the trace, flatten to events, feed
    /// the session. Mutates only `g`.
    fn run_iteration(g: &mut GroupState, p: &PendingOccurrence, store: &TraceStore) -> StepOutcome {
        let _iter = er_telemetry::span!("reconstruct.iteration");
        g.iterations += 1;
        g.next_run = p.info.run_index + 1;
        let step = match p.trace {
            Some(id) => match store.get(id) {
                Ok((packets, gap)) => {
                    let events = {
                        let _s = er_telemetry::span!("shepherd.decode");
                        packets_to_events(&packets, gap)
                    };
                    g.session.consume_events(&g.inst, p.info.clone(), events)
                }
                Err(e) => g
                    .session
                    .note_undecodable(p.info.clone(), format!("trace unavailable: {e}")),
            },
            None => g.session.note_undecodable(
                p.info.clone(),
                p.error.clone().unwrap_or_else(|| "undecodable".into()),
            ),
        };
        match step {
            SessionStep::Done(report) => {
                g.report = Some(report);
                StepOutcome::Closed
            }
            SessionStep::NeedOccurrence {
                reinstrumented: true,
            } => {
                g.version += 1;
                g.inst = g.session.instrumented();
                StepOutcome::Reinstrumented
            }
            SessionStep::NeedOccurrence {
                reinstrumented: false,
            } => StepOutcome::NeedMore,
        }
    }

    /// Consumes the scheduler, yielding every group's final state by id.
    pub fn into_states(self) -> Vec<GroupState> {
        self.groups.into_values().collect()
    }

    /// Closes every still-open group as having seen no (further) failure
    /// reoccurrence — the fleet stopped producing.
    pub fn close_all(&mut self, store: &mut TraceStore) {
        for g in self.groups.values_mut() {
            for rest in g.pending.drain(..) {
                if let Some(id) = rest.trace {
                    store.unpin(id);
                }
            }
            if g.report.is_none() {
                g.report = Some(g.session.give_up(GiveUpReason::NoFailureObserved));
            }
        }
    }
}
