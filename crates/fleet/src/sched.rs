//! The concurrent reconstruction scheduler.
//!
//! One [`ReconstructionSession`] per failure group, parked between
//! reoccurrences. Each analyze round picks the highest-priority groups —
//! priority is reoccurrence rate × (1 + stall depth), i.e. "fails often
//! and still needs data" — and drives at most `max_concurrent` of them one
//! iteration each, fanning out over [`crate::pool::parallel_map`].
//!
//! Version discipline keeps the fleet path bit-identical to the serial
//! loop: a group only consumes occurrences produced by its *current*
//! instrumented binary, in run order, and never re-consumes a run it has
//! already advanced past. When an iteration grows the recording set, the
//! group's version bumps, queued stale occurrences are dropped (counted),
//! and the new binary rolls out to the instrumented slice of instances.

use crate::ingest::PendingOccurrence;
use crate::pool;
use crate::store::TraceStore;
use er_core::instrument::InstrumentedProgram;
use er_core::reconstruct::{
    ErConfig, GiveUpReason, Outcome, ReconstructionReport, ReconstructionSession, SessionStep,
};
use er_durable::{ConsumeOutcome, DurableEvent, Wal, WatchdogConfig, WatchdogState};
use er_minilang::ir::Program;
use er_pt::packets_to_events;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Reconstruction iterations driven concurrently per analyze round.
    pub max_concurrent: usize,
    /// Fraction of instances that receive a group's instrumented binary
    /// (at least one instance always does).
    pub rollout: f64,
    /// Watchdog supervision of analyze iterations: per-phase work budgets
    /// plus the escalation ladder. `None` disables supervision (iterations
    /// run unbudgeted, as before).
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: 2,
            rollout: 1.0,
            watchdog: None,
        }
    }
}

/// One failure group's investigation state.
#[derive(Debug)]
pub struct GroupState {
    /// Group id (signature hash).
    pub id: u64,
    /// Short label for telemetry context.
    pub label: String,
    /// Current instrumentation version (0 = uninstrumented).
    pub version: u32,
    session: ReconstructionSession,
    inst: InstrumentedProgram,
    pending: VecDeque<PendingOccurrence>,
    /// Runs at or below this index are already consumed; later-arriving
    /// occurrences of them are duplicates from other instances.
    next_run: u64,
    /// Final report, once the investigation closed.
    pub report: Option<ReconstructionReport>,
    /// Analyze rounds in which this group consumed an occurrence.
    pub iterations: u64,
    /// Total sightings across all instances (triage's count, including
    /// redundant ones) — the numerator of the reoccurrence rate.
    pub occurrences_seen: u64,
    /// Position on the watchdog escalation ladder (present iff the
    /// scheduler supervises iterations).
    watchdog: Option<WatchdogState>,
}

impl GroupState {
    /// Whether this group still wants occurrences.
    fn open(&self) -> bool {
        self.report.is_none() && self.session.wants_more()
    }

    /// Watchdog escalations this group has taken (0 when unsupervised).
    pub fn watchdog_escalations(&self) -> u32 {
        self.watchdog.map(|w| w.escalations()).unwrap_or(0)
    }

    /// Runs at or below this index are already consumed.
    pub fn next_run(&self) -> u64 {
        self.next_run
    }

    /// The session's accumulated recording set (original coordinates).
    pub fn sites(&self) -> &[er_minilang::ir::InstrId] {
        self.session.sites()
    }

    /// Occurrences the session has consumed.
    pub fn occurrences_consumed(&self) -> u32 {
        self.session.occurrences()
    }

    /// Queued occurrences not yet consumed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The oldest queued occurrence consumable right now: produced by the
    /// current-version binary for this group (or the baseline binary while
    /// the group is still at version 0), at a run not yet consumed.
    fn next_eligible(&self) -> Option<usize> {
        self.pending.iter().position(|p| {
            p.version == self.version
                && (p.for_group.is_none() || p.for_group == Some(self.id))
                && p.info.run_index >= self.next_run
        })
    }

    /// Stall depth of the underlying session.
    pub fn stall_depth(&self) -> u32 {
        self.session.stall_depth()
    }
}

/// What one analyze iteration did to a group.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum StepOutcome {
    /// Consumed an occurrence; the group wants another under the same
    /// binary.
    NeedMore,
    /// Consumed an occurrence; the recording set grew and version bumped.
    Reinstrumented,
    /// The investigation closed (report available on the group).
    Closed,
}

/// What a (possibly supervised) analyze worker reported back.
#[derive(Debug, Clone, Copy)]
enum IterResult {
    /// The iteration ran to completion.
    Done(StepOutcome),
    /// The watchdog tripped `phase` mid-iteration; the worker restored the
    /// pre-iteration session, so the occurrence can be retried.
    Cancelled { phase: &'static str },
}

/// The per-fleet scheduler.
#[derive(Debug)]
pub struct Scheduler {
    er: ErConfig,
    policy: SchedulerConfig,
    groups: BTreeMap<u64, GroupState>,
    /// Durable event log; every scheduler decision that must survive a
    /// crash is appended (and flushed) before the next one is made.
    wal: Option<Wal>,
}

impl Scheduler {
    /// A scheduler creating sessions with `er` for every new group.
    pub fn new(er: ErConfig, policy: SchedulerConfig) -> Scheduler {
        Scheduler {
            er,
            policy,
            groups: BTreeMap::new(),
            wal: None,
        }
    }

    /// Attaches a durable event log: session lifecycle, accepted
    /// occurrences (trace bytes included), consumption, checkpoints,
    /// rollouts, and verdicts are journaled so [`Scheduler::recover`] can
    /// rebuild this scheduler after a crash.
    pub fn with_wal(mut self, wal: Wal) -> Scheduler {
        self.wal = Some(wal);
        self
    }

    /// Appends one event to the WAL, if one is attached. An I/O failure
    /// degrades durability (logged and counted) rather than killing the
    /// investigation; an injected [`er_chaos::Fault::WalTear`] panics
    /// through here by design — that *is* the simulated crash.
    fn append_wal(&mut self, ev: &DurableEvent) {
        let Some(wal) = self.wal.as_mut() else { return };
        if let Err(e) = wal.append(ev) {
            er_telemetry::counter!("durable.append_failures").incr();
            er_telemetry::log!(warn, "wal append failed ({e}); durability degraded");
        }
    }

    /// Ensures a group exists, creating its session on first sight.
    pub fn note_group(&mut self, id: u64, program: &Program, label: &str) {
        let er = self.er;
        let watchdog = self.policy.watchdog.as_ref().map(WatchdogState::new);
        let mut started = false;
        self.groups.entry(id).or_insert_with(|| {
            started = true;
            let session = ReconstructionSession::new(er, program.clone());
            let inst = session.instrumented();
            GroupState {
                id,
                label: label.to_string(),
                version: 0,
                session,
                inst,
                pending: VecDeque::new(),
                next_run: 0,
                report: None,
                iterations: 0,
                occurrences_seen: 0,
                watchdog,
            }
        });
        if started {
            self.append_wal(&DurableEvent::SessionStarted {
                group: id,
                label: label.to_string(),
            });
        }
    }

    /// Refreshes each group's sighting count from the triage table (called
    /// after every drain, so priorities track live reoccurrence rates).
    pub fn update_rates(&mut self, triage: &crate::triage::Triage) {
        for g in self.groups.values_mut() {
            if let Some(t) = triage.group(g.id) {
                g.occurrences_seen = t.occurrences;
            }
        }
    }

    /// Queues drained occurrences on their groups, pinning their traces.
    /// Stale occurrences (old version, already-consumed run, or a
    /// duplicate of a queued one from another instance) are dropped
    /// immediately and counted.
    pub fn enqueue(&mut self, pending: Vec<PendingOccurrence>, store: &mut TraceStore) {
        let journaling = self.wal.is_some();
        for p in pending {
            let Some(g) = self.groups.get_mut(&p.group) else {
                continue; // group must be noted first
            };
            let stale = g.report.is_some()
                || p.version != g.version
                || (p.for_group.is_some() && p.for_group != Some(g.id))
                || p.info.run_index < g.next_run;
            let duplicate = g.pending.iter().any(|q| {
                q.version == p.version && q.info.run_index == p.info.run_index && q.trace == p.trace
            });
            if stale {
                er_telemetry::counter!("fleet.sched.stale_dropped").incr();
            } else if duplicate {
                er_telemetry::counter!("fleet.sched.redundant").incr();
            } else {
                if let Some(id) = p.trace {
                    store.pin(id);
                }
                let journal = journaling.then(|| DurableEvent::OccurrenceIngested {
                    group: p.group,
                    for_group: p.for_group,
                    version: p.version,
                    leading_gap: p.leading_gap,
                    info: Box::new(p.info.clone()),
                    trace: p.trace.and_then(|id| store.compressed_bytes(id).ok()),
                    error: p.error.clone(),
                });
                g.pending.push_back(p);
                if let Some(ev) = journal {
                    self.append_wal(&ev);
                }
            }
        }
    }

    /// Whether any open group has a consumable occurrence queued — the
    /// production pause signal: analysis must catch up before instances
    /// run further ahead.
    pub fn has_eligible_pending(&self) -> bool {
        self.groups
            .values()
            .any(|g| g.open() && g.next_eligible().is_some())
    }

    /// Whether any group's investigation is still open.
    pub fn any_open(&self) -> bool {
        self.groups.values().any(|g| g.open())
    }

    /// All groups, by id.
    pub fn groups(&self) -> impl Iterator<Item = &GroupState> {
        self.groups.values()
    }

    /// The binary instance `idx` of `total` should run right now: the
    /// highest-priority open group's current binary on the instrumented
    /// slice (`ceil(rollout × total)`, at least 1), the uninstrumented
    /// baseline elsewhere. Returns `(group, version, binary)`.
    pub fn binary_for(
        &self,
        idx: usize,
        total: usize,
        runs_observed: u64,
        baseline: &InstrumentedProgram,
    ) -> (Option<u64>, u32, InstrumentedProgram) {
        let instrumented = ((self.policy.rollout * total as f64).ceil() as usize).clamp(1, total);
        let lead = self
            .priority_order(runs_observed)
            .into_iter()
            .next()
            .and_then(|id| self.groups.get(&id));
        match lead {
            Some(g) if idx < instrumented && g.version > 0 => {
                (Some(g.id), g.version, g.inst.clone())
            }
            _ => (None, 0, baseline.clone()),
        }
    }

    /// Open groups in descending priority order: reoccurrence rate ×
    /// (1 + stall depth), rate in occurrences per 1000 observed runs.
    /// Ties break toward the smaller group id, so the order is total and
    /// deterministic.
    fn priority_order(&self, runs_observed: u64) -> Vec<u64> {
        let mut scored: Vec<(u64, u64)> = self
            .groups
            .values()
            .filter(|g| g.open())
            .map(|g| {
                let rate = g.occurrences_seen.max(1) * 1000 / runs_observed.max(1);
                let score = rate.max(1) * (1 + u64::from(g.stall_depth()));
                (score, g.id)
            })
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// Runs one analyze round: up to `max_concurrent` highest-priority
    /// groups each consume their oldest eligible occurrence, in parallel
    /// unless `serial`. Returns `(group, outcome)` per iteration driven.
    pub fn analyze_round(
        &mut self,
        store: &mut TraceStore,
        runs_observed: u64,
        serial: bool,
    ) -> Vec<(u64, StepOutcome)> {
        // Pick and detach the work: group state + its popped occurrence.
        let mut selected: Vec<(GroupState, PendingOccurrence)> = Vec::new();
        for id in self.priority_order(runs_observed) {
            if selected.len() >= self.policy.max_concurrent {
                break;
            }
            let g = self.groups.get_mut(&id).expect("scored group exists");
            if let Some(at) = g.next_eligible() {
                let p = g.pending.remove(at).expect("eligible index valid");
                let g = self.groups.remove(&id).expect("group present");
                selected.push((g, p));
            }
        }
        if selected.is_empty() {
            return Vec::new();
        }

        // Sessions of different groups are independent, so their
        // iterations run concurrently; the store is only read here.
        let work: Vec<Mutex<Option<(GroupState, PendingOccurrence)>>> =
            selected.into_iter().map(|w| Mutex::new(Some(w))).collect();
        let outcomes = pool::try_parallel_map(&work, serial, |_, slot| {
            let (mut g, p) = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("work present");
            let label = g.label.clone();
            er_telemetry::set_context(&label);
            let result = Self::run_supervised(&mut g, &p, store);
            er_telemetry::set_context("");
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((g, p));
            result
        });

        let mut out = Vec::with_capacity(outcomes.len());
        for (slot, outcome) in work.into_iter().zip(outcomes) {
            let slot = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (mut g, p, result) = match (outcome, slot) {
                // Normal completion: the worker put the state back.
                (Ok(result), Some((g, p))) => (g, p, result),
                (Err(panic), Some((mut g, p))) => {
                    // The worker died *before* touching the work (the pool
                    // kills at its boundary under chaos): group state and
                    // occurrence are intact, so requeue the occurrence and
                    // let a later round consume it. The trace stays pinned.
                    er_telemetry::counter!("fleet.sched.requeued").incr();
                    er_telemetry::log!(
                        warn,
                        "analyze worker died for group {:#x} ({}); occurrence requeued",
                        g.id,
                        panic.message
                    );
                    er_chaos::note_recovered(er_chaos::Domain::Pool);
                    g.pending.push_front(p);
                    self.groups.insert(g.id, g);
                    continue;
                }
                (_, None) => {
                    // The closure panicked mid-iteration: the session state
                    // unwound with it. The group is lost — log it, count
                    // it, and keep the round (and every other group) alive.
                    er_telemetry::counter!("fleet.sched.lost_groups").incr();
                    er_telemetry::log!(
                        warn,
                        "analyze worker panicked mid-iteration; group state lost"
                    );
                    er_chaos::note_typed_error(er_chaos::Domain::Pool);
                    continue;
                }
            };
            let outcome = match result {
                IterResult::Done(outcome) => outcome,
                IterResult::Cancelled { phase } => {
                    // The watchdog tripped: the worker already restored the
                    // pre-iteration session, so the occurrence is intact.
                    // Climb the escalation ladder and retry, or give up.
                    er_telemetry::counter!("watchdog.cancelled").incr();
                    let cfg = self
                        .policy
                        .watchdog
                        .expect("cancellation implies supervision");
                    let wd = g.watchdog.as_mut().expect("supervised group has a ladder");
                    if wd.escalate(&cfg) {
                        let level = wd.escalations();
                        er_telemetry::counter!("watchdog.escalations").incr();
                        er_telemetry::counter!("watchdog.requeued").incr();
                        er_telemetry::log!(
                            warn,
                            "watchdog tripped {phase} for group {:#x}; retrying at escalation {level}",
                            g.id
                        );
                        self.append_wal(&DurableEvent::Escalated {
                            group: g.id,
                            level,
                            phase: phase.to_string(),
                        });
                        // Trace stays pinned for the retry.
                        g.pending.push_front(p);
                    } else {
                        let escalations = wd.escalations();
                        er_telemetry::counter!("watchdog.gave_up").incr();
                        er_telemetry::log!(
                            warn,
                            "watchdog exhausted for group {:#x} in {phase} after {escalations} escalations",
                            g.id
                        );
                        if let Some(id) = p.trace {
                            store.unpin(id);
                        }
                        for rest in g.pending.drain(..) {
                            if let Some(id) = rest.trace {
                                store.unpin(id);
                            }
                        }
                        g.report = Some(
                            g.session
                                .give_up(GiveUpReason::WatchdogExhausted { phase, escalations }),
                        );
                        if let Some(ev) = Self::terminal_event(&g) {
                            self.append_wal(&ev);
                        }
                        out.push((g.id, StepOutcome::Closed));
                    }
                    self.groups.insert(g.id, g);
                    continue;
                }
            };
            if let Some(id) = p.trace {
                store.unpin(id);
            }
            er_telemetry::counter!("fleet.sched.consumed").incr();
            if self.wal.is_some() {
                self.append_wal(&DurableEvent::OccurrenceConsumed {
                    group: g.id,
                    run_index: p.info.run_index,
                    outcome: match outcome {
                        StepOutcome::NeedMore => ConsumeOutcome::NeedMore,
                        StepOutcome::Reinstrumented => ConsumeOutcome::Reinstrumented,
                        StepOutcome::Closed => ConsumeOutcome::Closed,
                    },
                });
                let occurrence = g.session.occurrences();
                if let Some(it) = g.session.last_iteration() {
                    let (symbex_steps, solver_work) = (it.symbex_steps, it.solver_work);
                    let new_sites = it.new_sites.clone();
                    self.append_wal(&DurableEvent::SolverCheckpoint {
                        group: g.id,
                        occurrence,
                        symbex_steps,
                        solver_work,
                    });
                    if !new_sites.is_empty() {
                        self.append_wal(&DurableEvent::SelectionMade {
                            group: g.id,
                            occurrence,
                            new_sites,
                        });
                    }
                }
                let cursors: Vec<u64> = g
                    .session
                    .checkpoint_cursors()
                    .into_iter()
                    .map(|c| c as u64)
                    .collect();
                if !cursors.is_empty() {
                    self.append_wal(&DurableEvent::SymexCheckpoint {
                        group: g.id,
                        occurrence,
                        cursors,
                    });
                }
            }
            match outcome {
                StepOutcome::Reinstrumented => {
                    er_telemetry::counter!("fleet.sched.rollouts").incr();
                    // Everything queued was produced by the old binary.
                    for stale in g.pending.drain(..) {
                        if let Some(id) = stale.trace {
                            store.unpin(id);
                        }
                        er_telemetry::counter!("fleet.sched.stale_dropped").incr();
                    }
                    if self.wal.is_some() {
                        self.append_wal(&DurableEvent::PlanDeployed {
                            group: g.id,
                            version: g.version,
                            sites: g.session.sites().to_vec(),
                        });
                    }
                }
                StepOutcome::Closed => {
                    for rest in g.pending.drain(..) {
                        if let Some(id) = rest.trace {
                            store.unpin(id);
                        }
                    }
                    if let Some(ev) = Self::terminal_event(&g) {
                        self.append_wal(&ev);
                    }
                }
                StepOutcome::NeedMore => {}
            }
            out.push((g.id, outcome));
            self.groups.insert(g.id, g);
        }
        out
    }

    /// One worker-side iteration, under the watchdog when configured: arms
    /// the cooperative cancellation token with the group's current phase
    /// budgets, snapshots the session first, and — if any phase budget
    /// trips mid-iteration — restores the snapshot so the cancelled work
    /// leaves no trace on the session.
    fn run_supervised(g: &mut GroupState, p: &PendingOccurrence, store: &TraceStore) -> IterResult {
        let Some(budgets) = g.watchdog.map(|w| w.budgets()) else {
            return IterResult::Done(Self::run_iteration(g, p, store));
        };
        let snapshot = (
            g.session.clone(),
            g.inst.clone(),
            g.next_run,
            g.iterations,
            g.version,
        );
        let guard = er_solver::cancel::arm(budgets);
        let outcome = Self::run_iteration(g, p, store);
        let tripped = er_solver::cancel::tripped_phase();
        drop(guard);
        match tripped {
            Some(phase) => {
                let (session, inst, next_run, iterations, version) = snapshot;
                g.session = session;
                g.inst = inst;
                g.next_run = next_run;
                g.iterations = iterations;
                g.version = version;
                g.report = None;
                IterResult::Cancelled {
                    phase: phase.name(),
                }
            }
            None => IterResult::Done(outcome),
        }
    }

    /// The [`DurableEvent::Terminal`] record for a closed group.
    fn terminal_event(g: &GroupState) -> Option<DurableEvent> {
        let r = g.report.as_ref()?;
        let reason = match &r.outcome {
            Outcome::Reproduced(_) => "reproduced".to_string(),
            Outcome::GaveUp(why) => format!("{why:?}"),
        };
        Some(DurableEvent::Terminal {
            group: g.id,
            reproduced: r.reproduced(),
            reason,
            occurrences: r.occurrences,
        })
    }

    /// One group iteration: retrieve the trace, flatten to events, feed
    /// the session. Mutates only `g`.
    fn run_iteration(g: &mut GroupState, p: &PendingOccurrence, store: &TraceStore) -> StepOutcome {
        let _iter = er_telemetry::span!("reconstruct.iteration");
        g.iterations += 1;
        g.next_run = p.info.run_index + 1;
        let step = match p.trace {
            Some(id) => match store.get(id) {
                Ok((packets, gap)) => {
                    let events = {
                        let _s = er_telemetry::span!("shepherd.decode");
                        let events = packets_to_events(&packets, gap);
                        // Bill the decode-phase budget (the cancel token,
                        // when armed, starts in Decode); a trip here
                        // surfaces as a cancelled iteration.
                        er_solver::cancel::tick(packets.len() as u64);
                        events
                    };
                    g.session.consume_events(&g.inst, p.info.clone(), events)
                }
                Err(e) => g
                    .session
                    .note_undecodable(p.info.clone(), format!("trace unavailable: {e}")),
            },
            None => g.session.note_undecodable(
                p.info.clone(),
                p.error.clone().unwrap_or_else(|| "undecodable".into()),
            ),
        };
        match step {
            SessionStep::Done(report) => {
                g.report = Some(report);
                StepOutcome::Closed
            }
            SessionStep::NeedOccurrence {
                reinstrumented: true,
            } => {
                g.version += 1;
                g.inst = g.session.instrumented();
                StepOutcome::Reinstrumented
            }
            SessionStep::NeedOccurrence {
                reinstrumented: false,
            } => StepOutcome::NeedMore,
        }
    }

    /// Consumes the scheduler, yielding every group's final state by id.
    pub fn into_states(self) -> Vec<GroupState> {
        self.groups.into_values().collect()
    }

    /// Closes every still-open group as having seen no (further) failure
    /// reoccurrence — the fleet stopped producing.
    pub fn close_all(&mut self, store: &mut TraceStore) {
        let mut closed: Vec<u64> = Vec::new();
        for g in self.groups.values_mut() {
            for rest in g.pending.drain(..) {
                if let Some(id) = rest.trace {
                    store.unpin(id);
                }
            }
            if g.report.is_none() {
                g.report = Some(g.session.give_up(GiveUpReason::NoFailureObserved));
                closed.push(g.id);
            }
        }
        for id in closed {
            if let Some(ev) = self.groups.get(&id).and_then(Self::terminal_event) {
                self.append_wal(&ev);
            }
        }
    }

    /// Rebuilds a scheduler from a recovered WAL: replays the logged
    /// events in order, re-feeding every consumed occurrence (journaled
    /// trace bytes re-enter the content-addressed store, yielding the
    /// original [`crate::store::TraceId`]s) through fresh sessions. The
    /// pipeline is deterministic, so replay reconverges on the crashed
    /// scheduler's state — including the symbex checkpoints, which resume
    /// exactly as they did pre-crash. Divergence between replay and what
    /// the log acknowledged is counted (`durable.replay_divergence`), not
    /// fatal.
    ///
    /// `wal` is attached only *after* replay, so replay appends nothing.
    pub fn recover(
        er: ErConfig,
        policy: SchedulerConfig,
        program: &Program,
        wal: Wal,
        events: &[DurableEvent],
        store: &mut TraceStore,
    ) -> Scheduler {
        let _span = er_telemetry::span!("durable.recover");
        let mut s = Scheduler::new(er, policy);
        for ev in events {
            match ev {
                DurableEvent::SessionStarted { group, label } => {
                    s.note_group(*group, program, label);
                }
                DurableEvent::OccurrenceIngested {
                    group,
                    for_group,
                    version,
                    leading_gap,
                    info,
                    trace,
                    error,
                } => {
                    let trace_id = trace.as_ref().and_then(|bytes| {
                        match store.put_compressed(*group, bytes, *leading_gap) {
                            Ok(put) => Some(put.id),
                            Err(e) => {
                                er_telemetry::counter!("durable.replay_divergence").incr();
                                er_telemetry::log!(
                                    warn,
                                    "replay: journaled trace for group {group:#x} unusable: {e}"
                                );
                                None
                            }
                        }
                    });
                    er_telemetry::counter!("durable.replayed_occurrences").incr();
                    s.enqueue(
                        vec![PendingOccurrence {
                            group: *group,
                            for_group: *for_group,
                            version: *version,
                            trace: trace_id,
                            leading_gap: *leading_gap,
                            info: info.as_ref().clone(),
                            error: error.clone(),
                        }],
                        store,
                    );
                }
                DurableEvent::OccurrenceConsumed {
                    group,
                    run_index,
                    outcome,
                } => s.replay_consume(*group, *run_index, *outcome, store),
                DurableEvent::Escalated { group, level, .. } => {
                    if let (Some(cfg), Some(g)) = (policy.watchdog, s.groups.get_mut(group)) {
                        if let Some(wd) = g.watchdog.as_mut() {
                            wd.restore(&cfg, *level);
                        }
                    }
                }
                DurableEvent::Terminal {
                    group, reproduced, ..
                } => {
                    // Durable assertion: replay must have re-derived the
                    // same verdict the crashed process acknowledged.
                    let got = s
                        .groups
                        .get(group)
                        .and_then(|g| g.report.as_ref())
                        .map(ReconstructionReport::reproduced);
                    if got != Some(*reproduced) {
                        er_telemetry::counter!("durable.replay_divergence").incr();
                        er_telemetry::log!(
                            warn,
                            "replay: group {group:#x} verdict {got:?} != journaled {reproduced}"
                        );
                    }
                }
                // Progress markers: replay re-derives checkpoints and
                // plans from the consumed occurrences themselves.
                DurableEvent::SymexCheckpoint { .. }
                | DurableEvent::SolverCheckpoint { .. }
                | DurableEvent::SelectionMade { .. }
                | DurableEvent::PlanDeployed { .. } => {}
            }
        }
        er_telemetry::counter!("durable.resumes").incr();
        er_telemetry::log!(
            info,
            "recovered scheduler from {} WAL events ({} groups)",
            events.len(),
            s.groups.len()
        );
        s.wal = Some(wal);
        s
    }

    /// Replays one journaled consumption: pops the matching queued
    /// occurrence and runs the iteration serially, mirroring
    /// [`Scheduler::analyze_round`]'s post-processing (without the WAL
    /// appends — the records already exist).
    fn replay_consume(
        &mut self,
        group: u64,
        run_index: u64,
        logged: ConsumeOutcome,
        store: &mut TraceStore,
    ) {
        let Some(mut g) = self.groups.remove(&group) else {
            er_telemetry::counter!("durable.replay_divergence").incr();
            er_telemetry::log!(warn, "replay: consumed event for unknown group {group:#x}");
            return;
        };
        let at = g.next_eligible().filter(|&at| {
            g.pending
                .get(at)
                .is_some_and(|p| p.info.run_index == run_index)
        });
        let Some(at) = at else {
            er_telemetry::counter!("durable.replay_divergence").incr();
            er_telemetry::log!(
                warn,
                "replay: group {group:#x} run {run_index} not next-eligible; skipping"
            );
            self.groups.insert(group, g);
            return;
        };
        let p = g.pending.remove(at).expect("eligible index valid");
        if let Some(id) = p.trace {
            store.unpin(id);
        }
        let label = g.label.clone();
        er_telemetry::set_context(&label);
        let outcome = Self::run_iteration(&mut g, &p, store);
        er_telemetry::set_context("");
        er_telemetry::counter!("fleet.sched.consumed").incr();
        let got = match outcome {
            StepOutcome::NeedMore => ConsumeOutcome::NeedMore,
            StepOutcome::Reinstrumented => ConsumeOutcome::Reinstrumented,
            StepOutcome::Closed => ConsumeOutcome::Closed,
        };
        if got != logged {
            er_telemetry::counter!("durable.replay_divergence").incr();
            er_telemetry::log!(
                warn,
                "replay: group {group:#x} run {run_index} outcome {got:?} != journaled {logged:?}"
            );
        }
        match outcome {
            StepOutcome::Reinstrumented => {
                er_telemetry::counter!("fleet.sched.rollouts").incr();
                for stale in g.pending.drain(..) {
                    if let Some(id) = stale.trace {
                        store.unpin(id);
                    }
                    er_telemetry::counter!("fleet.sched.stale_dropped").incr();
                }
            }
            StepOutcome::Closed => {
                for rest in g.pending.drain(..) {
                    if let Some(id) = rest.trace {
                        store.unpin(id);
                    }
                }
            }
            StepOutcome::NeedMore => {}
        }
        self.groups.insert(group, g);
    }
}
