//! Fleet-scale Execution Reconstruction.
//!
//! The paper's deployment story (§3.1, §4) is a *fleet*: many production
//! instances run under always-on PT tracing; a failure's trace ships to
//! the analysis engine; after each solver stall, a lightly instrumented
//! binary is redeployed to part of the fleet and the engine waits for the
//! failure to *reoccur*. One instance's reoccurrence wait is another
//! instance's crash report, so fleet size converts directly into
//! reconstruction latency. This crate is that missing layer over
//! `er-core`'s single-deployment loop:
//!
//! * [`pool`] — the scoped worker pool all phases fan out on (shared with
//!   `er-bench`, which re-exports it).
//! * [`triage`] — fault-signature clustering of crash reports into
//!   failure groups with reoccurrence-rate statistics.
//! * [`store`] — the content-addressed trace store: compressed packet
//!   streams ([`er_pt::compress`]), cross-occurrence deduplication,
//!   per-group retention caps, byte-budget eviction, optional disk spill.
//! * [`ingest`] — the bounded queue between instances and analysis, with
//!   truncation accounting and backpressure.
//! * [`sched`] — the concurrent reconstruction scheduler: one resumable
//!   [`er_core::ReconstructionSession`] per group, priority-driven
//!   (reoccurrence rate × stall depth), bounded concurrency, versioned
//!   instrumentation rollout.
//! * [`sim`] — the round-based fleet simulator tying it together.
//!
//! With [`sim::FleetConfig::durable`] set, the scheduler journals every
//! durable decision to an `er-durable` WAL and [`sim::Fleet::resume`] can
//! rebuild the investigation after a crash (see `er_durable` for the
//! record format and recovery protocol). [`sched::SchedulerConfig::watchdog`]
//! additionally supervises analyze iterations with per-phase deadlines and
//! an escalation ladder.
//!
//! # Example
//!
//! ```
//! use er_fleet::sim::{Fleet, FleetConfig, FleetSpec, Traffic};
//! use er_core::deploy::ReoccurrenceModel;
//! use er_core::reconstruct::ErConfig;
//! use er_minilang::env::Env;
//! use std::sync::Arc;
//!
//! let program = er_minilang::compile(
//!     r#"
//!     fn main() {
//!         let a: u32 = input_u32(0);
//!         if a * 3 == 21 { abort("boom"); }
//!         print(a);
//!     }
//!     "#,
//! )?;
//! let spec = FleetSpec {
//!     program,
//!     input_gen: Arc::new(|run| {
//!         let mut env = Env::new();
//!         env.push_input(0, &(run as u32).to_le_bytes());
//!         env
//!     }),
//!     sched_gen: None,
//!     pt: er_pt::PtConfig::default(),
//!     reoccurrence: ReoccurrenceModel::default(),
//!     er: ErConfig::default(),
//!     label: "example".into(),
//! };
//! let report = Fleet::new(spec, FleetConfig {
//!     instances: 3,
//!     traffic: Traffic::Mirrored,
//!     ..FleetConfig::default()
//! })
//! .run();
//! assert!(report.all_reproduced());
//! // Two mirrored replicas shipped byte-identical traces: deduplicated.
//! assert!(report.store.dedup_hits >= 2);
//! # Ok::<(), er_minilang::CompileError>(())
//! ```

pub mod ingest;
pub mod pool;
pub mod sched;
pub mod sim;
pub mod store;
pub mod triage;

pub use ingest::{CrashReport, IngestConfig, IngestStats, Ingestor, PendingOccurrence};
pub use pool::{parallel_map, try_parallel_map, WorkerPanic};
pub use sched::{Scheduler, SchedulerConfig, StepOutcome};
pub use sim::{Fleet, FleetConfig, FleetGroupReport, FleetReport, FleetSpec, Traffic};
pub use store::{PutResult, StoreConfig, StoreError, StoreStats, TraceId, TraceStore};
pub use triage::{FailureGroup, FaultSignature, Triage};

#[cfg(test)]
pub(crate) mod testsync {
    //! The chaos plan is process-global; unit tests across this crate's
    //! modules that arm one must serialize on this lock.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn chaos_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
