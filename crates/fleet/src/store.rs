//! The deduplicating trace store.
//!
//! Every ingested trace is stored as a *compressed* packet stream
//! (`er_pt::compress`) under a content address (FNV-1a of the compressed
//! bytes). Reoccurrences of the same failure on mirrored instances produce
//! byte-identical streams, so the store keeps one copy and counts a dedup
//! hit. Retention is bounded twice: a per-group cap (old reoccurrences of
//! a well-sampled failure are worthless) and a global in-memory byte
//! budget, beyond which the oldest unpinned traces are evicted — spilled
//! to disk when a spill directory is configured, dropped otherwise.
//! Traces referenced by a scheduler's pending queue are *pinned* and never
//! evicted, so an investigation can always retrieve the occurrence it is
//! about to consume.

use er_pt::compress::{compress, decompress};
use er_pt::packet::Packet;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;

/// Retention policy of a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum retained traces per failure group (oldest evicted first).
    pub per_group_cap: usize,
    /// In-memory compressed-byte budget across all groups.
    pub byte_budget: usize,
    /// Where evicted traces spill; `None` drops them instead.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            per_group_cap: 4,
            byte_budget: 64 << 20,
            spill_dir: None,
        }
    }
}

/// Handle to one stored trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Why a stored trace could not be retrieved. Every variant is a typed,
/// recoverable condition: the scheduler reports the occurrence as
/// undecodable and the session retries with the next reoccurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Never stored, or evicted without a spill directory.
    Missing,
    /// Spilled to disk, but the spill file could not be read back (even
    /// after retries).
    SpillUnreadable {
        /// The unreadable spill file.
        path: PathBuf,
    },
    /// Stored bytes failed to decompress.
    Corrupt,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Missing => write!(f, "trace evicted or never stored"),
            StoreError::SpillUnreadable { path } => {
                write!(f, "spill file unreadable: {}", path.display())
            }
            StoreError::Corrupt => write!(f, "stored trace failed to decompress"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Attempts per spill-file read or write before giving up — the retry half
/// of the store's retry-or-degrade policy for transient disk trouble.
const SPILL_IO_ATTEMPTS: u32 = 3;

/// Cumulative store statistics (serialized into the fleet report).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct StoreStats {
    /// `put` calls.
    pub puts: u64,
    /// Puts resolved by content-address dedup.
    pub dedup_hits: u64,
    /// Traces evicted (spilled or dropped).
    pub evictions: u64,
    /// Evicted traces written to the spill directory.
    pub spills: u64,
    /// Spill writes that failed (after retries); the trace stayed in
    /// memory at degraded budget fidelity instead of being lost.
    pub spill_failures: u64,
    /// PT packets offered, cumulative (ingestion-throughput numerator).
    pub packets: u64,
    /// Raw (uncompressed codec) bytes offered, cumulative.
    pub raw_bytes: u64,
    /// Compressed bytes actually stored, cumulative (dedup excluded).
    pub stored_bytes: u64,
}

impl StoreStats {
    /// Raw/compressed ratio over everything offered; >1 is compression.
    /// Dedup hits count their raw bytes but store nothing, so fleet-wide
    /// redundancy amplifies this beyond the per-trace codec ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.stored_bytes as f64
    }
}

/// What [`TraceStore::put`] did with an offered trace.
#[derive(Debug, Clone, Copy)]
pub struct PutResult {
    /// Handle for later retrieval.
    pub id: TraceId,
    /// The identical trace was already stored; no new bytes were kept.
    pub deduped: bool,
    /// Compressed size of the offered trace.
    pub compressed_len: usize,
    /// Raw codec size of the offered trace.
    pub raw_len: usize,
}

#[derive(Debug)]
enum Slot {
    Mem(Vec<u8>),
    Disk(PathBuf),
}

#[derive(Debug)]
struct Entry {
    group: u64,
    addr: u64,
    leading_gap: bool,
    data: Slot,
    pinned: u32,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The content-addressed, deduplicating, budgeted trace store.
#[derive(Debug)]
pub struct TraceStore {
    config: StoreConfig,
    entries: HashMap<u64, Entry>,
    /// Insertion order, oldest first — the eviction scan order.
    order: VecDeque<u64>,
    by_addr: HashMap<u64, Vec<u64>>,
    per_group: HashMap<u64, VecDeque<u64>>,
    mem_bytes: usize,
    seq: u64,
    stats: StoreStats,
}

impl TraceStore {
    /// An empty store with the given retention policy.
    pub fn new(config: StoreConfig) -> TraceStore {
        TraceStore {
            config,
            entries: HashMap::new(),
            order: VecDeque::new(),
            by_addr: HashMap::new(),
            per_group: HashMap::new(),
            mem_bytes: 0,
            seq: 0,
            stats: StoreStats::default(),
        }
    }

    /// Stores the packet stream of one occurrence of `group`, compressing
    /// and deduplicating it. `leading_gap` records that the ring wrapped
    /// and the decoded prefix is missing (it travels with the trace so
    /// retrieval reproduces `PtTrace::decode` exactly).
    pub fn put(&mut self, group: u64, packets: &[Packet], leading_gap: bool) -> PutResult {
        let raw_len = er_pt::codec::encode(packets).len();
        let compressed = compress(packets);
        let addr = fnv64(&compressed);
        self.stats.puts += 1;
        self.stats.packets += packets.len() as u64;
        self.stats.raw_bytes += raw_len as u64;
        er_telemetry::counter!("fleet.store.puts").incr();
        er_telemetry::counter!("fleet.store.bytes_raw").add(raw_len as u64);

        let hit = self.by_addr.get(&addr).and_then(|ids| {
            ids.iter().copied().find(|id| {
                let e = &self.entries[id];
                e.group == group
                    && e.leading_gap == leading_gap
                    && self.bytes_of(e).as_deref() == Some(&compressed)
            })
        });
        if let Some(id) = hit {
            self.stats.dedup_hits += 1;
            er_telemetry::counter!("fleet.store.dedup_hits").incr();
            return PutResult {
                id: TraceId(id),
                deduped: true,
                compressed_len: compressed.len(),
                raw_len,
            };
        }

        let id = self.seq;
        self.seq += 1;
        let compressed_len = compressed.len();
        self.stats.stored_bytes += compressed_len as u64;
        er_telemetry::counter!("fleet.store.bytes_compressed").add(compressed_len as u64);
        self.mem_bytes += compressed_len;
        self.entries.insert(
            id,
            Entry {
                group,
                addr,
                leading_gap,
                data: Slot::Mem(compressed),
                pinned: 0,
            },
        );
        self.order.push_back(id);
        self.by_addr.entry(addr).or_default().push(id);
        self.per_group.entry(group).or_default().push_back(id);
        self.enforce_caps(group);
        PutResult {
            id: TraceId(id),
            deduped: false,
            compressed_len,
            raw_len,
        }
    }

    /// Retrieves and decompresses a stored trace: the packets and the
    /// leading-gap flag.
    ///
    /// # Errors
    ///
    /// [`StoreError::Missing`] if the trace was evicted without a spill
    /// directory (or never existed), [`StoreError::SpillUnreadable`] if
    /// the spill file failed to read back after retries,
    /// [`StoreError::Corrupt`] if the stored bytes do not decompress.
    pub fn get(&self, id: TraceId) -> Result<(Vec<Packet>, bool), StoreError> {
        let e = self.entries.get(&id.0).ok_or(StoreError::Missing)?;
        let bytes = match &e.data {
            Slot::Mem(b) => b.clone(),
            Slot::Disk(p) => read_spill(p)?,
        };
        let packets = decompress(&bytes).map_err(|_| StoreError::Corrupt)?;
        Ok((packets, e.leading_gap))
    }

    /// The stored compressed bytes of a trace — what a durability layer
    /// journals so a restarted scheduler can re-`put` the identical stream
    /// (content addressing then yields the identical [`TraceId`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`get`](Self::get), minus decompression.
    pub fn compressed_bytes(&self, id: TraceId) -> Result<Vec<u8>, StoreError> {
        let e = self.entries.get(&id.0).ok_or(StoreError::Missing)?;
        match &e.data {
            Slot::Mem(b) => Ok(b.clone()),
            Slot::Disk(p) => read_spill(p),
        }
    }

    /// Stores pre-compressed bytes recovered from a WAL, bypassing the
    /// compressor (the bytes were produced by it originally). Returns the
    /// same [`TraceId`] arithmetic as [`put`](Self::put): identical bytes
    /// for the same group dedup to the already-stored copy.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the bytes do not decompress — a WAL
    /// record damaged beyond its checksum's ability to notice.
    pub fn put_compressed(
        &mut self,
        group: u64,
        compressed: &[u8],
        leading_gap: bool,
    ) -> Result<PutResult, StoreError> {
        let packets = decompress(compressed).map_err(|_| StoreError::Corrupt)?;
        Ok(self.put(group, &packets, leading_gap))
    }

    /// Marks a trace in use by a pending occurrence: it will not be
    /// evicted until [`unpin`](Self::unpin)ned as many times.
    pub fn pin(&mut self, id: TraceId) {
        if let Some(e) = self.entries.get_mut(&id.0) {
            e.pinned += 1;
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: TraceId) {
        if let Some(e) = self.entries.get_mut(&id.0) {
            e.pinned = e.pinned.saturating_sub(1);
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Compressed bytes currently held in memory.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    fn bytes_of(&self, e: &Entry) -> Option<Vec<u8>> {
        match &e.data {
            Slot::Mem(b) => Some(b.clone()),
            Slot::Disk(p) => read_spill(p).ok(),
        }
    }

    fn enforce_caps(&mut self, group: u64) {
        // Entries that refused eviction this call (spill write failed and
        // the degraded policy kept them in memory); skipping them keeps
        // both loops terminating under persistent disk failure.
        let mut refused: Vec<u64> = Vec::new();
        // Per-group retention counts *in-memory* traces: oldest unpinned
        // beyond the cap are evicted first (spilled copies don't count).
        let in_mem = |entries: &HashMap<u64, Entry>, id: &u64| {
            entries
                .get(id)
                .is_some_and(|e| matches!(e.data, Slot::Mem(_)))
        };
        while self.per_group.get(&group).is_some_and(|q| {
            q.iter().filter(|id| in_mem(&self.entries, id)).count() > self.config.per_group_cap
        }) {
            let victim = self.per_group.get(&group).and_then(|q| {
                q.iter()
                    .find(|id| {
                        !refused.contains(id)
                            && in_mem(&self.entries, id)
                            && self.entries.get(id).is_some_and(|e| e.pinned == 0)
                    })
                    .copied()
            });
            match victim {
                Some(v) => {
                    if !self.evict(v) {
                        refused.push(v);
                    }
                }
                None => break, // everything pinned or refusing: over cap but safe
            }
        }
        // Global byte budget: evict oldest unpinned in-memory entries.
        while self.mem_bytes > self.config.byte_budget {
            let victim = self.order.iter().copied().find(|id| {
                !refused.contains(id)
                    && self
                        .entries
                        .get(id)
                        .is_some_and(|e| e.pinned == 0 && matches!(e.data, Slot::Mem(_)))
            });
            match victim {
                Some(v) => {
                    if !self.evict(v) {
                        refused.push(v);
                    }
                }
                None => break,
            }
        }
    }

    /// Evicts one entry: spilled to disk, dropped, or — when the spill
    /// write fails after retries — kept in memory as the degraded
    /// fallback. Returns whether memory was actually freed.
    fn evict(&mut self, id: u64) -> bool {
        let Some(mut e) = self.entries.remove(&id) else {
            return true;
        };
        if let Slot::Mem(bytes) = &e.data {
            let len = bytes.len();
            if let Some(dir) = &self.config.spill_dir {
                let _ = std::fs::create_dir_all(dir);
                let path = dir.join(format!("trace-{id}.erz"));
                if write_spill(&path, bytes) {
                    self.mem_bytes -= len;
                    self.stats.evictions += 1;
                    self.stats.spills += 1;
                    er_telemetry::counter!("fleet.store.evictions").incr();
                    er_telemetry::counter!("fleet.store.spills").incr();
                    e.data = Slot::Disk(path);
                    self.entries.insert(id, e);
                    return true;
                }
                // Degraded: losing a trace is worse than blowing the byte
                // budget, so a failed spill keeps its entry in memory; the
                // caller skips it and retries eviction on a later put.
                self.stats.spill_failures += 1;
                er_telemetry::counter!("fleet.store.spill_failures").incr();
                er_telemetry::log!(warn, "spill write failed for trace {id}; keeping in memory");
                self.entries.insert(id, e);
                return false;
            }
            self.mem_bytes -= len;
            self.stats.evictions += 1;
            er_telemetry::counter!("fleet.store.evictions").incr();
        }
        // Dropped entirely: forget the content address and group slot.
        if let Some(ids) = self.by_addr.get_mut(&e.addr) {
            ids.retain(|&i| i != id);
        }
        if let Some(q) = self.per_group.get_mut(&e.group) {
            q.retain(|&i| i != id);
        }
        self.order.retain(|&i| i != id);
        true
    }
}

/// Reads one spill file with bounded retries; an armed chaos plan can fail
/// individual attempts ([`er_chaos::Fault::SpillRead`]).
fn read_spill(path: &std::path::Path) -> Result<Vec<u8>, StoreError> {
    let mut injected = false;
    let result = er_chaos::retry(SPILL_IO_ATTEMPTS, |_| {
        if er_chaos::inject(er_chaos::Fault::SpillRead).is_some() {
            injected = true;
            return Err(StoreError::SpillUnreadable {
                path: path.to_path_buf(),
            });
        }
        std::fs::read(path).map_err(|_| StoreError::SpillUnreadable {
            path: path.to_path_buf(),
        })
    });
    if injected {
        match &result {
            Ok(_) => er_chaos::note_recovered(er_chaos::Domain::Store),
            Err(_) => er_chaos::note_typed_error(er_chaos::Domain::Store),
        }
    }
    result
}

/// Writes one spill file with bounded retries; an armed chaos plan can
/// fail individual attempts ([`er_chaos::Fault::SpillWrite`]). The caller
/// degrades to keeping the trace in memory on `false`.
fn write_spill(path: &std::path::Path, bytes: &[u8]) -> bool {
    let mut injected = false;
    let result = er_chaos::retry(SPILL_IO_ATTEMPTS, |_| {
        if er_chaos::inject(er_chaos::Fault::SpillWrite).is_some() {
            injected = true;
            return Err(());
        }
        std::fs::write(path, bytes).map_err(|_| ())
    });
    if injected {
        match result {
            Ok(()) => er_chaos::note_recovered(er_chaos::Domain::Store),
            Err(()) => er_chaos::note_degraded(er_chaos::Domain::Store),
        }
    }
    result.is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets(n: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::Tip {
                target: (i % 7) as u32,
            })
            .collect()
    }

    #[test]
    fn identical_streams_dedup() {
        let mut s = TraceStore::new(StoreConfig::default());
        let a = s.put(1, &packets(50), false);
        let b = s.put(1, &packets(50), false);
        assert!(!a.deduped && b.deduped);
        assert_eq!(a.id, b.id);
        assert_eq!(s.stats().dedup_hits, 1);
        // Same bytes for a *different group* are a different occurrence.
        let c = s.put(2, &packets(50), false);
        assert!(!c.deduped);
    }

    #[test]
    fn round_trips_packets_and_gap_flag() {
        let mut s = TraceStore::new(StoreConfig::default());
        let p = packets(20);
        let r = s.put(1, &p, true);
        let (back, gap) = s.get(r.id).unwrap();
        assert_eq!(back, p);
        assert!(gap);
        assert!(r.compressed_len <= r.raw_len);
    }

    #[test]
    fn per_group_cap_evicts_oldest() {
        let mut s = TraceStore::new(StoreConfig {
            per_group_cap: 2,
            ..StoreConfig::default()
        });
        let ids: Vec<TraceId> = (0..4)
            .map(|i| s.put(1, &packets(10 + i), false).id)
            .collect();
        assert_eq!(s.get(ids[0]), Err(StoreError::Missing), "oldest evicted");
        assert_eq!(s.get(ids[1]), Err(StoreError::Missing));
        assert!(s.get(ids[2]).is_ok() && s.get(ids[3]).is_ok());
        assert_eq!(s.stats().evictions, 2);
    }

    #[test]
    fn pinned_traces_survive_budget_pressure() {
        let mut s = TraceStore::new(StoreConfig {
            per_group_cap: 100,
            byte_budget: 200,
            spill_dir: None,
        });
        let first = s.put(1, &packets(40), false).id;
        s.pin(first);
        for i in 0..5 {
            s.put(1, &packets(41 + i), false);
        }
        assert!(s.get(first).is_ok(), "pinned entry never evicted");
        s.unpin(first);
        s.put(1, &packets(99), false);
        assert_eq!(
            s.get(first),
            Err(StoreError::Missing),
            "unpinned entry is fair game"
        );
    }

    #[test]
    fn spill_dir_keeps_evicted_traces_readable() {
        let dir = std::env::temp_dir().join(format!("er-fleet-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = TraceStore::new(StoreConfig {
            per_group_cap: 1,
            byte_budget: 1 << 20,
            spill_dir: Some(dir.clone()),
        });
        let p = packets(30);
        let first = s.put(1, &p, false).id;
        s.put(1, &packets(31), false);
        assert_eq!(s.stats().spills, 1);
        let (back, _) = s.get(first).expect("spilled trace readable");
        assert_eq!(back, p);
        // And spilled bytes still dedup against a reoffer.
        assert!(s.put(1, &p, false).deduped);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_spill_file_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("er-fleet-rm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = TraceStore::new(StoreConfig {
            per_group_cap: 1,
            byte_budget: 1 << 20,
            spill_dir: Some(dir.clone()),
        });
        let first = s.put(1, &packets(30), false).id;
        s.put(1, &packets(31), false);
        assert_eq!(s.stats().spills, 1);
        // An operator (or a disk) losing the spill file must surface as a
        // typed error, not a panic or a silent `None`.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            s.get(first),
            Err(StoreError::SpillUnreadable { .. })
        ));
    }

    #[test]
    fn spill_read_fault_recovers_with_retry() {
        let _l = crate::testsync::chaos_lock();
        let dir = std::env::temp_dir().join(format!("er-fleet-cr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = TraceStore::new(StoreConfig {
            per_group_cap: 1,
            byte_budget: 1 << 20,
            spill_dir: Some(dir.clone()),
        });
        let p = packets(30);
        let first = s.put(1, &p, false).id;
        s.put(1, &packets(31), false); // evicts + spills `first`
        assert_eq!(s.stats().spills, 1);
        // Fewer injections than retry attempts: the read must recover.
        let _g = er_chaos::arm(er_chaos::ChaosPlan::new(3).with(
            er_chaos::Fault::SpillRead,
            er_chaos::FaultPolicy::always(u64::from(SPILL_IO_ATTEMPTS) - 1),
        ));
        let (back, _) = s.get(first).expect("retry absorbs transient read faults");
        assert_eq!(back, p);
        let st = er_chaos::stats().unwrap().domain(er_chaos::Domain::Store);
        assert_eq!(st.injected, u64::from(SPILL_IO_ATTEMPTS) - 1);
        assert_eq!(st.recovered, 1);
        drop(_g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_write_fault_degrades_to_memory() {
        let _l = crate::testsync::chaos_lock();
        let dir = std::env::temp_dir().join(format!("er-fleet-cw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = TraceStore::new(StoreConfig {
            per_group_cap: 1,
            byte_budget: 1 << 20,
            spill_dir: Some(dir.clone()),
        });
        let p = packets(30);
        let first = s.put(1, &p, false).id;
        // Enough injections to exhaust every write attempt for both
        // eviction candidates the cap loop will try: every spill fails and
        // the degraded policy keeps both traces in memory.
        let _g = er_chaos::arm(er_chaos::ChaosPlan::new(3).with(
            er_chaos::Fault::SpillWrite,
            er_chaos::FaultPolicy::always(u64::from(SPILL_IO_ATTEMPTS) * 2),
        ));
        s.put(1, &packets(31), false); // tries to evict + spill `first`
        assert_eq!(s.stats().spills, 0);
        assert_eq!(s.stats().spill_failures, 2, "both candidates refused");
        let (back, _) = s.get(first).expect("degraded entry still readable");
        assert_eq!(back, p);
        let st = er_chaos::stats().unwrap().domain(er_chaos::Domain::Store);
        assert_eq!(st.degraded, 2);
        drop(_g);
        // With chaos disarmed the next eviction pressure spills cleanly.
        s.put(1, &packets(32), false);
        assert!(s.stats().spills >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
