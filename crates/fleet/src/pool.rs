//! The scoped worker pool every fleet phase (and the bench harness) fans
//! out on. Moved here from `er-bench` so production-side code can share it
//! without depending on the benchmark crate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fans `f` out over `items` on a hand-rolled scoped worker pool
/// (`std::thread` only), returning results in input order.
///
/// Workers pull the next unclaimed index from a shared atomic counter, so
/// uneven per-item cost balances automatically. `serial` is the escape
/// hatch the determinism regression compares against: it runs everything
/// inline on the calling thread. Telemetry contexts are thread-local, so
/// callers that tag their work (`er_telemetry::set_context`) must do it
/// inside `f`, where it lands on the worker actually running the item.
pub fn parallel_map<T, R, F>(items: &[T], serial: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if serial || workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, false, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        assert_eq!(
            parallel_map(&items, false, f),
            parallel_map(&items, true, f)
        );
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, false, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], false, |_, &x| x + 1), vec![8]);
    }
}
