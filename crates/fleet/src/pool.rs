//! The scoped worker pool every fleet phase (and the bench harness) fans
//! out on. Moved here from `er-bench` so production-side code can share it
//! without depending on the benchmark crate.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A worker closure panicked (or was chaos-killed) while processing one
/// item. The other items' results are unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure failed.
    pub item: usize,
    /// The panic payload, when it was a string.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked on item {}: {}", self.item, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fans `f` out over `items` on a hand-rolled scoped worker pool
/// (`std::thread` only), returning per-item results in input order. A
/// panicking closure costs exactly its own item — the unwind is caught and
/// surfaced as [`WorkerPanic`] so the rest of the round completes — and an
/// armed [`er_chaos`] plan can kill items at the pool boundary (before `f`
/// runs) to rehearse exactly that path.
///
/// Workers pull the next unclaimed index from a shared atomic counter, so
/// uneven per-item cost balances automatically. `serial` is the escape
/// hatch the determinism regression compares against: it runs everything
/// inline on the calling thread. Telemetry contexts are thread-local, so
/// callers that tag their work (`er_telemetry::set_context`) must do it
/// inside `f`, where it lands on the worker actually running the item.
pub fn try_parallel_map<T, R, F>(items: &[T], serial: bool, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_map(items, serial, true, f)
}

fn run_map<T, R, F>(items: &[T], serial: bool, chaos: bool, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run_one = |i: usize, item: &T| -> Result<R, WorkerPanic> {
        if chaos && er_chaos::inject(er_chaos::Fault::WorkerPanic).is_some() {
            // The chaos kill lands at the pool boundary, before `f` touches
            // the item, so callers holding work in shared slots can requeue
            // it intact.
            return Err(WorkerPanic {
                item: i,
                message: "chaos: injected worker panic".to_string(),
            });
        }
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|p| WorkerPanic {
            item: i,
            message: panic_message(p.as_ref()),
        })
    };
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if serial || workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, WorkerPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = run_one(i, item);
                // catch_unwind above means the worker cannot die holding
                // this lock, but tolerate poison anyway: a poisoned slot
                // must never take down the round.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(WorkerPanic {
                        item: i,
                        message: "worker died before storing a result".to_string(),
                    })
                })
        })
        .collect()
}

/// [`try_parallel_map`] for infallible closures: re-raises the first
/// worker panic on the calling thread (after the whole round has run).
/// Chaos worker-kills are not injected here — callers of this variant have
/// declared they cannot handle per-item failure.
pub fn parallel_map<T, R, F>(items: &[T], serial: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_map(items, serial, false, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, false, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        assert_eq!(
            parallel_map(&items, false, f),
            parallel_map(&items, true, f)
        );
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, false, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], false, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn panicking_item_costs_only_itself() {
        let items: Vec<u32> = (0..16).collect();
        for serial in [true, false] {
            let out = try_parallel_map(&items, serial, |_, &x| {
                assert!(x != 7, "doomed item");
                x * 10
            });
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.item, 7);
                    assert!(e.message.contains("doomed item"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 10);
                }
            }
        }
    }

    #[test]
    fn all_items_panicking_still_returns_per_item_errors() {
        let items = [1u8, 2, 3];
        let out = try_parallel_map(&items, false, |_, _| -> u8 { panic!("everyone dies") });
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_err));
    }
}
