//! Failure triage: clustering crash reports from many instances into
//! *failure groups* by fault signature.
//!
//! The signature is the fleet-side analogue of the paper's failure
//! identity (§4: "the same failure" = same faulting PC, call stack, and
//! fault class): the crash site, the innermost frames of the call stack
//! (truncated, so unbounded recursion still clusters), and the failing
//! assertion/abort message when there is one. Reports with equal
//! signatures are reoccurrences of one failure and share one
//! reconstruction investigation; their redundant traces are deduplicated
//! by the store.

use er_minilang::error::{Failure, FailureKind, RuntimeFault};
use er_minilang::ir::{FuncId, InstrId};
use std::collections::HashMap;

/// Innermost call-stack frames retained by a signature. Deep or recursive
/// stacks differ only in their outer frames, which carry no identity.
pub const SIGNATURE_STACK_DEPTH: usize = 8;

/// The clustering key for one failure class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultSignature {
    /// Broad fault class (Table 1's "Bug Type" granularity).
    pub kind: FailureKind,
    /// Faulting instruction, original program coordinates.
    pub at: InstrId,
    /// Innermost [`SIGNATURE_STACK_DEPTH`] frames, outermost first.
    pub stack: Vec<FuncId>,
    /// Abort / failed-assertion message, when the fault carries one —
    /// distinguishes two assertions compiled to the same site.
    pub assertion: Option<String>,
}

impl FaultSignature {
    /// The signature of `failure`.
    pub fn of(failure: &Failure) -> FaultSignature {
        let stack = &failure.call_stack;
        let keep = stack.len().saturating_sub(SIGNATURE_STACK_DEPTH);
        FaultSignature {
            kind: failure.fault.kind(),
            at: failure.at,
            stack: stack[keep..].to_vec(),
            assertion: match &failure.fault {
                RuntimeFault::Abort { message } | RuntimeFault::AssertFailed { message } => {
                    Some(message.clone())
                }
                _ => None,
            },
        }
    }

    /// A stable 64-bit FNV-1a hash of the signature — the group key the
    /// store and report use. Grouping still confirms full signature
    /// equality, so a collision costs a comparison, never a mis-merge.
    pub fn hash64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(&[self.kind as u8]);
        eat(&self.at.func.0.to_le_bytes());
        eat(&self.at.block.0.to_le_bytes());
        eat(&self.at.index.to_le_bytes());
        for f in &self.stack {
            eat(&f.0.to_le_bytes());
        }
        if let Some(a) = &self.assertion {
            eat(a.as_bytes());
        }
        h
    }
}

/// One clustered failure and its reoccurrence statistics.
#[derive(Debug)]
pub struct FailureGroup {
    /// Group id: the signature hash (what `fleet.*` telemetry and the
    /// report key on).
    pub id: u64,
    /// The clustering key.
    pub signature: FaultSignature,
    /// First failure observed for the group (original coordinates) — the
    /// reconstruction target exemplar.
    pub exemplar: Failure,
    /// Total sightings across all instances, including redundant ones.
    pub occurrences: u64,
    /// Production run index of the first sighting.
    pub first_run: u64,
    /// Production run index of the latest sighting.
    pub last_run: u64,
}

impl FailureGroup {
    /// Reoccurrence rate in occurrences per 1000 observed production runs
    /// (fixed point, so scheduling priorities stay integer-deterministic).
    pub fn rate_per_mille(&self, runs_observed: u64) -> u64 {
        self.occurrences
            .saturating_mul(1000)
            .checked_div(runs_observed.max(1))
            .unwrap_or(0)
    }

    /// Short human label, e.g. `g3f2a…:Abort@f1b0i4`.
    pub fn label(&self) -> String {
        format!(
            "g{:08x}:{:?}@f{}b{}i{}",
            self.id & 0xffff_ffff,
            self.signature.kind,
            self.signature.at.func.0,
            self.signature.at.block.0,
            self.signature.at.index
        )
    }
}

/// The triage table: signature hash to failure groups.
#[derive(Debug, Default)]
pub struct Triage {
    groups: Vec<FailureGroup>,
    by_hash: HashMap<u64, Vec<usize>>,
}

impl Triage {
    /// An empty table.
    pub fn new() -> Triage {
        Triage::default()
    }

    /// Routes one failure sighting at production run `run_index` to its
    /// group, creating the group on first sight. Returns the group id and
    /// whether it is new.
    pub fn classify(&mut self, failure: &Failure, run_index: u64) -> (u64, bool) {
        er_telemetry::counter!("fleet.triage.occurrences").incr();
        let sig = FaultSignature::of(failure);
        let hash = sig.hash64();
        if let Some(idxs) = self.by_hash.get(&hash) {
            for &i in idxs {
                if self.groups[i].signature == sig {
                    let g = &mut self.groups[i];
                    g.occurrences += 1;
                    g.last_run = g.last_run.max(run_index);
                    g.first_run = g.first_run.min(run_index);
                    return (g.id, false);
                }
            }
        }
        // Hash collisions are broken by probing the low bits so distinct
        // signatures always get distinct group ids.
        let mut id = hash;
        while self.groups.iter().any(|g| g.id == id) {
            id = id.wrapping_add(1);
        }
        er_telemetry::counter!("fleet.triage.groups").incr();
        let idx = self.groups.len();
        self.groups.push(FailureGroup {
            id,
            signature: sig,
            exemplar: failure.clone(),
            occurrences: 1,
            first_run: run_index,
            last_run: run_index,
        });
        self.by_hash.entry(hash).or_default().push(idx);
        (id, true)
    }

    /// All groups, in creation order.
    pub fn groups(&self) -> &[FailureGroup] {
        &self.groups
    }

    /// The group with the given id.
    pub fn group(&self, id: u64) -> Option<&FailureGroup> {
        self.groups.iter().find(|g| g.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::ir::BlockId;

    fn failure(site: usize, stack: &[u32], message: &str) -> Failure {
        Failure {
            fault: RuntimeFault::Abort {
                message: message.to_string(),
            },
            at: InstrId {
                func: FuncId(0),
                block: BlockId(0),
                index: site,
            },
            call_stack: stack.iter().map(|&f| FuncId(f)).collect(),
            tid: 0,
        }
    }

    #[test]
    fn reoccurrences_cluster_and_count() {
        let mut t = Triage::new();
        let (a1, new1) = t.classify(&failure(3, &[0, 1], "boom"), 10);
        let (a2, new2) = t.classify(&failure(3, &[0, 1], "boom"), 25);
        assert!(new1 && !new2);
        assert_eq!(a1, a2);
        let g = t.group(a1).unwrap();
        assert_eq!(g.occurrences, 2);
        assert_eq!((g.first_run, g.last_run), (10, 25));
        assert_eq!(g.rate_per_mille(100), 20);
    }

    #[test]
    fn distinct_sites_and_messages_split() {
        let mut t = Triage::new();
        let (a, _) = t.classify(&failure(3, &[0, 1], "boom"), 0);
        let (b, _) = t.classify(&failure(4, &[0, 1], "boom"), 0);
        let (c, _) = t.classify(&failure(3, &[0, 1], "other"), 0);
        let (d, _) = t.classify(&failure(3, &[0, 2], "boom"), 0);
        assert_eq!(t.groups().len(), 4);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn deep_stacks_truncate_to_innermost_frames() {
        let mut t = Triage::new();
        let deep1: Vec<u32> = (0..40).collect();
        let mut deep2 = deep1.clone();
        deep2[0] = 99; // outer frame differs: same signature
        let (a, _) = t.classify(&failure(3, &deep1, "boom"), 0);
        let (b, _) = t.classify(&failure(3, &deep2, "boom"), 1);
        assert_eq!(a, b);
        assert_eq!(
            t.group(a).unwrap().signature.stack.len(),
            SIGNATURE_STACK_DEPTH
        );
    }

    #[test]
    fn tid_does_not_split_groups() {
        let mut t = Triage::new();
        let mut f1 = failure(3, &[0, 1], "boom");
        let mut f2 = f1.clone();
        f1.tid = 0;
        f2.tid = 7; // same crash from another thread is the same failure
        let (a, _) = t.classify(&f1, 0);
        let (b, _) = t.classify(&f2, 1);
        assert_eq!(a, b);
    }
}
