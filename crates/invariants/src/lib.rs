//! Daikon/MIMIC-style likely-invariant inference and failure localization
//! (paper §5.4).
//!
//! MIMIC mines *likely invariants* — predicates observed to hold on every
//! successful execution — and, given a failing execution, reports the
//! invariants it violates as candidate root causes. The paper's case study
//! shows ER-reconstructed executions drive this analysis as well as the
//! real failing inputs do. This crate provides the Daikon-lite miner:
//!
//! * [`observe`] runs a program and captures function entry/exit
//!   observations (argument and return values);
//! * [`InvariantSet::mine`] infers unary (constant, range, nonzero) and
//!   binary (`a <= b`, `a == b`) invariants from passing runs;
//! * [`InvariantSet::violations`] checks a run's observations and reports
//!   what broke, ranked by observation point.
//!
//! # Example
//!
//! ```
//! use er_invariants::{observe, InvariantSet};
//! use er_minilang::compile;
//! use er_minilang::env::Env;
//!
//! let program = compile(
//!     "fn half(n: u64) -> u64 { return n / 2; }\n fn main() { print(half(input_u64(0))); }",
//! )?;
//! let run = |v: u64| {
//!     let mut env = Env::new();
//!     env.push_input(0, &v.to_le_bytes());
//!     observe(&program, env).1
//! };
//! let passing = vec![run(10), run(20), run(30)];
//! let invariants = InvariantSet::mine(&program, &passing);
//! let bad = run(1_000_000);
//! assert!(!invariants.violations(&bad).is_empty());
//! # Ok::<(), er_minilang::CompileError>(())
//! ```

use er_minilang::env::Env;
use er_minilang::interp::{Machine, RunOutcome, SchedConfig};
use er_minilang::ir::{FuncId, Program};
use er_minilang::trace::TraceSink;
use std::collections::HashMap;
use std::fmt;

/// Which side of a function an observation was taken at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Point {
    /// Function entry: values are the arguments.
    Entry,
    /// Function exit: the single value is the return value.
    Exit,
}

/// One dynamic observation at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Observed function.
    pub func: FuncId,
    /// Entry or exit.
    pub point: Point,
    /// The observed values (arguments, or `[return value]`).
    pub values: Vec<u64>,
}

/// A [`TraceSink`] that captures entry/exit observations.
#[derive(Debug, Default)]
pub struct ObservationSink {
    /// Captured observations in order.
    pub observations: Vec<Observation>,
}

impl TraceSink for ObservationSink {
    fn call_args(&mut self, func: FuncId, args: &[u64]) {
        self.observations.push(Observation {
            func,
            point: Point::Entry,
            values: args.to_vec(),
        });
    }

    fn ret_value(&mut self, func: FuncId, value: u64) {
        self.observations.push(Observation {
            func,
            point: Point::Exit,
            values: vec![value],
        });
    }
}

/// Runs `program` under `env`, capturing observations.
pub fn observe(program: &Program, env: Env) -> (RunOutcome, Vec<Observation>) {
    observe_with_sched(program, env, SchedConfig::default())
}

/// [`observe`] with an explicit schedule (for reconstructed test cases).
pub fn observe_with_sched(
    program: &Program,
    env: Env,
    sched: SchedConfig,
) -> (RunOutcome, Vec<Observation>) {
    let report = Machine::with_sink(program, env, ObservationSink::default())
        .with_sched(sched)
        .run();
    (report.outcome, report.sink.observations)
}

/// A likely invariant over the values at one observation point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// `values[slot] == value` on every passing run.
    Constant {
        /// Value index.
        slot: usize,
        /// The constant.
        value: u64,
    },
    /// `min <= values[slot] <= max` across passing runs.
    Range {
        /// Value index.
        slot: usize,
        /// Smallest observed value.
        min: u64,
        /// Largest observed value.
        max: u64,
    },
    /// `values[slot] != 0` on every passing run.
    NonZero {
        /// Value index.
        slot: usize,
    },
    /// `values[a] <= values[b]` on every passing run.
    Le {
        /// Left value index.
        a: usize,
        /// Right value index.
        b: usize,
    },
    /// `values[a] == values[b]` on every passing run.
    EqSlots {
        /// Left value index.
        a: usize,
        /// Right value index.
        b: usize,
    },
}

impl Invariant {
    /// Whether the invariant holds for `values`.
    pub fn holds(&self, values: &[u64]) -> bool {
        match *self {
            Invariant::Constant { slot, value } => values.get(slot) == Some(&value),
            Invariant::Range { slot, min, max } => {
                values.get(slot).is_some_and(|&v| (min..=max).contains(&v))
            }
            Invariant::NonZero { slot } => values.get(slot).is_some_and(|&v| v != 0),
            Invariant::Le { a, b } => match (values.get(a), values.get(b)) {
                (Some(&x), Some(&y)) => x <= y,
                _ => false,
            },
            Invariant::EqSlots { a, b } => match (values.get(a), values.get(b)) {
                (Some(&x), Some(&y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Invariant::Constant { slot, value } => write!(f, "v{slot} == {value}"),
            Invariant::Range { slot, min, max } => write!(f, "{min} <= v{slot} <= {max}"),
            Invariant::NonZero { slot } => write!(f, "v{slot} != 0"),
            Invariant::Le { a, b } => write!(f, "v{a} <= v{b}"),
            Invariant::EqSlots { a, b } => write!(f, "v{a} == v{b}"),
        }
    }
}

/// A violated invariant, reported as a candidate root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Function name.
    pub func_name: String,
    /// Observation point.
    pub point: Point,
    /// The violated invariant.
    pub invariant: Invariant,
    /// The witnessing values from the failing run.
    pub witness: Vec<u64>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {:?}: {} violated by {:?}",
            self.func_name, self.point, self.invariant, self.witness
        )
    }
}

/// Likely invariants mined from passing runs.
#[derive(Debug, Clone, Default)]
pub struct InvariantSet {
    by_point: HashMap<(FuncId, Point), Vec<Invariant>>,
    func_names: HashMap<FuncId, String>,
}

/// Mining options.
#[derive(Debug, Clone, Copy)]
pub struct MineOptions {
    /// Emit `Range` invariants. Daikon suppresses low-confidence
    /// invariants; with few passing runs, ranges over genuinely varying
    /// values are noise, so root-cause comparisons usually disable them.
    pub include_ranges: bool,
}

impl Default for MineOptions {
    fn default() -> Self {
        MineOptions {
            include_ranges: true,
        }
    }
}

impl InvariantSet {
    /// Mines invariants from the observations of several passing runs.
    pub fn mine(program: &Program, passing_runs: &[Vec<Observation>]) -> InvariantSet {
        Self::mine_with_options(program, passing_runs, MineOptions::default())
    }

    /// [`InvariantSet::mine`] with explicit [`MineOptions`].
    pub fn mine_with_options(
        program: &Program,
        passing_runs: &[Vec<Observation>],
        options: MineOptions,
    ) -> InvariantSet {
        // Group observations by point across all runs.
        let mut grouped: HashMap<(FuncId, Point), Vec<&[u64]>> = HashMap::new();
        for run in passing_runs {
            for obs in run {
                grouped
                    .entry((obs.func, obs.point))
                    .or_default()
                    .push(&obs.values);
            }
        }
        let mut by_point = HashMap::new();
        for (key, samples) in grouped {
            let Some(width) = samples.iter().map(|v| v.len()).min() else {
                continue;
            };
            let mut invs: Vec<Invariant> = Vec::new();
            for slot in 0..width {
                let col: Vec<u64> = samples.iter().map(|v| v[slot]).collect();
                let (min, max) = (
                    *col.iter().min().expect("nonempty"),
                    *col.iter().max().expect("nonempty"),
                );
                if min == max {
                    invs.push(Invariant::Constant { slot, value: min });
                } else if options.include_ranges {
                    invs.push(Invariant::Range { slot, min, max });
                }
                if col.iter().all(|&v| v != 0) {
                    invs.push(Invariant::NonZero { slot });
                }
            }
            for a in 0..width {
                for b in 0..width {
                    if a == b {
                        continue;
                    }
                    if samples.iter().all(|v| v[a] == v[b]) {
                        if a < b {
                            invs.push(Invariant::EqSlots { a, b });
                        }
                    } else if samples.iter().all(|v| v[a] <= v[b]) {
                        invs.push(Invariant::Le { a, b });
                    }
                }
            }
            by_point.insert(key, invs);
        }
        let func_names = program
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f.name.clone()))
            .collect();
        InvariantSet {
            by_point,
            func_names,
        }
    }

    /// Total invariants mined.
    pub fn len(&self) -> usize {
        self.by_point.values().map(Vec::len).sum()
    }

    /// Whether nothing was mined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks a (failing) run's observations, reporting every violated
    /// invariant — MIMIC's candidate root causes.
    pub fn violations(&self, run: &[Observation]) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for obs in run {
            let Some(invs) = self.by_point.get(&(obs.func, obs.point)) else {
                continue;
            };
            for inv in invs {
                if !inv.holds(&obs.values) && seen.insert((obs.func, obs.point, inv.clone())) {
                    out.push(Violation {
                        func_name: self
                            .func_names
                            .get(&obs.func)
                            .cloned()
                            .unwrap_or_else(|| format!("f{}", obs.func.0)),
                        point: obs.point,
                        invariant: inv.clone(),
                        witness: obs.values.clone(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_minilang::compile;
    use er_workloads::coreutils;

    #[test]
    fn mines_constants_ranges_and_relations() {
        let program = compile(
            r#"
            fn f(a: u64, b: u64) -> u64 { return a + b; }
            fn main() {
                let x: u64 = input_u64(0);
                print(f(x, x + 10));
            }
            "#,
        )
        .unwrap();
        let run = |v: u64| {
            let mut env = Env::new();
            env.push_input(0, &v.to_le_bytes());
            observe(&program, env).1
        };
        let passing = vec![run(1), run(5), run(9)];
        let invs = InvariantSet::mine(&program, &passing);
        assert!(!invs.is_empty());
        // a <= b always held (b = a + 10).
        let bad = run(u64::MAX - 3); // wraps: b < a
        let violations = invs.violations(&bad);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v.invariant, Invariant::Le { .. })),
            "expected a <= b violation: {violations:?}"
        );
    }

    #[test]
    fn od_case_study_localizes_the_wrapped_length() {
        let program = coreutils::od_program();
        let passing: Vec<_> = coreutils::od_passing_envs()
            .into_iter()
            .map(|env| observe(&program, env).1)
            .collect();
        let invs = InvariantSet::mine(&program, &passing);
        let (outcome, failing) = observe(&program, coreutils::od_failing_env());
        assert!(matches!(outcome, RunOutcome::Failure(_)));
        let violations = invs.violations(&failing);
        assert!(!violations.is_empty(), "od violations expected");
        // The root cause surfaces at dump's entry: skip > len.
        assert!(
            violations.iter().any(|v| v.func_name == "dump"
                && v.point == Point::Entry
                && matches!(v.invariant, Invariant::Le { a: 1, b: 0 })),
            "skip <= len violation expected: {violations:#?}"
        );
    }

    #[test]
    fn pr_case_study_localizes_zero_columns() {
        let program = coreutils::pr_program();
        let passing: Vec<_> = coreutils::pr_passing_envs()
            .into_iter()
            .map(|env| observe(&program, env).1)
            .collect();
        let invs = InvariantSet::mine(&program, &passing);
        let (outcome, failing) = observe(&program, coreutils::pr_failing_env());
        assert!(matches!(outcome, RunOutcome::Failure(_)));
        let violations = invs.violations(&failing);
        assert!(
            violations.iter().any(|v| v.func_name == "layout"
                && matches!(v.invariant, Invariant::NonZero { slot: 1 })),
            "cols != 0 violation expected: {violations:#?}"
        );
    }

    #[test]
    fn passing_runs_have_no_violations() {
        let program = coreutils::pr_program();
        let passing: Vec<_> = coreutils::pr_passing_envs()
            .into_iter()
            .map(|env| observe(&program, env).1)
            .collect();
        let invs = InvariantSet::mine(&program, &passing);
        for run in &passing {
            assert!(invs.violations(run).is_empty());
        }
    }

    #[test]
    fn invariant_display_is_readable() {
        assert_eq!(Invariant::NonZero { slot: 1 }.to_string(), "v1 != 0");
        assert_eq!(
            Invariant::Range {
                slot: 0,
                min: 2,
                max: 9
            }
            .to_string(),
            "2 <= v0 <= 9"
        );
        assert_eq!(Invariant::Le { a: 1, b: 0 }.to_string(), "v1 <= v0");
    }
}
