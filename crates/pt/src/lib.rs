//! A software model of Intel Processor Trace (PT).
//!
//! ER's runtime (paper §3.1, §4) records control flow, coarse timestamps,
//! and `ptwrite` data values into a per-process ring buffer using Intel PT.
//! Real PT needs silicon; this crate models the parts ER's algorithms
//! actually consume:
//!
//! * **Packets** ([`packet`]): TNT (taken/not-taken bits), TIP (control-flow
//!   targets), RET, PTW (`ptwrite` payloads), TSC (timestamps), PGE
//!   (trace-on / thread-resume), PSB (sync points), and OVF (overflow).
//! * **Byte codec** ([`codec`]): a compact binary encoding — branches cost
//!   about one bit each, exactly the property that makes PT cheap enough for
//!   always-on production tracing.
//! * **Ring buffer** ([`ring`]): fixed-capacity circular storage (the
//!   paper's is 64 MB); wrap-around drops the oldest packets and the decoder
//!   resynchronizes at the next PSB.
//! * **Sink** ([`sink`]): [`sink::PtSink`] plugs into the interpreter's
//!   [`er_minilang::trace::TraceSink`] and packetizes events online.
//! * **Compression** ([`compress`]): run-length/delta re-encoding of packet
//!   streams (TNT-run merging, zigzag TSC/PTW deltas) for fleet-scale trace
//!   shipping and storage; exactly round-trip faithful to [`codec`].
//!
//! # Example
//!
//! ```
//! use er_minilang::{compile, env::Env, interp::Machine};
//! use er_pt::sink::{PtConfig, PtSink};
//!
//! let program = compile("fn main() { let x: u32 = 1; if x < 2 { print(x); } }")?;
//! let sink = PtSink::new(PtConfig::default());
//! let report = Machine::with_sink(&program, Env::new(), sink).run();
//! let trace = report.sink.finish();
//! let decoded = trace.decode()?;
//! assert_eq!(decoded.branch_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codec;
pub mod compress;
pub mod packet;
pub mod ring;
pub mod sink;

pub use codec::DecodeError;
pub use packet::{Packet, TraceEvent};
pub use ring::RingBuffer;
pub use sink::{packets_to_events, DecodedTrace, PtConfig, PtSink, PtTrace};
