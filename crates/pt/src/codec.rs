//! Byte-level packet encoding and decoding.
//!
//! The format keeps PT's key property — conditional branches cost roughly
//! one *bit* — while staying easy to decode deterministically:
//!
//! | opcode | packet | layout |
//! |---|---|---|
//! | `0xA0` | PSB | opcode only |
//! | `0xA1` | OVF | opcode only |
//! | `0xA2` | TNT | `count: u8`, then `ceil(count/8)` bit bytes |
//! | `0xA3` | TIP | `target: u32 LE` |
//! | `0xA4` | RET | opcode only |
//! | `0xA5` | PTW | `value: u64 LE` |
//! | `0xA6` | TSC | `tsc: u64 LE` |
//! | `0xA7` | PGE | `tid: u64 LE` |

use crate::packet::Packet;
use std::fmt;

const OP_PSB: u8 = 0xA0;
const OP_OVF: u8 = 0xA1;
const OP_TNT: u8 = 0xA2;
const OP_TIP: u8 = 0xA3;
const OP_RET: u8 = 0xA4;
const OP_PTW: u8 = 0xA5;
const OP_TSC: u8 = 0xA6;
const OP_PGE: u8 = 0xA7;

/// Encodes `packet` into `out`.
pub fn encode_into(packet: &Packet, out: &mut Vec<u8>) {
    match packet {
        Packet::Psb => out.push(OP_PSB),
        Packet::Ovf => out.push(OP_OVF),
        Packet::Tnt { count, bits } => {
            debug_assert_eq!(bits.len(), (*count as usize).div_ceil(8));
            out.push(OP_TNT);
            out.push(*count);
            out.extend_from_slice(bits);
        }
        Packet::Tip { target } => {
            out.push(OP_TIP);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Packet::Ret => out.push(OP_RET),
        Packet::Ptw { value } => {
            out.push(OP_PTW);
            out.extend_from_slice(&value.to_le_bytes());
        }
        Packet::Tsc { tsc } => {
            out.push(OP_TSC);
            out.extend_from_slice(&tsc.to_le_bytes());
        }
        Packet::Pge { tid } => {
            out.push(OP_PGE);
            out.extend_from_slice(&tid.to_le_bytes());
        }
    }
}

/// Encodes a packet sequence to bytes.
pub fn encode(packets: &[Packet]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in packets {
        encode_into(p, &mut out);
    }
    out
}

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A packet was cut off at the end of the byte stream.
    Truncated {
        /// Offset of the truncated packet's opcode.
        at: usize,
    },
    /// An unknown opcode outside a resynchronization scan.
    BadOpcode {
        /// The offending byte.
        opcode: u8,
        /// Its offset.
        at: usize,
    },
    /// The buffer wrapped and no PSB exists to resynchronize from.
    NoSyncPoint,
    /// A structurally invalid field (bad run length, oversized varint)
    /// in a compressed stream ([`crate::compress`]).
    Corrupt {
        /// Offset of the malformed packet's opcode.
        at: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "truncated packet at byte {at}"),
            DecodeError::BadOpcode { opcode, at } => {
                write!(f, "bad opcode {opcode:#04x} at byte {at}")
            }
            DecodeError::NoSyncPoint => write!(f, "wrapped trace has no PSB to sync from"),
            DecodeError::Corrupt { at } => write!(f, "corrupt compressed packet at byte {at}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a clean (unwrapped) byte stream.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or unknown opcodes.
pub fn decode(bytes: &[u8]) -> Result<Vec<Packet>, DecodeError> {
    decode_from(bytes, 0)
}

/// Decodes starting at `start`, e.g. after [`resync`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or unknown opcodes.
pub fn decode_from(bytes: &[u8], start: usize) -> Result<Vec<Packet>, DecodeError> {
    let mut out = Vec::new();
    let mut i = start;
    let n = bytes.len();
    let need = |i: usize, k: usize, at: usize| {
        if i + k > n {
            Err(DecodeError::Truncated { at })
        } else {
            Ok(())
        }
    };
    while i < n {
        let at = i;
        let op = bytes[i];
        i += 1;
        match op {
            OP_PSB => out.push(Packet::Psb),
            OP_OVF => out.push(Packet::Ovf),
            OP_RET => out.push(Packet::Ret),
            OP_TNT => {
                need(i, 1, at)?;
                let count = bytes[i];
                i += 1;
                let nb = (count as usize).div_ceil(8);
                need(i, nb, at)?;
                out.push(Packet::Tnt {
                    count,
                    bits: bytes[i..i + nb].to_vec(),
                });
                i += nb;
            }
            OP_TIP => {
                need(i, 4, at)?;
                let target = u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
                i += 4;
                out.push(Packet::Tip { target });
            }
            OP_PTW | OP_TSC | OP_PGE => {
                need(i, 8, at)?;
                let v = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
                i += 8;
                out.push(match op {
                    OP_PTW => Packet::Ptw { value: v },
                    OP_TSC => Packet::Tsc { tsc: v },
                    _ => Packet::Pge { tid: v },
                });
            }
            opcode => return Err(DecodeError::BadOpcode { opcode, at }),
        }
    }
    Ok(out)
}

/// How many bytes [`resync`] validates past a candidate PSB before
/// accepting it. A payload byte masquerading as PSB desynchronizes the
/// packet grammar almost immediately (payloads are at most 33 bytes), so a
/// few KiB of clean structure is overwhelming evidence of a real sync
/// point — and bounding the scan keeps resync linear in the buffer size
/// instead of quadratic.
pub const RESYNC_LOOKAHEAD: usize = 4096;

/// Finds the first PSB at or after `from`, for resynchronizing in a wrapped
/// buffer. A PSB opcode byte can also appear inside another packet's
/// payload, so candidates are validated by walking the packet structure
/// over a bounded window ([`RESYNC_LOOKAHEAD`] bytes). Truncated tails are
/// accepted: a wrapped or cut-short buffer legitimately ends mid-packet,
/// and rejecting it would discard every real sync point in a damaged
/// trace.
pub fn resync(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len())
        .filter(|&i| bytes[i] == OP_PSB)
        .find(|&i| plausible_from(bytes, i))
}

/// Structurally validates a bounded window after a candidate sync point.
/// Walks packet lengths without materializing packets, so each candidate
/// costs O(`RESYNC_LOOKAHEAD`) instead of a full-suffix decode.
fn plausible_from(bytes: &[u8], start: usize) -> bool {
    let window_end = bytes.len().min(start.saturating_add(RESYNC_LOOKAHEAD));
    let mut i = start;
    while i < window_end {
        match bytes[i] {
            OP_PSB | OP_OVF | OP_RET => i += 1,
            OP_TIP => i += 5,
            OP_PTW | OP_TSC | OP_PGE => i += 9,
            OP_TNT => {
                let Some(&count) = bytes.get(i + 1) else {
                    // The count byte itself was cut off: a truncated tail,
                    // which is a valid place for a damaged buffer to end.
                    return true;
                };
                i += 2 + (count as usize).div_ceil(8);
            }
            _ => return false,
        }
    }
    // Either the window was clean, or the final packet's payload extends
    // past the end of the buffer (a truncated tail) — both are plausible.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(packets: Vec<Packet>) {
        let bytes = encode(&packets);
        assert_eq!(decode(&bytes).unwrap(), packets);
    }

    #[test]
    fn roundtrips_every_packet_kind() {
        roundtrip(vec![
            Packet::Psb,
            Packet::Pge { tid: 0 },
            Packet::Tsc { tsc: 12345 },
            Packet::Tnt {
                count: 10,
                bits: vec![0b1010_1010, 0b0000_0011],
            },
            Packet::Tip { target: 7 },
            Packet::Ptw {
                value: 0xdead_beef_cafe_f00d,
            },
            Packet::Ret,
            Packet::Ovf,
        ]);
    }

    #[test]
    fn empty_stream_decodes_empty() {
        assert_eq!(decode(&[]).unwrap(), vec![]);
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&[Packet::Ptw { value: 42 }]);
        let err = decode(&bytes[..5]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { at: 0 }));
    }

    #[test]
    fn bad_opcode_detected() {
        let err = decode(&[0x42]).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::BadOpcode {
                opcode: 0x42,
                at: 0
            }
        ));
    }

    #[test]
    fn resync_skips_partial_head() {
        let mut bytes = vec![0x11, 0x22]; // garbage from a wrapped packet
        bytes.extend(encode(&[Packet::Psb, Packet::Ret]));
        let at = resync(&bytes, 0).unwrap();
        assert_eq!(at, 2);
        assert_eq!(
            decode_from(&bytes, at).unwrap(),
            vec![Packet::Psb, Packet::Ret]
        );
    }

    #[test]
    fn resync_accepts_truncated_tail() {
        // A wrapped buffer that ends mid-packet still has a perfectly good
        // sync point; the old full-decode validation wrongly rejected it.
        let mut bytes = vec![0x13]; // garbage from a wrapped packet
        bytes.extend(encode(&[Packet::Psb, Packet::Ptw { value: 7 }]));
        bytes.truncate(bytes.len() - 3); // cut the PTW payload short
        let at = resync(&bytes, 0).expect("truncated tail is a valid sync point");
        assert_eq!(at, 1);
        assert!(matches!(
            decode_from(&bytes, at),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn resync_validation_is_bounded() {
        // Damage far beyond the lookahead window does not disqualify a
        // candidate: validation is O(RESYNC_LOOKAHEAD), and distant damage
        // is the decode loop's problem, not resync's.
        let mut bytes = encode(&[Packet::Psb]);
        bytes.extend(std::iter::repeat_n(super::OP_RET, RESYNC_LOOKAHEAD));
        bytes.push(0xFF);
        assert_eq!(resync(&bytes, 0), Some(0));
    }

    #[test]
    fn resync_rejects_psb_byte_inside_payload() {
        // A PTW whose payload contains the PSB opcode byte: resync must not
        // lock onto the payload byte.
        let packets = vec![
            Packet::Ptw {
                value: u64::from(OP_PSB),
            },
            Packet::Psb,
            Packet::Ret,
        ];
        let bytes = encode(&packets);
        let at = resync(&bytes, 1).unwrap();
        assert_eq!(bytes[at], OP_PSB);
        let decoded = decode_from(&bytes, at).unwrap();
        assert_eq!(decoded, vec![Packet::Psb, Packet::Ret]);
    }
}
