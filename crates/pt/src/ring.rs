//! The trace ring buffer.
//!
//! ER configures "a 64 MB ring buffer for each monitored application"
//! (paper §4). Writing past capacity overwrites the oldest bytes, exactly
//! like the hardware's circular output region; the decoder then starts from
//! the first PSB packet it can find.

use std::collections::VecDeque;

/// A fixed-capacity circular byte buffer.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    data: Vec<u8>,
    capacity: usize,
    /// Next write position (monotonically increasing; modulo capacity gives
    /// the physical offset).
    written: u64,
    /// Record boundaries (packet starts) still inside the retained window,
    /// as monotone `written` offsets.
    marks: VecDeque<u64>,
    /// Record boundaries lost to overwriting.
    dropped_marks: u64,
}

impl RingBuffer {
    /// A ring holding at most `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            data: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            written: 0,
            marks: VecDeque::new(),
            dropped_marks: 0,
        }
    }

    /// Appends `bytes`, overwriting the oldest data when full.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        // Fast path: the buffer has not filled yet and the write fits.
        if self.data.len() + bytes.len() <= self.capacity && self.written == self.data.len() as u64
        {
            self.data.extend_from_slice(bytes);
            self.written += bytes.len() as u64;
            return;
        }
        // Slow path: fill the tail, then wrap with slice copies.
        let mut rest = bytes;
        if self.data.len() < self.capacity {
            let take = rest.len().min(self.capacity - self.data.len());
            self.data.extend_from_slice(&rest[..take]);
            self.written += take as u64;
            rest = &rest[take..];
        }
        while !rest.is_empty() {
            let pos = (self.written % self.capacity as u64) as usize;
            let take = rest.len().min(self.capacity - pos);
            self.data[pos..pos + take].copy_from_slice(&rest[..take]);
            self.written += take as u64;
            rest = &rest[take..];
        }
        self.prune_marks();
    }

    /// Records a record boundary (e.g. a packet start) at the current write
    /// position. Boundaries whose bytes are later overwritten count toward
    /// [`dropped_marks`](Self::dropped_marks), which is how ingestion knows
    /// *how many packets* a wrapped snapshot truncated rather than silently
    /// decoding a short trace.
    #[inline]
    pub fn mark(&mut self) {
        self.marks.push_back(self.written);
    }

    /// Drops marks whose start byte is no longer retained.
    fn prune_marks(&mut self) {
        let horizon = self.written.saturating_sub(self.capacity as u64);
        while let Some(&front) = self.marks.front() {
            if front >= horizon {
                break;
            }
            self.marks.pop_front();
            self.dropped_marks += 1;
        }
    }

    /// Appends one byte.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        self.write(std::slice::from_ref(&byte));
    }

    /// Total bytes ever written (including overwritten ones).
    pub fn total_written(&self) -> u64 {
        self.written
    }

    /// Whether older data has been overwritten.
    pub fn wrapped(&self) -> bool {
        self.written > self.capacity as u64
    }

    /// Number of bytes lost to overwriting (0 until the ring wraps).
    pub fn overwrites(&self) -> u64 {
        self.written.saturating_sub(self.capacity as u64)
    }

    /// Record boundaries lost to overwriting (0 until the ring wraps).
    pub fn dropped_marks(&self) -> u64 {
        self.dropped_marks
    }

    /// Record boundaries still fully inside the retained window.
    pub fn retained_marks(&self) -> usize {
        self.marks.len()
    }

    /// The retained bytes, oldest first.
    pub fn snapshot(&self) -> Vec<u8> {
        if !self.wrapped() {
            return self.data.clone();
        }
        let split = (self.written % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.data[split..]);
        out.extend_from_slice(&self.data[..split]);
        out
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_in_order_when_not_full() {
        let mut r = RingBuffer::new(8);
        r.write(&[1, 2, 3]);
        assert_eq!(r.snapshot(), vec![1, 2, 3]);
        assert!(!r.wrapped());
        assert_eq!(r.total_written(), 3);
    }

    #[test]
    fn wraps_and_keeps_newest() {
        let mut r = RingBuffer::new(4);
        r.write(&[1, 2, 3, 4, 5, 6]);
        assert!(r.wrapped());
        assert_eq!(r.snapshot(), vec![3, 4, 5, 6]);
        assert_eq!(r.total_written(), 6);
        assert_eq!(r.overwrites(), 2);
    }

    #[test]
    fn exact_fill_does_not_count_as_wrap() {
        let mut r = RingBuffer::new(4);
        r.write(&[1, 2, 3, 4]);
        assert!(!r.wrapped());
        assert_eq!(r.snapshot(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn single_byte_pushes() {
        let mut r = RingBuffer::new(2);
        r.push(9);
        r.push(8);
        r.push(7);
        assert_eq!(r.snapshot(), vec![8, 7]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    fn marks_count_dropped_records_on_wrap() {
        let mut r = RingBuffer::new(4);
        for b in 0..6u8 {
            r.mark();
            r.write(&[b, b]); // each "packet" is 2 bytes
        }
        // 12 bytes into a 4-byte ring: the last two packets fit, the first
        // four packet starts were overwritten.
        assert_eq!(r.dropped_marks(), 4);
        assert_eq!(r.retained_marks(), 2);
        assert_eq!(r.snapshot(), vec![4, 4, 5, 5]);
    }

    #[test]
    fn no_marks_dropped_without_wrap() {
        let mut r = RingBuffer::new(8);
        r.mark();
        r.write(&[1, 2, 3]);
        r.mark();
        r.write(&[4]);
        assert_eq!(r.dropped_marks(), 0);
        assert_eq!(r.retained_marks(), 2);
    }
}
