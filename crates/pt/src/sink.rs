//! The online tracing sink: packetizes interpreter events PT-style.

use crate::codec::{self, DecodeError};
use crate::packet::{Packet, TraceEvent};
use crate::ring::RingBuffer;
use er_minilang::env::InputEvent;
use er_minilang::ir::FuncId;
use er_minilang::trace::TraceSink;

/// Configuration for [`PtSink`].
#[derive(Debug, Clone, Copy)]
pub struct PtConfig {
    /// Ring buffer capacity in bytes (the paper uses 64 MB).
    pub ring_bytes: usize,
    /// Emit a PSB sync packet every this many packets.
    pub psb_period: u32,
    /// Emit TSC packets on thread resume (needed for multi-threaded
    /// reconstruction; harmless otherwise).
    pub timestamps: bool,
}

impl Default for PtConfig {
    fn default() -> Self {
        PtConfig {
            ring_bytes: 64 << 20,
            psb_period: 4096,
            timestamps: true,
        }
    }
}

/// Counters describing what a run's tracing cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PtStats {
    /// Conditional branches traced.
    pub branches: u64,
    /// Calls traced.
    pub calls: u64,
    /// Returns traced.
    pub rets: u64,
    /// `ptwrite` payloads traced.
    pub ptwrites: u64,
    /// Thread resumes traced.
    pub resumes: u64,
    /// Packets emitted.
    pub packets: u64,
    /// Bytes emitted (before any ring-buffer overwrite).
    pub bytes: u64,
    /// Packets lost to ring-buffer overwriting (0 until the ring wraps).
    /// Set when the trace is finalized so ingestion can report truncation.
    pub packets_dropped: u64,
    /// Chaos faults applied to the finalized bytes ([`PtTrace::chaos_tamper`]);
    /// 0 outside fault-injection runs.
    pub chaos_tampered: u64,
}

/// An online PT encoder implementing the interpreter's [`TraceSink`].
///
/// Branch outcomes accumulate into TNT packets (~1 bit per branch); other
/// events flush the pending TNT run first so that event order survives the
/// round trip.
#[derive(Debug)]
pub struct PtSink {
    ring: RingBuffer,
    config: PtConfig,
    tnt_acc: u64,
    tnt_count: u32,
    packets_since_psb: u32,
    stats: PtStats,
    scratch: Vec<u8>,
}

impl PtSink {
    /// A sink with the given configuration; writes an initial PSB.
    pub fn new(config: PtConfig) -> Self {
        let mut s = PtSink {
            ring: RingBuffer::new(config.ring_bytes),
            config,
            tnt_acc: 0,
            tnt_count: 0,
            packets_since_psb: 0,
            stats: PtStats::default(),
            scratch: Vec::with_capacity(16),
        };
        s.emit(&Packet::Psb);
        s
    }

    fn emit(&mut self, p: &Packet) {
        self.scratch.clear();
        codec::encode_into(p, &mut self.scratch);
        self.ring.mark();
        self.ring.write(&self.scratch);
        self.stats.packets += 1;
        self.stats.bytes += self.scratch.len() as u64;
        self.bump_psb();
    }

    fn bump_psb(&mut self) {
        self.packets_since_psb += 1;
        if self.packets_since_psb >= self.config.psb_period {
            self.packets_since_psb = 0;
            self.scratch.clear();
            codec::encode_into(&Packet::Psb, &mut self.scratch);
            self.ring.mark();
            self.ring.write(&self.scratch);
            self.stats.packets += 1;
            self.stats.bytes += 1;
        }
    }

    fn flush_tnt(&mut self) {
        if self.tnt_count == 0 {
            return;
        }
        // Encode the TNT packet inline (opcode, count, bit bytes) to keep
        // the per-64-branches cost allocation-free.
        let count = self.tnt_count as u8;
        let nb = (self.tnt_count as usize).div_ceil(8);
        self.scratch.clear();
        self.scratch.push(0xA2);
        self.scratch.push(count);
        self.scratch
            .extend_from_slice(&self.tnt_acc.to_le_bytes()[..nb]);
        self.tnt_acc = 0;
        self.tnt_count = 0;
        self.ring.mark();
        self.ring.write(&self.scratch);
        self.stats.packets += 1;
        self.stats.bytes += self.scratch.len() as u64;
        self.bump_psb();
    }

    /// Finalizes the trace: flushes pending TNT bits and snapshots the ring.
    pub fn finish(mut self) -> PtTrace {
        self.flush_tnt();
        self.stats.packets_dropped = self.ring.dropped_marks();
        let trace = PtTrace {
            wrapped: self.ring.wrapped(),
            bytes: self.ring.snapshot(),
            stats: self.stats,
        };
        if er_telemetry::enabled() {
            // Batched per trace so the per-packet emit path stays bare.
            er_telemetry::counter!("pt.packets_encoded").add(self.stats.packets);
            er_telemetry::counter!("pt.trace_bytes").add(trace.bytes.len() as u64);
            er_telemetry::counter!("ring.overwrites").add(self.ring.overwrites());
            er_telemetry::counter!("pt.packets_dropped").add(self.stats.packets_dropped);
            if trace.wrapped {
                er_telemetry::counter!("pt.wrapped_traces").incr();
            }
        }
        trace
    }

    /// Tracing counters so far.
    pub fn stats(&self) -> PtStats {
        self.stats
    }
}

impl TraceSink for PtSink {
    #[inline]
    fn cond_branch(&mut self, taken: bool) {
        self.stats.branches += 1;
        self.tnt_acc |= u64::from(taken) << self.tnt_count;
        self.tnt_count += 1;
        if self.tnt_count == 64 {
            self.flush_tnt();
        }
    }

    fn call(&mut self, func: FuncId) {
        self.stats.calls += 1;
        self.flush_tnt();
        self.emit(&Packet::Tip { target: func.0 });
    }

    fn ret(&mut self) {
        self.stats.rets += 1;
        self.flush_tnt();
        self.emit(&Packet::Ret);
    }

    fn ptwrite(&mut self, value: u64) {
        self.stats.ptwrites += 1;
        self.flush_tnt();
        self.emit(&Packet::Ptw { value });
    }

    fn thread_resume(&mut self, tid: u64, tsc: u64) {
        self.stats.resumes += 1;
        self.flush_tnt();
        self.emit(&Packet::Pge { tid });
        if self.config.timestamps {
            self.emit(&Packet::Tsc { tsc });
        }
    }

    #[inline]
    fn input(&mut self, _event: &InputEvent) {
        // Intel PT does not observe inputs; nothing to record.
    }
}

/// A finalized trace: the ring-buffer contents plus bookkeeping.
#[derive(Debug, Clone)]
pub struct PtTrace {
    /// Raw encoded bytes, oldest first.
    pub bytes: Vec<u8>,
    /// Whether the ring wrapped (oldest packets lost).
    pub wrapped: bool,
    /// Online tracing counters.
    pub stats: PtStats,
}

impl PtTrace {
    /// Decodes the byte stream into packets, resynchronizing at a PSB if
    /// the ring wrapped. Returns the packets and whether a leading gap
    /// (lost prefix) precedes them. This is the ingestion entry point: the
    /// fleet path stores packets (re-encoded through [`crate::compress`])
    /// and later flattens them with [`packets_to_events`], reproducing
    /// [`decode`](Self::decode) bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the stream is corrupt or a wrapped
    /// stream contains no sync point.
    pub fn packets(&self) -> Result<(Vec<Packet>, bool), DecodeError> {
        let result = self.packets_inner();
        if self.stats.chaos_tampered > 0 {
            // Account for injected trace damage: either the decoder walked
            // through it (recovered) or it surfaced as a typed error.
            match &result {
                Ok(_) => er_chaos::note_recovered(er_chaos::Domain::Trace),
                Err(_) => er_chaos::note_typed_error(er_chaos::Domain::Trace),
            }
        }
        result
    }

    fn packets_inner(&self) -> Result<(Vec<Packet>, bool), DecodeError> {
        if !self.wrapped {
            return Ok((codec::decode(&self.bytes)?, false));
        }
        let mut at = codec::resync(&self.bytes, 0).ok_or(DecodeError::NoSyncPoint)?;
        loop {
            match codec::decode_from(&self.bytes, at) {
                Ok(packets) => return Ok((packets, true)),
                // resync validates a bounded window, so an accepted sync
                // point can still run into damage further out; everything
                // up to the damage is part of the (already reported) gap,
                // and decoding restarts at the next sync point after it.
                Err(DecodeError::BadOpcode { at: bad, .. } | DecodeError::Corrupt { at: bad }) => {
                    at = codec::resync(&self.bytes, bad + 1).ok_or(DecodeError::NoSyncPoint)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Applies any armed Trace-domain chaos faults to the finalized bytes,
    /// in place. The deployment layer calls this on the failing occurrence
    /// that ships to ingestion — never on healthy runs — so injection
    /// budgets are spent on traces the pipeline actually has to survive.
    pub fn chaos_tamper(&mut self) {
        if !er_chaos::armed() || self.bytes.is_empty() {
            return;
        }
        if let Some(e) = er_chaos::inject(er_chaos::Fault::TraceCorrupt) {
            // Flip a few bytes at entropy-chosen offsets: models silent
            // DMA/transport corruption.
            let n = self.bytes.len() as u64;
            for k in 0..3u64 {
                let idx = (e.rotate_left(17 * k as u32) ^ k.wrapping_mul(0x9e37_79b9)) % n;
                self.bytes[idx as usize] ^= 0x5a;
            }
            self.stats.chaos_tampered += 1;
        }
        if let Some(e) = er_chaos::inject(er_chaos::Fault::TraceTruncate) {
            // Cut the tail short: models a snapshot racing the writer.
            let n = self.bytes.len();
            let keep = 1 + (e as usize) % n.max(1);
            self.bytes.truncate(keep.min(n.saturating_sub(1)).max(1));
            self.stats.chaos_tampered += 1;
        }
        if let Some(e) = er_chaos::inject(er_chaos::Fault::TraceReorder) {
            // Rotate the byte stream: models out-of-order chunk delivery.
            let n = self.bytes.len();
            if n >= 4 {
                self.bytes.rotate_left(1 + (e as usize) % (n - 2));
                // A rotated stream no longer starts at a packet boundary;
                // decoding must resynchronize like a wrapped ring.
                self.wrapped = true;
                self.stats.chaos_tampered += 1;
            }
        }
    }

    /// Decodes the byte stream into flattened [`TraceEvent`]s,
    /// resynchronizing at a PSB if the ring wrapped.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the stream is corrupt or a wrapped
    /// stream contains no sync point.
    pub fn decode(&self) -> Result<DecodedTrace, DecodeError> {
        let _span = er_telemetry::span!("pt.decode");
        let (packets, gap) = self.packets()?;
        let events = packets_to_events(&packets, gap);
        if er_telemetry::enabled() {
            er_telemetry::counter!("pt.packets_decoded").add(packets.len() as u64);
            er_telemetry::counter!("pt.events_decoded").add(events.len() as u64);
        }
        Ok(DecodedTrace { events })
    }
}

/// Flattens a packet sequence into [`TraceEvent`]s; `leading_gap` prefixes
/// a [`TraceEvent::Gap`] (set when the packets came from a wrapped ring).
pub fn packets_to_events(packets: &[Packet], leading_gap: bool) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(packets.len());
    if leading_gap {
        events.push(TraceEvent::Gap);
    }
    for p in packets {
        match p {
            Packet::Psb => {}
            Packet::Ovf => events.push(TraceEvent::Gap),
            Packet::Tnt { count, bits } => {
                for i in 0..*count as usize {
                    let bit = bits[i / 8] >> (i % 8) & 1;
                    events.push(TraceEvent::Branch(bit == 1));
                }
            }
            Packet::Tip { target } => events.push(TraceEvent::Call(*target)),
            Packet::Ret => events.push(TraceEvent::Ret),
            Packet::Ptw { value } => events.push(TraceEvent::PtWrite(*value)),
            Packet::Tsc { tsc } => events.push(TraceEvent::Timestamp(*tsc)),
            Packet::Pge { tid } => events.push(TraceEvent::ThreadResume(*tid)),
        }
    }
    events
}

/// A decoded trace ready for offline analysis.
#[derive(Debug, Clone, Default)]
pub struct DecodedTrace {
    /// Flattened events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl DecodedTrace {
    /// Number of conditional-branch events.
    pub fn branch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Branch(_)))
            .count()
    }

    /// All branch outcomes in order.
    pub fn branches(&self) -> Vec<bool> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Branch(b) => Some(*b),
                _ => None,
            })
            .collect()
    }

    /// All `ptwrite` payloads in order.
    pub fn ptwrites(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PtWrite(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Whether any packets were lost.
    pub fn has_gap(&self) -> bool {
        self.events.iter().any(|e| matches!(e, TraceEvent::Gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ring: usize) -> PtSink {
        PtSink::new(PtConfig {
            ring_bytes: ring,
            psb_period: 64,
            timestamps: true,
        })
    }

    #[test]
    fn branches_round_trip_in_order() {
        let mut s = tiny(1 << 16);
        let pattern: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            s.cond_branch(b);
        }
        let t = s.finish();
        let d = t.decode().unwrap();
        assert_eq!(d.branches(), pattern);
        assert!(!d.has_gap());
    }

    #[test]
    fn mixed_events_preserve_order() {
        let mut s = tiny(1 << 16);
        s.cond_branch(true);
        s.call(FuncId(5));
        s.cond_branch(false);
        s.ptwrite(99);
        s.ret();
        let d = s.finish().decode().unwrap();
        let evs: Vec<_> = d.events;
        assert_eq!(
            evs,
            vec![
                TraceEvent::Branch(true),
                TraceEvent::Call(5),
                TraceEvent::Branch(false),
                TraceEvent::PtWrite(99),
                TraceEvent::Ret,
            ]
        );
    }

    #[test]
    fn thread_resume_emits_pge_and_tsc() {
        let mut s = tiny(1 << 16);
        s.thread_resume(2, 777);
        let d = s.finish().decode().unwrap();
        assert_eq!(
            d.events,
            vec![TraceEvent::ThreadResume(2), TraceEvent::Timestamp(777)]
        );
    }

    #[test]
    fn branch_cost_is_about_one_bit() {
        let mut s = tiny(1 << 20);
        for i in 0..100_000u32 {
            s.cond_branch(i % 2 == 0);
        }
        let t = s.finish();
        // 100k branches in well under 2 bytes/branch-byte budget: expect
        // ~12.5 KB of TNT payload plus small header overhead.
        assert!(
            t.stats.bytes < 16_000,
            "branch bytes too high: {}",
            t.stats.bytes
        );
        assert_eq!(t.stats.branches, 100_000);
    }

    #[test]
    fn wrap_resyncs_at_psb_and_reports_gap() {
        let mut s = PtSink::new(PtConfig {
            ring_bytes: 256,
            psb_period: 8,
            timestamps: false,
        });
        for i in 0..2_000u64 {
            s.ptwrite(i);
        }
        let t = s.finish();
        assert!(t.wrapped);
        // Overwrite accounting: the sink knows how many packets the wrap
        // destroyed, and they reconcile with what the decoder recovers.
        assert!(t.stats.packets_dropped > 0);
        let d = t.decode().unwrap();
        assert!(d.has_gap());
        // Newest ptwrites must survive.
        let ptws = d.ptwrites();
        assert_eq!(*ptws.last().unwrap(), 1_999);
        assert!(ptws.len() >= 8);
        // And they are consecutive (suffix of the original stream).
        for w in ptws.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn stats_count_everything() {
        let mut s = tiny(1 << 16);
        s.cond_branch(true);
        s.call(FuncId(1));
        s.ret();
        s.ptwrite(3);
        s.thread_resume(0, 1);
        let st = s.stats();
        assert_eq!(st.branches, 1);
        assert_eq!(st.calls, 1);
        assert_eq!(st.rets, 1);
        assert_eq!(st.ptwrites, 1);
        assert_eq!(st.resumes, 1);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use er_chaos::{ChaosPlan, Domain, Fault, FaultPolicy};
    use std::sync::Mutex;

    // The chaos plan is process-global; tamper tests must not overlap.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn trace_with_traffic() -> PtTrace {
        let mut s = PtSink::new(PtConfig {
            ring_bytes: 1 << 16,
            psb_period: 16,
            timestamps: false,
        });
        for i in 0..200u64 {
            s.cond_branch(i % 3 == 0);
            s.ptwrite(i);
        }
        s.finish()
    }

    #[test]
    fn tamper_is_inert_when_disarmed() {
        let _l = lock();
        er_chaos::disarm();
        let mut t = trace_with_traffic();
        let before = t.bytes.clone();
        t.chaos_tamper();
        assert_eq!(t.bytes, before);
        assert_eq!(t.stats.chaos_tampered, 0);
    }

    #[test]
    fn truncated_trace_surfaces_a_typed_error_never_a_panic() {
        let _l = lock();
        let _g =
            er_chaos::arm(ChaosPlan::new(11).with(Fault::TraceTruncate, FaultPolicy::always(1)));
        let mut t = trace_with_traffic();
        t.chaos_tamper();
        assert_eq!(t.stats.chaos_tampered, 1);
        // Damaged or not, decoding must terminate without panicking.
        let _ = t.packets();
        let s = er_chaos::stats().unwrap();
        let d = s.domain(Domain::Trace);
        assert_eq!(d.injected, 1);
        assert!(d.handled() >= 1, "tamper outcome must be accounted: {d:?}");
    }

    #[test]
    fn reordered_trace_resyncs_or_errors_without_panicking() {
        let _l = lock();
        let _g =
            er_chaos::arm(ChaosPlan::new(23).with(Fault::TraceReorder, FaultPolicy::always(1)));
        let mut t = trace_with_traffic();
        t.chaos_tamper();
        assert_eq!(t.stats.chaos_tampered, 1);
        assert!(t.wrapped, "a rotated stream must resynchronize like a wrap");
        match t.packets() {
            Ok((packets, gap)) => {
                assert!(gap, "resynced decode reports the lost prefix");
                assert!(!packets.is_empty());
            }
            Err(e) => {
                // Typed, never a panic.
                let _ = e.to_string();
            }
        }
        assert!(er_chaos::stats().unwrap().domain(Domain::Trace).handled() >= 1);
    }

    #[test]
    fn corrupted_trace_decodes_or_errors_without_panicking() {
        let _l = lock();
        let _g = er_chaos::arm(ChaosPlan::new(5).with(Fault::TraceCorrupt, FaultPolicy::always(1)));
        let mut t = trace_with_traffic();
        let before = t.bytes.clone();
        t.chaos_tamper();
        assert_ne!(t.bytes, before, "corruption must actually flip bytes");
        assert_eq!(t.bytes.len(), before.len());
        let _ = t.packets();
        assert!(er_chaos::stats().unwrap().domain(Domain::Trace).handled() >= 1);
    }
}

/// Drops a deterministic pseudo-random fraction of branch events from a
/// decoded trace — a model of the paper's x86→LLVM mapping loss (§4: only
/// 91.5% of control-flow events mapped back to LLVM IR). Shepherded
/// execution requires a complete trace, so ER's prototype traces inside
/// KLEE instead; this adapter exists to *measure* that design pressure.
pub fn drop_branches(trace: &DecodedTrace, drop_per_mille: u32, seed: u64) -> DecodedTrace {
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let events = trace
        .events
        .iter()
        .filter(|e| {
            !(matches!(e, TraceEvent::Branch(_)) && next() % 1000 < u64::from(drop_per_mille))
        })
        .copied()
        .collect();
    DecodedTrace { events }
}

#[cfg(test)]
mod lossy_tests {
    use super::*;

    #[test]
    fn drop_branches_removes_roughly_the_requested_fraction() {
        let trace = DecodedTrace {
            events: (0..10_000)
                .map(|i| TraceEvent::Branch(i % 2 == 0))
                .collect(),
        };
        let lossy = drop_branches(&trace, 85, 42);
        let kept = lossy.branch_count() as f64 / 10_000.0;
        assert!((0.88..0.95).contains(&kept), "kept {kept}");
        // Non-branch events are never dropped.
        let trace2 = DecodedTrace {
            events: vec![TraceEvent::Ret, TraceEvent::PtWrite(1)],
        };
        assert_eq!(drop_branches(&trace2, 999, 1).events.len(), 2);
        // Deterministic per seed.
        assert_eq!(
            drop_branches(&trace, 85, 7).events,
            drop_branches(&trace, 85, 7).events
        );
    }
}
