//! Packet types modeled after Intel PT.

use serde::{Deserialize, Serialize};

/// One trace packet. The inventory mirrors the Intel PT packets ER relies
/// on; payloads are simplified (e.g. TIP carries a function id rather than a
/// compressed virtual address) but the information content is the same.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// Packet stream boundary: a synchronization point the decoder can
    /// resume from after an overflow or ring-buffer wrap.
    Psb,
    /// Internal buffer overflow: packets were lost before this point.
    Ovf,
    /// Taken/not-taken bits for up to 255 conditional branches, oldest
    /// first.
    Tnt {
        /// Number of valid bits.
        count: u8,
        /// Bit `i` (LSB-first across bytes) is branch `i`'s outcome.
        bits: Vec<u8>,
    },
    /// Target of a transfer the TNT stream cannot encode (here: a direct
    /// call's target function).
    Tip {
        /// Target function id.
        target: u32,
    },
    /// A function return (PT compresses most returns to single bits; we
    /// model them as a dedicated packet).
    Ret,
    /// A `ptwrite` payload.
    Ptw {
        /// The recorded 64-bit value.
        value: u64,
    },
    /// A timestamp.
    Tsc {
        /// Virtual time (the machine's global instruction counter).
        tsc: u64,
    },
    /// Trace resumed for a software thread (models PGE plus the PIP/VMCS
    /// context PT uses to attribute trace to a context).
    Pge {
        /// Thread id now executing.
        tid: u64,
    },
}

impl Packet {
    /// Encoded size in bytes under [`crate::codec`].
    pub fn encoded_len(&self) -> usize {
        match self {
            Packet::Psb | Packet::Ovf | Packet::Ret => 1,
            Packet::Tnt { bits, .. } => 2 + bits.len(),
            Packet::Tip { .. } => 5,
            Packet::Ptw { .. } | Packet::Tsc { .. } | Packet::Pge { .. } => 9,
        }
    }
}

/// A fully decoded, flattened trace event — what the offline analysis
/// engine consumes after unpacking TNT bit runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Conditional branch outcome.
    Branch(bool),
    /// Direct call to a function id.
    Call(u32),
    /// Function return.
    Ret,
    /// `ptwrite` payload.
    PtWrite(u64),
    /// Timestamp.
    Timestamp(u64),
    /// Thread `tid` resumed.
    ThreadResume(u64),
    /// Packets were lost here (overflow or wrap); downstream analyses must
    /// treat the trace prefix as missing.
    Gap,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_matches_shape() {
        assert_eq!(Packet::Psb.encoded_len(), 1);
        assert_eq!(Packet::Tip { target: 3 }.encoded_len(), 5);
        assert_eq!(Packet::Ptw { value: 1 }.encoded_len(), 9);
        assert_eq!(
            Packet::Tnt {
                count: 10,
                bits: vec![0xff, 0x03]
            }
            .encoded_len(),
            4
        );
    }
}
