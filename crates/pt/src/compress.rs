//! Run-length/delta compression of PT packet streams for fleet-scale
//! trace shipping.
//!
//! The raw [`codec`](crate::codec) format is what the *hardware* writes:
//! fixed-width payloads (8-byte TSC/PTW/PGE, 4-byte TIP) and one TNT
//! packet per 64 branches. Shipping ring-buffer snapshots from every
//! instance of a production fleet to the analysis engine makes the wire
//! and storage format worth optimizing, so this module re-encodes packet
//! streams with the classic trace tricks:
//!
//! * **TNT run merging** — consecutive full TNT packets collapse into one
//!   run header plus a contiguous bit payload; loop-heavy traces are long
//!   runs of identical bit bytes, so the payload is further byte-RLE'd.
//! * **TSC deltas** — timestamps are monotone counters; the zigzag-varint
//!   delta from the previous TSC is 1–2 bytes instead of 8.
//! * **PTW deltas** — recorded data values are frequently clustered
//!   (indices, small keys), so they delta-chain too.
//! * **Varint TIP/PGE** — control-flow targets and thread ids are small.
//! * **RET run-length** — return bursts (call-stack unwinds) collapse.
//!
//! The format is *exactly* round-trip faithful: for any packet sequence
//! `p`, `decompress(&compress(&p)) == p`, byte-for-byte including TNT
//! padding bits (property-tested against [`codec`] in
//! `tests/prop_compress.rs`). Compression is measured by
//! [`ratio`]: raw codec bytes over compressed bytes.

use crate::codec::{self, DecodeError};
use crate::packet::Packet;

/// Format version tag (first byte of every compressed stream).
const VERSION: u8 = 0x01;

const C_PSB: u8 = 0x01;
const C_OVF: u8 = 0x02;
const C_RET: u8 = 0x03; // + varint run length
const C_TNT_RUN: u8 = 0x04; // + varint bit count + RLE payload
const C_TNT_RAW: u8 = 0x05; // + count byte + raw bit bytes (non-canonical)
const C_TIP: u8 = 0x06; // + varint target
const C_PTW: u8 = 0x07; // + zigzag varint delta
const C_TSC: u8 = 0x08; // + zigzag varint delta
const C_PGE: u8 = 0x09; // + varint tid

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], i: &mut usize, at: usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*i).ok_or(DecodeError::Truncated { at })?;
        *i += 1;
        if shift >= 64 {
            return Err(DecodeError::Corrupt { at });
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Byte-level RLE: control varints alternate between literal chunks
/// (`n<<1`, then `n` bytes) and runs (`n<<1|1`, then the repeated byte).
fn rle_encode(bytes: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < bytes.len() {
        // Measure the run starting here.
        let b = bytes[i];
        let mut run = 1;
        while i + run < bytes.len() && bytes[i + run] == b {
            run += 1;
        }
        if run >= 3 {
            put_varint(((run as u64) << 1) | 1, out);
            out.push(b);
            i += run;
            continue;
        }
        // Literal chunk: scan forward until the next run of >= 3.
        let start = i;
        i += run;
        while i < bytes.len() {
            let b = bytes[i];
            let mut run = 1;
            while i + run < bytes.len() && bytes[i + run] == b {
                run += 1;
            }
            if run >= 3 {
                break;
            }
            i += run;
        }
        put_varint(((i - start) as u64) << 1, out);
        out.extend_from_slice(&bytes[start..i]);
    }
}

fn rle_decode(
    bytes: &[u8],
    i: &mut usize,
    expect: usize,
    at: usize,
) -> Result<Vec<u8>, DecodeError> {
    let mut out = Vec::with_capacity(expect.min(1 << 20));
    while out.len() < expect {
        let control = get_varint(bytes, i, at)?;
        let n = usize::try_from(control >> 1).map_err(|_| DecodeError::Corrupt { at })?;
        if control & 1 == 1 {
            let &b = bytes.get(*i).ok_or(DecodeError::Truncated { at })?;
            *i += 1;
            out.extend(std::iter::repeat_n(b, n));
        } else {
            let end = i.checked_add(n).ok_or(DecodeError::Corrupt { at })?;
            if end > bytes.len() {
                return Err(DecodeError::Truncated { at });
            }
            out.extend_from_slice(&bytes[*i..end]);
            *i = end;
        }
    }
    if out.len() != expect {
        return Err(DecodeError::Corrupt { at });
    }
    Ok(out)
}

/// Whether a TNT packet is *canonical*: the shape [`crate::sink::PtSink`]
/// emits (1..=64 bits, exactly `ceil(count/8)` bit bytes). Only canonical
/// packets may join a merged run; anything else is stored verbatim so
/// arbitrary streams still round-trip exactly.
fn canonical_tnt(count: u8, bits: &[u8]) -> bool {
    (1..=64).contains(&count) && bits.len() == (count as usize).div_ceil(8)
}

/// Compresses a packet sequence. Never fails; the output always begins
/// with a one-byte version tag.
pub fn compress(packets: &[Packet]) -> Vec<u8> {
    let mut out = Vec::with_capacity(packets.len() + 1);
    out.push(VERSION);
    let mut last_tsc = 0u64;
    let mut last_ptw = 0u64;
    let mut i = 0;
    while i < packets.len() {
        match &packets[i] {
            Packet::Psb => {
                out.push(C_PSB);
                i += 1;
            }
            Packet::Ovf => {
                out.push(C_OVF);
                i += 1;
            }
            Packet::Ret => {
                let mut run = 1;
                while run < (1 << 24) && matches!(packets.get(i + run), Some(Packet::Ret)) {
                    run += 1;
                }
                out.push(C_RET);
                put_varint(run as u64, &mut out);
                i += run;
            }
            Packet::Tnt { count, bits } if canonical_tnt(*count, bits) => {
                // Greedily merge: every packet but the last must carry a
                // full 64 bits so the decoder can re-split unambiguously.
                let mut nbits = u64::from(*count);
                let mut payload: Vec<u8> = bits.clone();
                let mut run = 1;
                let mut prev_count = *count;
                while prev_count == 64 && nbits < (1 << 29) {
                    match packets.get(i + run) {
                        Some(Packet::Tnt { count, bits }) if canonical_tnt(*count, bits) => {
                            nbits += u64::from(*count);
                            payload.extend_from_slice(bits);
                            prev_count = *count;
                            run += 1;
                        }
                        _ => break,
                    }
                }
                out.push(C_TNT_RUN);
                put_varint(nbits, &mut out);
                rle_encode(&payload, &mut out);
                i += run;
            }
            Packet::Tnt { count, bits } => {
                out.push(C_TNT_RAW);
                out.push(*count);
                put_varint(bits.len() as u64, &mut out);
                out.extend_from_slice(bits);
                i += 1;
            }
            Packet::Tip { target } => {
                out.push(C_TIP);
                put_varint(u64::from(*target), &mut out);
                i += 1;
            }
            Packet::Ptw { value } => {
                out.push(C_PTW);
                put_varint(zigzag(value.wrapping_sub(last_ptw) as i64), &mut out);
                last_ptw = *value;
                i += 1;
            }
            Packet::Tsc { tsc } => {
                out.push(C_TSC);
                put_varint(zigzag(tsc.wrapping_sub(last_tsc) as i64), &mut out);
                last_tsc = *tsc;
                i += 1;
            }
            Packet::Pge { tid } => {
                out.push(C_PGE);
                put_varint(*tid, &mut out);
                i += 1;
            }
        }
    }
    out
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, an unknown opcode or version,
/// or a malformed run header.
pub fn decompress(bytes: &[u8]) -> Result<Vec<Packet>, DecodeError> {
    let mut out = Vec::new();
    if bytes.is_empty() {
        return Err(DecodeError::Truncated { at: 0 });
    }
    if bytes[0] != VERSION {
        return Err(DecodeError::BadOpcode {
            opcode: bytes[0],
            at: 0,
        });
    }
    let mut last_tsc = 0u64;
    let mut last_ptw = 0u64;
    let mut i = 1;
    while i < bytes.len() {
        let at = i;
        let op = bytes[i];
        i += 1;
        match op {
            C_PSB => out.push(Packet::Psb),
            C_OVF => out.push(Packet::Ovf),
            C_RET => {
                let run = get_varint(bytes, &mut i, at)?;
                if run == 0 || run > (1 << 24) {
                    return Err(DecodeError::Corrupt { at });
                }
                for _ in 0..run {
                    out.push(Packet::Ret);
                }
            }
            C_TNT_RUN => {
                let mut nbits = get_varint(bytes, &mut i, at)?;
                if nbits == 0 || nbits > (1 << 30) {
                    return Err(DecodeError::Corrupt { at });
                }
                // Payload length: full packets carry 8 bytes per 64 bits,
                // the final partial packet ceil(rem/8).
                let full = ((nbits - 1) / 64) as usize;
                let rem = nbits - full as u64 * 64; // 1..=64
                let payload_len = full * 8 + (rem as usize).div_ceil(8);
                let payload = rle_decode(bytes, &mut i, payload_len, at)?;
                let mut off = 0;
                while nbits > 64 {
                    out.push(Packet::Tnt {
                        count: 64,
                        bits: payload[off..off + 8].to_vec(),
                    });
                    off += 8;
                    nbits -= 64;
                }
                out.push(Packet::Tnt {
                    count: nbits as u8,
                    bits: payload[off..].to_vec(),
                });
            }
            C_TNT_RAW => {
                let &count = bytes.get(i).ok_or(DecodeError::Truncated { at })?;
                i += 1;
                let nb = get_varint(bytes, &mut i, at)? as usize;
                if nb > bytes.len() {
                    return Err(DecodeError::Corrupt { at });
                }
                let end = i.checked_add(nb).ok_or(DecodeError::Corrupt { at })?;
                if end > bytes.len() {
                    return Err(DecodeError::Truncated { at });
                }
                out.push(Packet::Tnt {
                    count,
                    bits: bytes[i..end].to_vec(),
                });
                i = end;
            }
            C_TIP => {
                let target = get_varint(bytes, &mut i, at)?;
                let target = u32::try_from(target).map_err(|_| DecodeError::Corrupt { at })?;
                out.push(Packet::Tip { target });
            }
            C_PTW => {
                let d = unzigzag(get_varint(bytes, &mut i, at)?);
                last_ptw = last_ptw.wrapping_add(d as u64);
                out.push(Packet::Ptw { value: last_ptw });
            }
            C_TSC => {
                let d = unzigzag(get_varint(bytes, &mut i, at)?);
                last_tsc = last_tsc.wrapping_add(d as u64);
                out.push(Packet::Tsc { tsc: last_tsc });
            }
            C_PGE => {
                let tid = get_varint(bytes, &mut i, at)?;
                out.push(Packet::Pge { tid });
            }
            opcode => return Err(DecodeError::BadOpcode { opcode, at }),
        }
    }
    Ok(out)
}

/// Compression ratio achieved on `packets`: raw [`codec`] bytes over
/// compressed bytes (higher is better; 1.0 means no gain).
pub fn ratio(packets: &[Packet]) -> f64 {
    let raw = codec::encode(packets).len().max(1);
    let packed = compress(packets).len().max(1);
    raw as f64 / packed as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(packets: Vec<Packet>) {
        let packed = compress(&packets);
        assert_eq!(decompress(&packed).unwrap(), packets);
    }

    #[test]
    fn roundtrips_every_packet_kind() {
        roundtrip(vec![
            Packet::Psb,
            Packet::Pge { tid: 3 },
            Packet::Tsc { tsc: 1_000_000 },
            Packet::Tnt {
                count: 64,
                bits: vec![0xff; 8],
            },
            Packet::Tnt {
                count: 10,
                bits: vec![0xaa, 0x03],
            },
            Packet::Tip { target: 7 },
            Packet::Ptw {
                value: u64::MAX - 3,
            },
            Packet::Ptw { value: 5 },
            Packet::Ret,
            Packet::Ret,
            Packet::Ovf,
        ]);
    }

    #[test]
    fn empty_stream_roundtrips() {
        roundtrip(vec![]);
    }

    #[test]
    fn non_canonical_tnt_is_stored_verbatim() {
        // count > 64 and padding bytes survive exactly.
        roundtrip(vec![
            Packet::Tnt {
                count: 200,
                bits: vec![0x5a; 25],
            },
            Packet::Tnt {
                count: 64,
                bits: vec![1, 2, 3, 4, 5, 6, 7, 8],
            },
            Packet::Tnt {
                count: 3,
                bits: vec![0xff], // padding bits set: must survive
            },
        ]);
    }

    #[test]
    fn loop_heavy_trace_compresses_well() {
        // 10k all-taken branches, the shape `crunch` loops produce.
        let mut packets = vec![Packet::Psb];
        for _ in 0..156 {
            packets.push(Packet::Tnt {
                count: 64,
                bits: vec![0xff; 8],
            });
        }
        packets.push(Packet::Tnt {
            count: 16,
            bits: vec![0xff, 0xff],
        });
        let r = ratio(&packets);
        assert!(r > 10.0, "expected RLE to crush the loop, got {r:.2}x");
        roundtrip(packets);
    }

    #[test]
    fn timestamp_deltas_compress() {
        let packets: Vec<Packet> = (0..100)
            .map(|i| Packet::Tsc {
                tsc: 1_000_000 + i * 400,
            })
            .collect();
        let packed = compress(&packets);
        let raw = codec::encode(&packets);
        assert!(
            packed.len() * 2 < raw.len(),
            "{} vs {}",
            packed.len(),
            raw.len()
        );
        roundtrip(packets);
    }

    #[test]
    fn truncation_and_bad_version_detected() {
        let packed = compress(&[Packet::Tsc { tsc: 123456 }]);
        assert!(decompress(&packed[..packed.len() - 1]).is_err());
        assert!(matches!(
            decompress(&[]),
            Err(DecodeError::Truncated { at: 0 })
        ));
        assert!(matches!(
            decompress(&[0x7f, C_PSB]),
            Err(DecodeError::BadOpcode {
                opcode: 0x7f,
                at: 0
            })
        ));
    }

    #[test]
    fn tnt_run_split_is_unambiguous_at_multiples_of_64() {
        roundtrip(vec![
            Packet::Tnt {
                count: 64,
                bits: vec![0x11; 8],
            },
            Packet::Tnt {
                count: 64,
                bits: vec![0x22; 8],
            },
        ]);
    }
}
