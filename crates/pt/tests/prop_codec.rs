//! Property tests for the PT model: codec round trips, sink/decoder
//! agreement, and ring-buffer suffix semantics.

use er_minilang::ir::FuncId;
use er_minilang::trace::TraceSink;
use er_pt::codec;
use er_pt::packet::{Packet, TraceEvent};
use er_pt::ring::RingBuffer;
use er_pt::sink::{PtConfig, PtSink};
use proptest::prelude::*;

fn packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Psb),
        Just(Packet::Ovf),
        Just(Packet::Ret),
        (1u8..=255, prop::collection::vec(any::<u8>(), 32)).prop_map(|(count, bytes)| {
            let nb = (count as usize).div_ceil(8);
            Packet::Tnt {
                count,
                bits: bytes[..nb].to_vec(),
            }
        }),
        any::<u32>().prop_map(|target| Packet::Tip { target }),
        any::<u64>().prop_map(|value| Packet::Ptw { value }),
        any::<u64>().prop_map(|tsc| Packet::Tsc { tsc }),
        any::<u64>().prop_map(|tid| Packet::Pge { tid }),
    ]
}

/// A random sink-level event.
#[derive(Debug, Clone)]
enum Ev {
    Branch(bool),
    Call(u32),
    Ret,
    Ptw(u64),
    Resume(u64, u64),
}

fn event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        any::<bool>().prop_map(Ev::Branch),
        (0u32..64).prop_map(Ev::Call),
        Just(Ev::Ret),
        any::<u64>().prop_map(Ev::Ptw),
        (0u64..4, any::<u64>()).prop_map(|(t, ts)| Ev::Resume(t, ts)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packet sequences survive the byte codec byte-for-byte.
    #[test]
    fn codec_round_trips(packets in prop::collection::vec(packet(), 0..40)) {
        let bytes = codec::encode(&packets);
        let decoded = codec::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, packets);
    }

    /// Truncating an encoded stream never panics: it either still decodes
    /// (clean packet boundary) or reports a structured error.
    #[test]
    fn truncation_is_graceful(
        packets in prop::collection::vec(packet(), 1..20),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = codec::encode(&packets);
        let cut = cut.index(bytes.len() + 1);
        let _ = codec::decode(&bytes[..cut]);
    }

    /// Whatever the interpreter-style event order, the sink encodes and the
    /// decoder returns exactly that order.
    #[test]
    fn sink_and_decoder_agree(events in prop::collection::vec(event(), 0..300)) {
        let mut sink = PtSink::new(PtConfig {
            ring_bytes: 1 << 20,
            psb_period: 32,
            timestamps: true,
        });
        for e in &events {
            match e {
                Ev::Branch(b) => sink.cond_branch(*b),
                Ev::Call(f) => sink.call(FuncId(*f)),
                Ev::Ret => sink.ret(),
                Ev::Ptw(v) => sink.ptwrite(*v),
                Ev::Resume(t, ts) => sink.thread_resume(*t, *ts),
            }
        }
        let decoded = sink.finish().decode().unwrap();
        let mut expect = Vec::new();
        for e in &events {
            match e {
                Ev::Branch(b) => expect.push(TraceEvent::Branch(*b)),
                Ev::Call(f) => expect.push(TraceEvent::Call(*f)),
                Ev::Ret => expect.push(TraceEvent::Ret),
                Ev::Ptw(v) => expect.push(TraceEvent::PtWrite(*v)),
                Ev::Resume(t, ts) => {
                    expect.push(TraceEvent::ThreadResume(*t));
                    expect.push(TraceEvent::Timestamp(*ts));
                }
            }
        }
        prop_assert_eq!(decoded.events, expect);
    }

    /// The ring buffer always retains exactly the newest `capacity` bytes.
    #[test]
    fn ring_keeps_newest_suffix(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..20),
        capacity in 1usize..64,
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut all = Vec::new();
        for chunk in &chunks {
            ring.write(chunk);
            all.extend_from_slice(chunk);
        }
        let expect: Vec<u8> = if all.len() <= capacity {
            all.clone()
        } else {
            all[all.len() - capacity..].to_vec()
        };
        prop_assert_eq!(ring.snapshot(), expect);
        prop_assert_eq!(ring.total_written(), all.len() as u64);
        prop_assert_eq!(ring.wrapped(), all.len() > capacity);
    }

    /// A wrapped trace still decodes from its first sync point, and the
    /// surviving ptwrites are a contiguous suffix.
    #[test]
    fn wrapped_traces_resync(n in 50u64..400) {
        let mut sink = PtSink::new(PtConfig {
            ring_bytes: 256,
            psb_period: 8,
            timestamps: false,
        });
        for i in 0..n {
            sink.ptwrite(i);
        }
        let trace = sink.finish();
        let decoded = trace.decode().unwrap();
        let ptws = decoded.ptwrites();
        prop_assert!(!ptws.is_empty());
        prop_assert_eq!(*ptws.last().unwrap(), n - 1);
        for w in ptws.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }
}
