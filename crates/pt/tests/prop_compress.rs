//! Property tests for the compressed trace codec: `compress` →
//! `decompress` must be the identity on arbitrary packet streams, i.e.
//! exactly as faithful as the raw `pt::codec` byte format it wraps.

use er_pt::compress::{compress, decompress, ratio};
use er_pt::packet::Packet;
use er_pt::{codec, PtConfig, PtSink};
use proptest::prelude::*;

fn packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Psb),
        Just(Packet::Ovf),
        Just(Packet::Ret),
        (1u8..=255, prop::collection::vec(any::<u8>(), 32)).prop_map(|(count, bytes)| {
            let nb = (count as usize).div_ceil(8);
            Packet::Tnt {
                count,
                bits: bytes[..nb].to_vec(),
            }
        }),
        any::<u32>().prop_map(|target| Packet::Tip { target }),
        any::<u64>().prop_map(|value| Packet::Ptw { value }),
        any::<u64>().prop_map(|tsc| Packet::Tsc { tsc }),
        any::<u64>().prop_map(|tid| Packet::Pge { tid }),
    ]
}

/// A canonical-shape TNT packet, the kind `PtSink` emits and the kind the
/// compressor merges into runs.
fn canonical_tnt() -> impl Strategy<Value = Packet> {
    (1u8..=64, any::<u64>()).prop_map(|(count, acc)| {
        let nb = (count as usize).div_ceil(8);
        Packet::Tnt {
            count,
            bits: acc.to_le_bytes()[..nb].to_vec(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary packet streams — including non-canonical TNT shapes the
    /// sink never emits — survive compression byte-for-byte.
    #[test]
    fn compress_round_trips(packets in prop::collection::vec(packet(), 0..60)) {
        let packed = compress(&packets);
        prop_assert_eq!(decompress(&packed).unwrap(), packets);
    }

    /// Round trip composed with the raw codec: encoding the decompressed
    /// stream reproduces the original codec bytes exactly.
    #[test]
    fn compress_matches_codec(packets in prop::collection::vec(packet(), 0..60)) {
        let raw = codec::encode(&packets);
        let packed = compress(&packets);
        let back = decompress(&packed).unwrap();
        prop_assert_eq!(codec::encode(&back), raw);
    }

    /// Canonical (sink-shaped) streams round trip through merged TNT runs.
    #[test]
    fn canonical_tnt_runs_round_trip(packets in prop::collection::vec(canonical_tnt(), 0..80)) {
        let packed = compress(&packets);
        prop_assert_eq!(decompress(&packed).unwrap(), packets);
    }

    /// Truncating a compressed stream never panics: it either decodes
    /// (clean record boundary) or reports a structured error.
    #[test]
    fn truncation_is_graceful(
        packets in prop::collection::vec(packet(), 1..30),
        cut in any::<prop::sample::Index>(),
    ) {
        let packed = compress(&packets);
        let cut = cut.index(packed.len() + 1);
        let _ = decompress(&packed[..cut]);
    }

    /// Corrupting one byte never panics and never silently grows memory:
    /// the decoder returns a structured error or a (possibly wrong) stream.
    #[test]
    fn corruption_is_graceful(
        packets in prop::collection::vec(packet(), 1..30),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut packed = compress(&packets);
        let pos = pos.index(packed.len());
        packed[pos] ^= flip;
        let _ = decompress(&packed);
    }

    /// What the sink actually produces — interpreter-style event mixes —
    /// round trips through decode → compress → decompress, so the fleet
    /// store path reproduces exactly what the serial path decodes.
    #[test]
    fn sink_output_round_trips(branches in prop::collection::vec(any::<bool>(), 0..500)) {
        let mut sink = PtSink::new(PtConfig {
            ring_bytes: 1 << 20,
            psb_period: 32,
            timestamps: true,
        });
        use er_minilang::trace::TraceSink;
        for (i, &b) in branches.iter().enumerate() {
            sink.cond_branch(b);
            if i % 37 == 0 {
                sink.ptwrite(i as u64);
            }
        }
        let trace = sink.finish();
        let (packets, gap) = trace.packets().unwrap();
        prop_assert!(!gap);
        let packed = compress(&packets);
        prop_assert_eq!(decompress(&packed).unwrap(), packets);
    }

    /// `codec::decode` on completely arbitrary bytes never panics and
    /// always terminates: every outcome is `Ok` or a typed `DecodeError`.
    #[test]
    fn decode_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = codec::decode(&bytes);
    }

    /// Bit-flipping a well-formed stream never panics the decoder.
    #[test]
    fn decode_survives_bit_flips(
        packets in prop::collection::vec(packet(), 1..40),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = codec::encode(&packets);
        let pos = pos.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        let _ = codec::decode(&bytes);
    }

    /// Truncating a well-formed stream anywhere yields `Ok` (clean packet
    /// boundary) or `Truncated` — never a panic, never `BadOpcode`.
    #[test]
    fn decode_truncation_is_typed(
        packets in prop::collection::vec(packet(), 1..40),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = codec::encode(&packets);
        let cut = cut.index(bytes.len() + 1);
        match codec::decode(&bytes[..cut]) {
            Ok(_) | Err(codec::DecodeError::Truncated { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error on truncation: {e}"),
        }
    }

    /// `resync` terminates on arbitrary bytes, and any sync point it
    /// returns really is a PSB opcode byte within bounds.
    #[test]
    fn resync_survives_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        from in any::<prop::sample::Index>(),
    ) {
        let from = from.index(bytes.len() + 1);
        if let Some(at) = codec::resync(&bytes, from) {
            prop_assert!(at >= from && at < bytes.len());
            prop_assert_eq!(bytes[at], 0xA0);
        }
    }

    /// `decompress` on completely arbitrary bytes never panics and always
    /// terminates.
    #[test]
    fn decompress_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decompress(&bytes);
    }

    /// A tampered `PtTrace` (rotated + truncated, the worst chaos does)
    /// decodes to a typed result, never a panic, even when forced through
    /// the wrapped-path resynchronization loop.
    #[test]
    fn wrapped_decode_survives_tampering(
        branches in prop::collection::vec(any::<bool>(), 16..400),
        rot in any::<prop::sample::Index>(),
        keep in any::<prop::sample::Index>(),
    ) {
        let mut sink = PtSink::new(PtConfig {
            ring_bytes: 1 << 20,
            psb_period: 16,
            timestamps: false,
        });
        use er_minilang::trace::TraceSink;
        for &b in &branches {
            sink.cond_branch(b);
            sink.ptwrite(u64::from(b));
        }
        let mut trace = sink.finish();
        let n = trace.bytes.len();
        trace.bytes.rotate_left(rot.index(n));
        trace.bytes.truncate(keep.index(n) + 1);
        trace.wrapped = true; // force the resync loop
        let _ = trace.packets();
    }

    /// Loop-heavy (all-taken) branch runs always compress by a wide margin
    /// — the fleet acceptance bar is 1.5x, canonical traces clear it easily.
    #[test]
    fn loop_traces_beat_ratio_bar(n in 500usize..4000) {
        let mut sink = PtSink::new(PtConfig {
            ring_bytes: 1 << 20,
            psb_period: 4096,
            timestamps: false,
        });
        use er_minilang::trace::TraceSink;
        for _ in 0..n {
            sink.cond_branch(true);
        }
        let (packets, _) = sink.finish().packets().unwrap();
        prop_assert!(ratio(&packets) > 1.5);
    }
}
