//! Hash-consed expression DAG over bitvectors, booleans, and arrays.

use crate::simplify;
use std::collections::HashMap;
use std::fmt;

/// Reference to an expression node in an [`ExprPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprRef(pub u32);

/// Reference to an array node in an [`ExprPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayRef(pub u32);

/// A fresh symbolic variable's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// The sort (type) of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Boolean.
    Bool,
    /// Bitvector of `1..=64` bits.
    Bv(u32),
}

impl Sort {
    /// Bit width; booleans count as one bit.
    pub fn bits(self) -> u32 {
        match self {
            Sort::Bool => 1,
            Sort::Bv(b) => b,
        }
    }

    /// Mask of the low `bits()` bits.
    pub fn mask(self) -> u64 {
        let b = self.bits();
        if b == 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }
}

/// Bitvector binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BvOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Unsigned divide (division by zero yields all-ones, as in SMT-LIB).
    UDiv,
    /// Unsigned remainder (remainder by zero yields the dividend).
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (shift amount taken modulo the width).
    Shl,
    /// Logical shift right (shift amount taken modulo the width).
    LShr,
    /// Arithmetic shift right (shift amount taken modulo the width).
    AShr,
}

impl BvOp {
    /// Concrete evaluation at `bits` width.
    pub fn eval(self, bits: u32, a: u64, b: u64) -> u64 {
        let mask = Sort::Bv(bits).mask();
        let (a, b) = (a & mask, b & mask);
        let r = match self {
            BvOp::Add => a.wrapping_add(b),
            BvOp::Sub => a.wrapping_sub(b),
            BvOp::Mul => a.wrapping_mul(b),
            BvOp::UDiv => a.checked_div(b).unwrap_or(mask),
            BvOp::URem => a.checked_rem(b).unwrap_or(a),
            BvOp::And => a & b,
            BvOp::Or => a | b,
            BvOp::Xor => a ^ b,
            BvOp::Shl => a << (b % u64::from(bits)),
            BvOp::LShr => a >> (b % u64::from(bits)),
            BvOp::AShr => {
                let sh = b % u64::from(bits);
                let sign = (a >> (bits - 1)) & 1;
                let shifted = a >> sh;
                if sign == 1 && sh > 0 {
                    let fill = ((1u64 << sh) - 1) << (u64::from(bits) - sh);
                    (shifted | fill) & mask
                } else {
                    shifted
                }
            }
        };
        r & mask
    }
}

/// Comparison predicates producing booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

impl CmpKind {
    /// Concrete evaluation at `bits` width.
    pub fn eval(self, bits: u32, a: u64, b: u64) -> bool {
        let mask = Sort::Bv(bits).mask();
        let (a, b) = (a & mask, b & mask);
        let sext = |v: u64| -> i64 {
            let shift = 64 - bits;
            ((v << shift) as i64) >> shift
        };
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ult => a < b,
            CmpKind::Ule => a <= b,
            CmpKind::Slt => sext(a) < sext(b),
            CmpKind::Sle => sext(a) <= sext(b),
        }
    }
}

/// An expression node. Obtain instances through [`ExprPool`] constructors,
/// which hash-cons and simplify.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// Constant bitvector (value masked to width).
    Const {
        /// Bit width.
        bits: u32,
        /// Value.
        value: u64,
    },
    /// Boolean constant.
    BoolConst(bool),
    /// Free variable.
    Var {
        /// Identity.
        id: VarId,
        /// Bit width.
        bits: u32,
    },
    /// Bitvector binary operation.
    Bin {
        /// Operator.
        op: BvOp,
        /// Left operand.
        a: ExprRef,
        /// Right operand.
        b: ExprRef,
    },
    /// Comparison.
    Cmp {
        /// Predicate.
        op: CmpKind,
        /// Left operand.
        a: ExprRef,
        /// Right operand.
        b: ExprRef,
    },
    /// Boolean negation.
    Not(ExprRef),
    /// Boolean conjunction.
    AndB(ExprRef, ExprRef),
    /// Boolean disjunction.
    OrB(ExprRef, ExprRef),
    /// If-then-else over bitvectors.
    Ite {
        /// Boolean condition.
        cond: ExprRef,
        /// Value when true.
        then_e: ExprRef,
        /// Value when false.
        else_e: ExprRef,
    },
    /// Zero-extension to a wider bitvector.
    ZExt {
        /// Operand.
        a: ExprRef,
        /// Target width.
        bits: u32,
    },
    /// Truncation to a narrower bitvector.
    Trunc {
        /// Operand.
        a: ExprRef,
        /// Target width.
        bits: u32,
    },
    /// Boolean to bitvector (`cond ? 1 : 0`).
    BoolToBv {
        /// Operand.
        a: ExprRef,
        /// Target width.
        bits: u32,
    },
    /// Array element read; result width is the array's element width.
    Read {
        /// Array (possibly a `Write` chain).
        arr: ArrayRef,
        /// Element index.
        index: ExprRef,
    },
}

/// An array node: either a declared base array or a store on another array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArrayNode {
    /// A declared array; metadata lives in [`ExprPool::array_decl`].
    Base(u32),
    /// `Write(arr, index, value)`.
    Store {
        /// Array written to.
        arr: ArrayRef,
        /// Element index.
        index: ExprRef,
        /// Stored value (element width).
        value: ExprRef,
    },
}

/// Metadata for a declared (base) array.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Human-readable name (e.g. the memory object it models).
    pub name: String,
    /// Number of elements.
    pub len: u64,
    /// Element width in bits.
    pub elem_bits: u32,
    /// Initial contents; `None` means all zeros.
    pub init: Option<Vec<u64>>,
}

/// Metadata for a variable.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Human-readable name.
    pub name: String,
    /// Bit width.
    pub bits: u32,
}

/// The expression pool: owns all nodes, hash-consing structurally equal
/// ones, and applies algebraic simplification in its constructors.
#[derive(Debug, Default, Clone)]
pub struct ExprPool {
    nodes: Vec<Node>,
    dedup: HashMap<Node, ExprRef>,
    arrays: Vec<ArrayNode>,
    arrays_dedup: HashMap<ArrayNode, ArrayRef>,
    array_decls: Vec<ArrayDecl>,
    vars: Vec<VarDecl>,
}

impl ExprPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live expression nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `e`.
    pub fn node(&self, e: ExprRef) -> &Node {
        &self.nodes[e.0 as usize]
    }

    /// The array node behind `a`.
    pub fn array_node(&self, a: ArrayRef) -> &ArrayNode {
        &self.arrays[a.0 as usize]
    }

    /// Number of array nodes (bases and stores).
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Metadata of base array `id` (from [`ArrayNode::Base`]).
    pub fn array_decl(&self, id: u32) -> &ArrayDecl {
        &self.array_decls[id as usize]
    }

    /// Metadata of variable `id`.
    pub fn var_decl(&self, id: VarId) -> &VarDecl {
        &self.vars[id.0 as usize]
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The sort of `e`.
    pub fn sort(&self, e: ExprRef) -> Sort {
        match self.node(e) {
            Node::Const { bits, .. } | Node::Var { bits, .. } => Sort::Bv(*bits),
            Node::BoolConst(_)
            | Node::Cmp { .. }
            | Node::Not(_)
            | Node::AndB(..)
            | Node::OrB(..) => Sort::Bool,
            Node::Bin { a, .. } => self.sort(*a),
            Node::Ite { then_e, .. } => self.sort(*then_e),
            Node::ZExt { bits, .. } | Node::Trunc { bits, .. } | Node::BoolToBv { bits, .. } => {
                Sort::Bv(*bits)
            }
            Node::Read { arr, .. } => Sort::Bv(self.elem_bits(*arr)),
        }
    }

    /// Element width of the (base of) array `a`.
    pub fn elem_bits(&self, a: ArrayRef) -> u32 {
        match self.array_node(a) {
            ArrayNode::Base(id) => self.array_decl(*id).elem_bits,
            ArrayNode::Store { arr, .. } => self.elem_bits(*arr),
        }
    }

    /// Length (element count) of the (base of) array `a`.
    pub fn array_len(&self, a: ArrayRef) -> u64 {
        match self.array_node(a) {
            ArrayNode::Base(id) => self.array_decl(*id).len,
            ArrayNode::Store { arr, .. } => self.array_len(*arr),
        }
    }

    /// Interns `node`, reusing a structurally identical existing node.
    pub fn intern(&mut self, node: Node) -> ExprRef {
        if let Some(&r) = self.dedup.get(&node) {
            return r;
        }
        let r = ExprRef(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.dedup.insert(node, r);
        r
    }

    fn intern_array(&mut self, node: ArrayNode) -> ArrayRef {
        if let Some(&r) = self.arrays_dedup.get(&node) {
            return r;
        }
        let r = ArrayRef(self.arrays.len() as u32);
        self.arrays.push(node.clone());
        self.arrays_dedup.insert(node, r);
        r
    }

    /// A bitvector constant.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=64`.
    pub fn bv_const(&mut self, value: u64, bits: u32) -> ExprRef {
        assert!((1..=64).contains(&bits), "bad width {bits}");
        self.intern(Node::Const {
            bits,
            value: value & Sort::Bv(bits).mask(),
        })
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> ExprRef {
        self.intern(Node::BoolConst(b))
    }

    /// A fresh named variable of `bits` width.
    pub fn var(&mut self, name: impl Into<String>, bits: u32) -> ExprRef {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.into(),
            bits,
        });
        self.intern(Node::Var { id, bits })
    }

    /// A fresh base array.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        len: u64,
        elem_bits: u32,
        init: Option<Vec<u64>>,
    ) -> ArrayRef {
        let id = self.array_decls.len() as u32;
        self.array_decls.push(ArrayDecl {
            name: name.into(),
            len,
            elem_bits,
            init,
        });
        self.intern_array(ArrayNode::Base(id))
    }

    /// `Write(arr, index, value)` — a new array with one element replaced.
    pub fn write(&mut self, arr: ArrayRef, index: ExprRef, value: ExprRef) -> ArrayRef {
        self.intern_array(ArrayNode::Store { arr, index, value })
    }

    /// `Read(arr, index)`, simplified when the whole access is concrete.
    pub fn read(&mut self, arr: ArrayRef, index: ExprRef) -> ExprRef {
        if let Some(v) = simplify::fold_read(self, arr, index) {
            return v;
        }
        self.intern(Node::Read { arr, index })
    }

    /// Binary bitvector operation (operands must share a width).
    ///
    /// # Panics
    ///
    /// Panics on mismatched operand sorts.
    pub fn bin(&mut self, op: BvOp, a: ExprRef, b: ExprRef) -> ExprRef {
        assert_eq!(self.sort(a), self.sort(b), "bin operand sorts differ");
        if let Some(r) = simplify::fold_bin(self, op, a, b) {
            return r;
        }
        self.intern(Node::Bin { op, a, b })
    }

    /// Comparison producing a boolean.
    ///
    /// # Panics
    ///
    /// Panics on mismatched operand sorts.
    pub fn cmp(&mut self, op: CmpKind, a: ExprRef, b: ExprRef) -> ExprRef {
        assert_eq!(self.sort(a), self.sort(b), "cmp operand sorts differ");
        if let Some(r) = simplify::fold_cmp(self, op, a, b) {
            return r;
        }
        self.intern(Node::Cmp { op, a, b })
    }

    /// `a != b` as `Not(Eq)`.
    pub fn ne(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        let eq = self.cmp(CmpKind::Eq, a, b);
        self.not(eq)
    }

    /// Boolean negation.
    pub fn not(&mut self, a: ExprRef) -> ExprRef {
        match self.node(a) {
            Node::BoolConst(b) => {
                let v = !*b;
                self.bool_const(v)
            }
            Node::Not(inner) => *inner,
            _ => self.intern(Node::Not(a)),
        }
    }

    /// Boolean conjunction.
    pub fn and(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        match (self.node(a), self.node(b)) {
            (Node::BoolConst(false), _) | (_, Node::BoolConst(false)) => self.bool_const(false),
            (Node::BoolConst(true), _) => b,
            (_, Node::BoolConst(true)) => a,
            _ if a == b => a,
            _ => self.intern(Node::AndB(a.min(b), a.max(b))),
        }
    }

    /// Boolean disjunction.
    pub fn or(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        match (self.node(a), self.node(b)) {
            (Node::BoolConst(true), _) | (_, Node::BoolConst(true)) => self.bool_const(true),
            (Node::BoolConst(false), _) => b,
            (_, Node::BoolConst(false)) => a,
            _ if a == b => a,
            _ => self.intern(Node::OrB(a.min(b), a.max(b))),
        }
    }

    /// If-then-else over same-width bitvectors.
    ///
    /// # Panics
    ///
    /// Panics if the branch sorts differ.
    pub fn ite(&mut self, cond: ExprRef, then_e: ExprRef, else_e: ExprRef) -> ExprRef {
        assert_eq!(self.sort(then_e), self.sort(else_e), "ite branch sorts");
        match self.node(cond) {
            Node::BoolConst(true) => return then_e,
            Node::BoolConst(false) => return else_e,
            _ => {}
        }
        if then_e == else_e {
            return then_e;
        }
        self.intern(Node::Ite {
            cond,
            then_e,
            else_e,
        })
    }

    /// Zero-extends `a` to `bits` (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is narrower than `a`.
    pub fn zext(&mut self, a: ExprRef, bits: u32) -> ExprRef {
        let w = self.sort(a).bits();
        assert!(bits >= w, "zext must widen");
        if bits == w {
            return a;
        }
        if let Node::Const { value, .. } = self.node(a) {
            let v = *value;
            return self.bv_const(v, bits);
        }
        self.intern(Node::ZExt { a, bits })
    }

    /// Truncates `a` to `bits` (no-op if already that width).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is wider than `a`.
    pub fn trunc(&mut self, a: ExprRef, bits: u32) -> ExprRef {
        let w = self.sort(a).bits();
        assert!(bits <= w, "trunc must narrow");
        if bits == w {
            return a;
        }
        if let Node::Const { value, .. } = self.node(a) {
            let v = *value;
            return self.bv_const(v, bits);
        }
        // trunc(zext(x)) where x already fits: collapse.
        if let Node::ZExt { a: inner, .. } = self.node(a) {
            let inner = *inner;
            let iw = self.sort(inner).bits();
            if iw == bits {
                return inner;
            }
            if iw < bits {
                return self.zext(inner, bits);
            }
        }
        self.intern(Node::Trunc { a, bits })
    }

    /// `cond ? 1 : 0` at `bits` width.
    pub fn bool_to_bv(&mut self, a: ExprRef, bits: u32) -> ExprRef {
        match self.node(a) {
            Node::BoolConst(b) => {
                let v = u64::from(*b);
                self.bv_const(v, bits)
            }
            _ => self.intern(Node::BoolToBv { a, bits }),
        }
    }

    /// `e != 0` as a boolean.
    pub fn nonzero(&mut self, e: ExprRef) -> ExprRef {
        match self.sort(e) {
            Sort::Bool => e,
            Sort::Bv(bits) => {
                // bool_to_bv(c) != 0  ≡  c
                if let Node::BoolToBv { a, .. } = self.node(e) {
                    return *a;
                }
                let zero = self.bv_const(0, bits);
                self.ne(e, zero)
            }
        }
    }

    /// Constant value of `e`, if it folded to one.
    pub fn as_const(&self, e: ExprRef) -> Option<u64> {
        match self.node(e) {
            Node::Const { value, .. } => Some(*value),
            Node::BoolConst(b) => Some(u64::from(*b)),
            _ => None,
        }
    }

    /// Renders `e` as an S-expression for debugging.
    pub fn display(&self, e: ExprRef) -> String {
        match self.node(e) {
            Node::Const { value, bits } => format!("{value}#{bits}"),
            Node::BoolConst(b) => b.to_string(),
            Node::Var { id, .. } => self.var_decl(*id).name.clone(),
            Node::Bin { op, a, b } => {
                format!("({op:?} {} {})", self.display(*a), self.display(*b))
            }
            Node::Cmp { op, a, b } => {
                format!("({op:?} {} {})", self.display(*a), self.display(*b))
            }
            Node::Not(a) => format!("(not {})", self.display(*a)),
            Node::AndB(a, b) => format!("(and {} {})", self.display(*a), self.display(*b)),
            Node::OrB(a, b) => format!("(or {} {})", self.display(*a), self.display(*b)),
            Node::Ite {
                cond,
                then_e,
                else_e,
            } => format!(
                "(ite {} {} {})",
                self.display(*cond),
                self.display(*then_e),
                self.display(*else_e)
            ),
            Node::ZExt { a, bits } => format!("(zext{bits} {})", self.display(*a)),
            Node::Trunc { a, bits } => format!("(trunc{bits} {})", self.display(*a)),
            Node::BoolToBv { a, bits } => format!("(b2v{bits} {})", self.display(*a)),
            Node::Read { arr, index } => {
                format!(
                    "(read {} {})",
                    self.display_array(*arr),
                    self.display(*index)
                )
            }
        }
    }

    /// Renders array `a` as an S-expression.
    pub fn display_array(&self, a: ArrayRef) -> String {
        match self.array_node(a) {
            ArrayNode::Base(id) => self.array_decl(*id).name.clone(),
            ArrayNode::Store { arr, index, value } => format!(
                "(write {} {} {})",
                self.display_array(*arr),
                self.display(*index),
                self.display(*value)
            ),
        }
    }
}

impl fmt::Display for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = ExprPool::new();
        let a = p.bv_const(5, 32);
        let b = p.bv_const(5, 32);
        assert_eq!(a, b);
        let x = p.var("x", 32);
        let s1 = p.bin(BvOp::Add, x, a);
        let s2 = p.bin(BvOp::Add, x, b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn constant_folding_in_constructors() {
        let mut p = ExprPool::new();
        let a = p.bv_const(6, 32);
        let b = p.bv_const(7, 32);
        let m = p.bin(BvOp::Mul, a, b);
        assert_eq!(p.as_const(m), Some(42));
        let c = p.cmp(CmpKind::Ult, a, b);
        assert_eq!(p.as_const(c), Some(1));
    }

    #[test]
    fn sorts_propagate() {
        let mut p = ExprPool::new();
        let x = p.var("x", 8);
        let z = p.zext(x, 32);
        assert_eq!(p.sort(z), Sort::Bv(32));
        let y = p.var("y", 8);
        let c = p.cmp(CmpKind::Eq, x, y);
        assert_eq!(p.sort(c), Sort::Bool);
        let b = p.bool_to_bv(c, 16);
        assert_eq!(p.sort(b), Sort::Bv(16));
    }

    #[test]
    fn nonzero_of_booltobv_collapses() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let c = p.cmp(CmpKind::Ult, x, y);
        let bv = p.bool_to_bv(c, 8);
        assert_eq!(p.nonzero(bv), c);
    }

    #[test]
    fn double_not_collapses() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32);
        let y = p.var("y", 32);
        let c = p.cmp(CmpKind::Eq, x, y);
        let n = p.not(c);
        assert_eq!(p.not(n), c);
    }

    #[test]
    fn concrete_array_read_folds() {
        let mut p = ExprPool::new();
        let arr = p.array("V", 4, 32, Some(vec![10, 20, 30, 40]));
        let i = p.bv_const(2, 64);
        let r = p.read(arr, i);
        assert_eq!(p.as_const(r), Some(30));
    }

    #[test]
    fn read_of_matching_concrete_store_folds() {
        let mut p = ExprPool::new();
        let arr = p.array("V", 4, 32, None);
        let i = p.bv_const(1, 64);
        let v = p.bv_const(99, 32);
        let arr2 = p.write(arr, i, v);
        let r = p.read(arr2, i);
        assert_eq!(p.as_const(r), Some(99));
        // Read at a different concrete index skips the store.
        let j = p.bv_const(0, 64);
        let r0 = p.read(arr2, j);
        assert_eq!(p.as_const(r0), Some(0));
    }

    #[test]
    fn symbolic_read_stays_symbolic() {
        let mut p = ExprPool::new();
        let arr = p.array("V", 4, 32, None);
        let i = p.var("i", 64);
        let r = p.read(arr, i);
        assert!(p.as_const(r).is_none());
        assert_eq!(p.sort(r), Sort::Bv(32));
    }

    #[test]
    fn ite_simplifies_on_const_cond() {
        let mut p = ExprPool::new();
        let t = p.bool_const(true);
        let a = p.var("a", 32);
        let b = p.var("b", 32);
        assert_eq!(p.ite(t, a, b), a);
        let f = p.bool_const(false);
        assert_eq!(p.ite(f, a, b), b);
        let c = p.cmp(CmpKind::Eq, a, b);
        assert_eq!(p.ite(c, a, a), a);
    }

    #[test]
    fn display_is_readable() {
        let mut p = ExprPool::new();
        let x = p.var("x", 32);
        let one = p.bv_const(1, 32);
        let s = p.bin(BvOp::Add, x, one);
        assert_eq!(p.display(s), "(Add x 1#32)");
    }

    #[test]
    fn bvop_eval_masks() {
        assert_eq!(BvOp::Add.eval(8, 255, 1), 0);
        assert_eq!(BvOp::UDiv.eval(32, 5, 0), 0xffff_ffff);
        assert_eq!(BvOp::URem.eval(32, 5, 0), 5);
        assert_eq!(BvOp::AShr.eval(8, 0x80, 1), 0xc0);
        assert!(CmpKind::Slt.eval(8, 0xff, 0));
    }
}
