//! Cooperative cancellation for watchdog supervision.
//!
//! The fleet watchdog cannot preempt a stuck phase — symbolic execution and
//! CDCL search are single-threaded loops — so instead it arms a
//! *thread-local* token with per-phase work budgets before driving a
//! session iteration, and the hot loops cooperate: the symex stepper and
//! the SAT conflict loop call [`tick`] as they burn work, and unwind with
//! [`crate::solve::StallReason::Cancelled`] once the current phase's budget
//! trips. Work units (events stepped, conflicts resolved) stand in for
//! wall-clock deadlines so supervision stays deterministic and replayable.
//!
//! The token lives in a thread-local because fleet work items run either
//! inline (serial pool) or pinned to one worker thread for their whole
//! iteration — a phase never migrates mid-flight. When nothing is armed,
//! [`tick`] is a single thread-local flag check.

use std::cell::{Cell, RefCell};

/// A supervised phase of one session iteration, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Trace packet decoding.
    Decode,
    /// Shepherded symbolic execution along the trace.
    Shepherd,
    /// Constraint solving (initial and final queries).
    Solve,
    /// Key data value selection.
    Select,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 4] = [Phase::Decode, Phase::Shepherd, Phase::Solve, Phase::Select];

    /// Stable lower-case name (used in counter names and reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::Shepherd => "shepherd",
            Phase::Solve => "solve",
            Phase::Select => "select",
        }
    }

    const fn idx(self) -> usize {
        match self {
            Phase::Decode => 0,
            Phase::Shepherd => 1,
            Phase::Solve => 2,
            Phase::Select => 3,
        }
    }
}

/// Per-phase work budgets, in phase-native units: packets for decode,
/// events stepped for shepherd, SAT conflicts for solve, candidate sites
/// for select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBudgets {
    /// Decode budget (packets).
    pub decode: u64,
    /// Shepherd budget (symex events stepped).
    pub shepherd: u64,
    /// Solve budget (SAT conflicts).
    pub solve: u64,
    /// Select budget (candidate sites examined).
    pub select: u64,
}

impl PhaseBudgets {
    /// No limits — an armed token that never trips.
    pub fn unlimited() -> PhaseBudgets {
        PhaseBudgets {
            decode: u64::MAX,
            shepherd: u64::MAX,
            solve: u64::MAX,
            select: u64::MAX,
        }
    }

    /// The budget for one phase.
    pub fn get(self, phase: Phase) -> u64 {
        match phase {
            Phase::Decode => self.decode,
            Phase::Shepherd => self.shepherd,
            Phase::Solve => self.solve,
            Phase::Select => self.select,
        }
    }

    /// All budgets multiplied by `factor` (saturating) — the watchdog's
    /// escalation step after it cancels a stalled iteration.
    #[must_use]
    pub fn scaled(self, factor: u64) -> PhaseBudgets {
        PhaseBudgets {
            decode: self.decode.saturating_mul(factor),
            shepherd: self.shepherd.saturating_mul(factor),
            solve: self.solve.saturating_mul(factor),
            select: self.select.saturating_mul(factor),
        }
    }
}

struct Token {
    budgets: PhaseBudgets,
    spent: [u64; 4],
    phase: Phase,
    tripped: Option<Phase>,
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static TOKEN: RefCell<Option<Token>> = const { RefCell::new(None) };
}

/// Disarms the token on drop, so a panicking (or crashing) iteration
/// cannot leak a half-spent budget into the next session on this thread.
#[must_use = "dropping the guard disarms the token"]
#[derive(Debug)]
pub struct CancelGuard(());

impl Drop for CancelGuard {
    fn drop(&mut self) {
        ARMED.with(|a| a.set(false));
        TOKEN.with(|t| *t.borrow_mut() = None);
    }
}

/// Arms this thread's token with `budgets`, replacing any armed token.
/// The current phase starts at [`Phase::Decode`].
pub fn arm(budgets: PhaseBudgets) -> CancelGuard {
    TOKEN.with(|t| {
        *t.borrow_mut() = Some(Token {
            budgets,
            spent: [0; 4],
            phase: Phase::Decode,
            tripped: None,
        });
    });
    ARMED.with(|a| a.set(true));
    CancelGuard(())
}

/// Whether a token is armed on this thread (one thread-local flag read).
#[inline]
pub fn armed() -> bool {
    ARMED.with(std::cell::Cell::get)
}

/// Marks the start of `phase`; subsequent [`tick`]s bill against its
/// budget. Phase spend accumulates across re-entries (a solve after a
/// resume continues the solve budget, it does not reset it).
pub fn begin_phase(phase: Phase) {
    if !armed() {
        return;
    }
    TOKEN.with(|t| {
        if let Some(tok) = t.borrow_mut().as_mut() {
            tok.phase = phase;
        }
    });
}

/// Bills `work` units against the current phase. Returns `true` when the
/// phase budget has tripped — the caller must unwind with a
/// [`crate::solve::StallReason::Cancelled`] stall as soon as it can do so
/// safely.
#[inline]
pub fn tick(work: u64) -> bool {
    if !armed() {
        return false;
    }
    TOKEN.with(|t| {
        let mut b = t.borrow_mut();
        let Some(tok) = b.as_mut() else { return false };
        if tok.tripped.is_some() {
            return true;
        }
        let i = tok.phase.idx();
        tok.spent[i] = tok.spent[i].saturating_add(work);
        if tok.spent[i] > tok.budgets.get(tok.phase) {
            tok.tripped = Some(tok.phase);
            match tok.phase {
                Phase::Decode => er_telemetry::counter!("watchdog.tripped.decode").incr(),
                Phase::Shepherd => er_telemetry::counter!("watchdog.tripped.shepherd").incr(),
                Phase::Solve => er_telemetry::counter!("watchdog.tripped.solve").incr(),
                Phase::Select => er_telemetry::counter!("watchdog.tripped.select").incr(),
            }
            return true;
        }
        false
    })
}

/// Whether the armed token has tripped.
pub fn cancelled() -> bool {
    tripped_phase().is_some()
}

/// The phase whose budget tripped, if any.
pub fn tripped_phase() -> Option<Phase> {
    if !armed() {
        return None;
    }
    TOKEN.with(|t| t.borrow().as_ref().and_then(|tok| tok.tripped))
}

/// Work spent per phase so far, in [`Phase::ALL`] order (`None` when
/// disarmed) — watchdog reporting.
pub fn spent() -> Option<[u64; 4]> {
    if !armed() {
        return None;
    }
    TOKEN.with(|t| t.borrow().as_ref().map(|tok| tok.spent))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_ticks_are_free_and_never_trip() {
        assert!(!armed());
        assert!(!tick(u64::MAX));
        assert!(!cancelled());
        assert_eq!(spent(), None);
    }

    #[test]
    fn trips_only_the_overspent_phase() {
        let _g = arm(PhaseBudgets {
            decode: 10,
            shepherd: 5,
            solve: 100,
            select: 100,
        });
        assert!(!tick(10), "decode within budget");
        begin_phase(Phase::Shepherd);
        assert!(!tick(5));
        assert!(tick(1), "shepherd budget tripped");
        assert_eq!(tripped_phase(), Some(Phase::Shepherd));
        // Once tripped, every tick keeps reporting cancellation.
        begin_phase(Phase::Solve);
        assert!(tick(0));
        assert_eq!(spent().unwrap(), [10, 6, 0, 0]);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _g = arm(PhaseBudgets::unlimited());
            assert!(armed());
            assert!(!tick(u64::MAX - 1), "unlimited never trips");
        }
        assert!(!armed());
        assert!(!cancelled());
    }

    #[test]
    fn scaled_escalates_saturating() {
        let b = PhaseBudgets {
            decode: 2,
            shepherd: 3,
            solve: u64::MAX / 2 + 1,
            select: 4,
        };
        let s = b.scaled(4);
        assert_eq!((s.decode, s.shepherd, s.select), (8, 12, 16));
        assert_eq!(s.solve, u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn phase_spend_accumulates_across_reentries() {
        let _g = arm(PhaseBudgets {
            decode: u64::MAX,
            shepherd: u64::MAX,
            solve: 10,
            select: u64::MAX,
        });
        begin_phase(Phase::Solve);
        assert!(!tick(6));
        begin_phase(Phase::Shepherd);
        assert!(!tick(1));
        begin_phase(Phase::Solve);
        assert!(!tick(4), "6+4 = 10, exactly at budget");
        assert!(tick(1), "re-entered solve continues its spend");
    }
}
