//! A CDCL SAT solver: two-watched literals, VSIDS decisions, phase saving,
//! first-UIP clause learning, and Luby restarts.
//!
//! The solver runs under a deterministic *conflict budget*; exhausting it
//! returns [`SatOutcome::Unknown`], which the ER layer interprets as a
//! solver stall (the paper's 30-second timeout, made reproducible).

use crate::cnf::{Cnf, Lit, Var};

/// Result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable, with a full assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted before an answer — a stall.
    Unknown,
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    Undef,
    True,
    False,
}

/// A binary max-heap over variables ordered by VSIDS activity.
#[derive(Debug, Default, Clone)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>, // position in heap, -1 if absent
}

impl VarHeap {
    fn new(n: usize) -> Self {
        VarHeap {
            heap: (0..n as u32).map(Var).collect(),
            pos: (0..n as i32).collect(),
        }
    }

    fn less(activity: &[f64], a: Var, b: Var) -> bool {
        activity[a.0 as usize] > activity[b.0 as usize]
    }

    fn sift_up(&mut self, activity: &[f64], mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(activity, self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, activity: &[f64], mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && Self::less(activity, self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && Self::less(activity, self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].0 as usize] = i as i32;
        self.pos[self.heap[j].0 as usize] = j as i32;
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.swap(0, last);
        self.heap.pop();
        self.pos[top.0 as usize] = -1;
        if !self.heap.is_empty() {
            self.sift_down(activity, 0);
        }
        Some(top)
    }

    fn insert(&mut self, activity: &[f64], v: Var) {
        if self.pos[v.0 as usize] >= 0 {
            return;
        }
        self.pos[v.0 as usize] = self.heap.len() as i32;
        self.heap.push(v);
        let at = self.heap.len() - 1;
        self.sift_up(activity, at);
    }

    fn update(&mut self, activity: &[f64], v: Var) {
        let p = self.pos[v.0 as usize];
        if p >= 0 {
            self.sift_up(activity, p as usize);
        }
    }
}

/// The CDCL solver.
///
/// Besides the classic load-then-solve usage ([`SatSolver::new`]), the
/// solver supports *incremental* use: start from [`SatSolver::empty`],
/// grow the variable space with [`SatSolver::ensure_vars`], feed clauses
/// with [`SatSolver::push_clause`], and call [`SatSolver::solve`] as often
/// as needed. Clauses learned in earlier calls are implied by the clause
/// database and therefore remain sound for every later call, as long as
/// the problem only ever *gains* clauses (the monotone-prefix discipline
/// the incremental ER solver follows). Cloning the solver yields an
/// independent search that inherits the learned clauses — used for
/// assumption queries whose extra clauses must not contaminate the
/// persistent database.
#[derive(Debug, Clone)]
pub struct SatSolver {
    n_vars: usize,
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<i32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    stats: SatStats,
}

impl SatSolver {
    /// Loads `cnf` into a fresh solver.
    pub fn new(cnf: &Cnf) -> Self {
        let n = cnf.var_count() as usize;
        let mut s = SatSolver {
            n_vars: n,
            clauses: Vec::with_capacity(cnf.clause_count()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![LBool::Undef; n],
            level: vec![0; n],
            reason: vec![-1; n],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            heap: VarHeap::new(n),
            phase: vec![false; n],
            seen: vec![false; n],
            ok: true,
            stats: SatStats::default(),
        };
        for clause in &cnf.clauses {
            s.add_clause(clause);
            if !s.ok {
                break;
            }
        }
        s
    }

    /// A solver with no variables and no clauses (incremental use).
    pub fn empty() -> Self {
        SatSolver::new(&Cnf::new())
    }

    /// Grows the variable space to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if n <= self.n_vars {
            return;
        }
        self.watches.resize(2 * n, Vec::new());
        self.assign.resize(n, LBool::Undef);
        self.level.resize(n, 0);
        self.reason.resize(n, -1);
        self.activity.resize(n, 0.0);
        self.phase.resize(n, false);
        self.seen.resize(n, false);
        self.heap.pos.resize(n, -1);
        for v in self.n_vars..n {
            self.heap.insert(&self.activity, Var(v as u32));
        }
        self.n_vars = n;
    }

    /// Adds a clause incrementally. The search is first backtracked to
    /// level 0 so clause normalization only sees root-level assignments.
    /// Variables must already exist (see [`SatSolver::ensure_vars`]).
    pub fn push_clause(&mut self, lits: &[Lit]) {
        self.backtrack(0);
        if self.ok {
            self.add_clause(lits);
        }
    }

    /// Total clauses in the database (problem + learned).
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    fn value(&self, l: Lit) -> LBool {
        match self.assign[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            assigned => {
                let var_is_true = assigned == LBool::True;
                if var_is_true == l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        // Normalize: drop duplicates and satisfied-at-level-0 literals.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (i, &l) in sorted.iter().enumerate() {
            if i + 1 < sorted.len() && sorted[i + 1] == !l {
                return; // tautology: l and !l both present
            }
            match self.value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False if self.level[l.var().0 as usize] == 0 => {}
                _ => c.push(l),
            }
        }
        match c.len() {
            0 => self.ok = false,
            1 => {
                // Unit clause: assert at level 0 and propagate immediately.
                self.ok &= self.enqueue(c[0], -1) && self.propagate().is_none();
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[(!c[0]).index()].push(idx);
                self.watches[(!c[1]).index()].push(idx);
                self.clauses.push(c);
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: i32) -> bool {
        match self.value(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = l.var().0 as usize;
                self.assign[v] = if l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                };
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.phase[v] = l.is_pos();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching !p (p just became true, so !p became false).
            let mut i = 0;
            let watch_idx = p.index();
            'clauses: while i < self.watches[watch_idx].len() {
                let ci = self.watches[watch_idx][i];
                let assign = &self.assign;
                let value_of = |l: Lit| match assign[l.var().0 as usize] {
                    LBool::Undef => LBool::Undef,
                    LBool::True => {
                        if l.is_pos() {
                            LBool::True
                        } else {
                            LBool::False
                        }
                    }
                    LBool::False => {
                        if l.is_pos() {
                            LBool::False
                        } else {
                            LBool::True
                        }
                    }
                };
                let clause = &mut self.clauses[ci as usize];
                // Ensure the false literal is at position 1.
                let false_lit = !p;
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if value_of(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                for k in 2..clause.len() {
                    if value_of(clause[k]) != LBool::False {
                        clause.swap(1, k);
                        let new_watch = !clause[1];
                        self.watches[watch_idx].swap_remove(i);
                        self.watches[new_watch.index()].push(ci);
                        continue 'clauses;
                    }
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, ci as i32) {
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(&self.activity, v);
    }

    /// First-UIP conflict analysis; returns (learned clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // slot 0 for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause_idx = conflict as i32;
        let cur_level = self.trail_lim.len() as u32;

        loop {
            debug_assert!(clause_idx >= 0, "reason must exist during analysis");
            let clause = self.clauses[clause_idx as usize].clone();
            let start = usize::from(p.is_some());
            for &q in &clause[start..] {
                let v = q.var();
                let vi = v.0 as usize;
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.bump(v);
                    if self.level[vi] >= cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next trail literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().0 as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            clause_idx = self.reason[lit.var().0 as usize];
        }
        learned[0] = !p.expect("UIP found");
        for &l in &learned[1..] {
            self.seen[l.var().0 as usize] = false;
        }
        let backjump = learned[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        // Put a highest-backjump-level literal at slot 1 for watching.
        if learned.len() > 1 {
            let (mi, _) = learned[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var().0 as usize])
                .expect("nonempty");
            learned.swap(1, mi + 1);
        }
        (learned, backjump)
    }

    fn backtrack(&mut self, to_level: u32) {
        if (self.trail_lim.len() as u32) <= to_level {
            return;
        }
        let bound = self.trail_lim[to_level as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail nonempty");
            let v = l.var().0 as usize;
            self.assign[v] = LBool::Undef;
            self.reason[v] = -1;
            self.heap.insert(&self.activity, l.var());
        }
        self.trail_lim.truncate(to_level as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v.0 as usize] == LBool::Undef {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::new(v, self.phase[v.0 as usize]);
                let ok = self.enqueue(lit, -1);
                debug_assert!(ok);
                return true;
            }
        }
        false
    }

    /// Runs the search with at most `max_conflicts` conflicts.
    pub fn solve(&mut self, max_conflicts: u64) -> SatOutcome {
        let before = self.stats;
        let outcome = self.solve_inner(max_conflicts);
        if er_telemetry::enabled() {
            // Batch the per-search deltas so the search loop itself stays
            // free of instrumentation.
            er_telemetry::counter!("sat.conflicts").add(self.stats.conflicts - before.conflicts);
            er_telemetry::counter!("sat.decisions").add(self.stats.decisions - before.decisions);
            er_telemetry::counter!("sat.propagations")
                .add(self.stats.propagations - before.propagations);
            er_telemetry::counter!("sat.restarts").add(self.stats.restarts - before.restarts);
            er_telemetry::counter!("sat.learned").add(self.stats.learned - before.learned);
        }
        outcome
    }

    fn solve_inner(&mut self, max_conflicts: u64) -> SatOutcome {
        if !self.ok {
            return SatOutcome::Unsat;
        }
        // Incremental re-entry: restart the search from the root level so
        // clauses added since the last call take effect everywhere.
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false; // root-level conflict: permanently unsat
            return SatOutcome::Unsat;
        }
        // The conflict budget is per *call*: a persistent solver re-solved
        // after new clauses arrive gets the same allowance a fresh solver
        // would, keeping stall behavior comparable between the two modes.
        let budget_end = self.stats.conflicts.saturating_add(max_conflicts);
        let mut restart_idx = 0u32;
        let mut conflicts_until_restart = luby(restart_idx) * 128;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.stats.conflicts > budget_end {
                    return SatOutcome::Unknown;
                }
                // One conflict = one unit of supervised solve work; a
                // tripped watchdog token looks like an early budget
                // exhaustion and unwinds through the same path.
                if crate::cancel::tick(1) {
                    return SatOutcome::Unknown;
                }
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SatOutcome::Unsat;
                }
                let (learned, backjump) = self.analyze(conflict);
                er_telemetry::histogram!("sat.learned_len").record(learned.len() as u64);
                self.backtrack(backjump);
                self.stats.learned += 1;
                if learned.len() == 1 {
                    if !self.enqueue(learned[0], -1) {
                        self.ok = false;
                        return SatOutcome::Unsat;
                    }
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[(!learned[0]).index()].push(idx);
                    self.watches[(!learned[1]).index()].push(idx);
                    let asserting = learned[0];
                    self.clauses.push(learned);
                    let ok = self.enqueue(asserting, idx as i32);
                    debug_assert!(ok);
                }
                self.var_inc /= 0.95;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_until_restart = luby(restart_idx) * 128;
                    self.backtrack(0);
                }
            } else if !self.decide() {
                let model = self.assign.iter().map(|&a| a == LBool::True).collect();
                return SatOutcome::Sat(model);
            }
        }
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.n_vars
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) < u64::from(i) + 2 {
        k += 1;
    }
    let mut size = (1u64 << k) - 1;
    let mut idx = u64::from(i);
    while size > 1 {
        let half = size / 2;
        if idx == size - 1 {
            return size.div_ceil(2);
        }
        if idx >= half {
            idx -= half;
        }
        size = half;
    }
    1
}

/// Convenience used by unit tests elsewhere in the crate: solve with a
/// large budget and return satisfiability as a bool.
///
/// # Panics
///
/// Panics if the budget is exhausted (tests are expected to be tiny).
pub fn solve_for_tests(cnf: &Cnf) -> bool {
    match SatSolver::new(cnf).solve(1_000_000) {
        SatOutcome::Sat(m) => {
            assert!(cnf.eval(&m), "model must satisfy the formula");
            true
        }
        SatOutcome::Unsat => false,
        SatOutcome::Unknown => panic!("test formula exhausted budget"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var(v), pos)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause(&[Lit::pos(a)]);
        assert!(solve_for_tests(&cnf));
        cnf.add_clause(&[Lit::neg(a)]);
        assert!(!solve_for_tests(&cnf));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        let _ = cnf.new_var();
        cnf.add_clause(&[]);
        assert!(!solve_for_tests(&cnf));
    }

    #[test]
    fn chain_of_implications() {
        // x0 & (x0 -> x1) & ... & (x98 -> x99) & !x99 : unsat
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..100).map(|_| cnf.new_var()).collect();
        cnf.add_clause(&[Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            cnf.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert!(solve_for_tests(&cnf));
        cnf.add_clause(&[Lit::neg(vars[99])]);
        assert!(!solve_for_tests(&cnf));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i in hole j; 3 pigeons, 2 holes.
        let mut cnf = Cnf::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = cnf.new_var();
            }
        }
        for row in &p {
            cnf.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        // At most one pigeon per hole: iterate column-wise over the grid.
        for hole in 0..2 {
            let column: Vec<Var> = p.iter().map(|row| row[hole]).collect();
            for i1 in 0..column.len() {
                for i2 in (i1 + 1)..column.len() {
                    cnf.add_clause(&[Lit::neg(column[i1]), Lit::neg(column[i2])]);
                }
            }
        }
        assert!(!solve_for_tests(&cnf));
    }

    #[test]
    fn random_3sat_instances_agree_with_bruteforce() {
        let mut seed = 0x1234_5678_u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let n_vars = 8;
            let n_clauses = 3 + (rand() % 30) as usize;
            let mut cnf = Cnf::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| cnf.new_var()).collect();
            for _ in 0..n_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[(rand() % n_vars as u64) as usize];
                    c.push(Lit::new(v, rand() % 2 == 0));
                }
                cnf.add_clause(&c);
            }
            let brute = (0..(1u32 << n_vars)).any(|bits| {
                let assignment: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            assert_eq!(solve_for_tests(&cnf), brute);
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A hard-ish pigeonhole instance with a budget of 1 conflict.
        let mut cnf = Cnf::new();
        let n = 6; // 6 pigeons, 5 holes
        let holes = 5;
        let mut p = vec![vec![Var(0); holes]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = cnf.new_var();
            }
        }
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            cnf.add_clause(&c);
        }
        for hole in 0..holes {
            let column: Vec<Var> = p.iter().map(|row| row[hole]).collect();
            for i1 in 0..column.len() {
                for i2 in (i1 + 1)..column.len() {
                    cnf.add_clause(&[Lit::neg(column[i1]), Lit::neg(column[i2])]);
                }
            }
        }
        let mut s = SatSolver::new(&cnf);
        assert_eq!(s.solve(1), SatOutcome::Unknown);
        // With a big budget it resolves to Unsat.
        let mut s2 = SatSolver::new(&cnf);
        assert_eq!(s2.solve(1_000_000), SatOutcome::Unsat);
        assert!(s2.stats().conflicts > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn incremental_feed_resolves_and_stays_unsat() {
        let mut s = SatSolver::empty();
        s.ensure_vars(3);
        s.push_clause(&[lit(0, true), lit(1, true)]);
        s.push_clause(&[lit(0, false), lit(2, true)]);
        assert!(matches!(s.solve(1_000), SatOutcome::Sat(_)));
        // Add more constraints after a solve and re-solve.
        s.ensure_vars(4);
        s.push_clause(&[lit(3, true)]);
        s.push_clause(&[lit(3, false), lit(1, false)]);
        assert!(matches!(s.solve(1_000), SatOutcome::Sat(_)));
        // Force a contradiction; unsat must stick across calls.
        s.push_clause(&[lit(0, false)]);
        s.push_clause(&[lit(0, true), lit(1, true)]);
        s.push_clause(&[lit(1, false)]);
        assert_eq!(s.solve(1_000), SatOutcome::Unsat);
        assert_eq!(s.solve(1_000), SatOutcome::Unsat);
    }

    #[test]
    fn incremental_matches_batch_on_random_instances() {
        let mut seed = 0x9e37_79b9_u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n_vars = 7usize;
            let n_clauses = 4 + (rand() % 24) as usize;
            let mut cnf = Cnf::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| cnf.new_var()).collect();
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..n_clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[(rand() % n_vars as u64) as usize];
                    c.push(Lit::new(v, rand() % 2 == 0));
                }
                clauses.push(c);
            }
            for c in &clauses {
                cnf.add_clause(c);
            }
            let batch = matches!(SatSolver::new(&cnf).solve(1_000_000), SatOutcome::Sat(_));
            // Feed the same clauses one at a time, solving between batches.
            let mut inc = SatSolver::empty();
            inc.ensure_vars(n_vars);
            for (i, c) in clauses.iter().enumerate() {
                inc.push_clause(c);
                if i % 3 == 0 {
                    let _ = inc.solve(1_000_000);
                }
            }
            let incr = matches!(inc.solve(1_000_000), SatOutcome::Sat(_));
            assert_eq!(batch, incr, "incremental disagrees with batch");
        }
    }

    #[test]
    fn cloned_solver_searches_independently() {
        let mut s = SatSolver::empty();
        s.ensure_vars(2);
        s.push_clause(&[lit(0, true), lit(1, true)]);
        assert!(matches!(s.solve(1_000), SatOutcome::Sat(_)));
        let mut scratch = s.clone();
        scratch.push_clause(&[lit(0, false)]);
        scratch.push_clause(&[lit(1, false)]);
        assert_eq!(scratch.solve(1_000), SatOutcome::Unsat);
        // The original is unaffected by the clone's extra clauses.
        assert!(matches!(s.solve(1_000), SatOutcome::Sat(_)));
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause(&[Lit::pos(a), Lit::neg(a)]); // tautology
        cnf.add_clause(&[Lit::neg(b)]);
        assert!(solve_for_tests(&cnf));
        let _ = lit(0, true);
    }
}
