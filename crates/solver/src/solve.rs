//! The solver façade: assertions in, model / unsat / stall out.

use crate::expr::{ExprPool, ExprRef, Sort, VarId};
use crate::inc::IncrementalSolver;
use crate::simplify;
use std::collections::HashMap;
use std::fmt;

/// Deterministic resource limits standing in for the paper's 30-second
/// wall-clock solver timeout (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum SAT conflicts.
    pub max_conflicts: u64,
    /// Maximum array cells instantiated during elimination.
    pub max_array_cells: u64,
    /// Maximum CNF clauses after bit-blasting.
    pub max_clauses: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_conflicts: 100_000,
            max_array_cells: 200_000,
            max_clauses: 4_000_000,
        }
    }
}

impl Budget {
    /// A small budget that stalls quickly — convenient for tests and for
    /// ER configurations targeting frequently reoccurring failures.
    pub fn small() -> Self {
        Budget {
            max_conflicts: 2_000,
            max_array_cells: 4_000,
            max_clauses: 400_000,
        }
    }
}

/// Why a check stalled (the analogue of a solver timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Array elimination exceeded the cell budget.
    ArrayCells {
        /// Cells instantiated when the budget tripped.
        cells: u64,
    },
    /// Bit-blasting produced too many clauses.
    Clauses {
        /// Clauses produced when the budget tripped.
        clauses: usize,
    },
    /// CDCL search exceeded the conflict budget.
    Conflicts {
        /// Conflicts reached.
        conflicts: u64,
    },
    /// Reported by solver clients (e.g. the symbolic executor) when a
    /// query's budget ran out while disambiguating a symbolic memory
    /// address — the access could not be proven unique nor confined to one
    /// object within the budget.
    AddressAmbiguity,
    /// A watchdog cancellation token ([`crate::cancel`]) tripped mid-query:
    /// the supervising scheduler cancelled this iteration's phase budget,
    /// not the solver's own.
    Cancelled,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallReason::ArrayCells { cells } => write!(f, "array budget ({cells} cells)"),
            StallReason::Clauses { clauses } => write!(f, "clause budget ({clauses} clauses)"),
            StallReason::Conflicts { conflicts } => {
                write!(f, "conflict budget ({conflicts} conflicts)")
            }
            StallReason::AddressAmbiguity => write!(f, "ambiguous symbolic address"),
            StallReason::Cancelled => write!(f, "cancelled by watchdog"),
        }
    }
}

/// A satisfying assignment for the original (pre-elimination) variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, u64>,
}

impl Model {
    /// The value assigned to variable `id` (variables absent from the final
    /// formula default to zero, which satisfies no remaining constraint).
    pub fn value(&self, id: VarId) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }

    /// Sets a variable's value (used by tests and by ER when seeding models
    /// from recorded data).
    pub fn set(&mut self, id: VarId, value: u64) {
        self.values.insert(id, value);
    }

    /// Evaluates `e` under this model (array reads resolve against declared
    /// initial contents and store chains).
    pub fn eval(&self, pool: &ExprPool, e: ExprRef) -> u64 {
        simplify::eval_concrete(pool, e, &|id| self.value(id))
    }

    /// Evaluates a boolean expression under this model.
    pub fn eval_bool(&self, pool: &ExprPool, e: ExprRef) -> bool {
        self.eval(pool, e) != 0
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Result of [`Solver::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum SatResult {
    /// Satisfiable.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver stalled before deciding.
    Unknown(StallReason),
}

/// Work counters for the last check — ER's offline-overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Array cells instantiated.
    pub array_cells: u64,
    /// Store nodes traversed.
    pub stores_traversed: u64,
    /// CNF variables.
    pub cnf_vars: u32,
    /// CNF clauses.
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT propagations.
    pub propagations: u64,
}

impl SolveStats {
    /// A single scalar "work" measure used as the deterministic time proxy.
    pub fn work_units(&self) -> u64 {
        self.array_cells + self.cnf_clauses as u64 + 10 * self.conflicts
    }
}

/// A solver façade over an [`ExprPool`].
///
/// Internally this is a thin wrapper around [`IncrementalSolver`]: repeated
/// `check`/`check_assuming` calls on one `Solver` reuse array-elimination
/// results, the Tseitin cache, the CNF clause database, and learned clauses
/// from earlier calls. The assertion vector is passed by reference — no
/// per-query cloning.
#[derive(Debug)]
pub struct Solver<'p> {
    pool: &'p mut ExprPool,
    assertions: Vec<ExprRef>,
    inc: IncrementalSolver,
}

impl<'p> Solver<'p> {
    /// A solver over `pool` with no assertions.
    pub fn new(pool: &'p mut ExprPool) -> Self {
        Solver {
            pool,
            assertions: Vec::new(),
            inc: IncrementalSolver::new(),
        }
    }

    /// Asserts boolean expression `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not boolean-sorted.
    pub fn assert(&mut self, e: ExprRef) {
        assert_eq!(self.pool.sort(e), Sort::Bool, "assertions must be boolean");
        self.assertions.push(e);
    }

    /// Current assertion count.
    pub fn assertion_count(&self) -> usize {
        self.assertions.len()
    }

    /// The pool (for building additional expressions between checks).
    pub fn pool_mut(&mut self) -> &mut ExprPool {
        self.pool
    }

    /// Checks the asserted formula under `budget`.
    pub fn check(&mut self, budget: &Budget) -> SatResult {
        if let Some(stall) = chaos_stall(budget) {
            return stall;
        }
        self.inc.check(self.pool, &self.assertions, budget)
    }

    /// Checks the asserted formula plus `assumptions` without retaining
    /// them.
    pub fn check_assuming(&mut self, assumptions: &[ExprRef], budget: &Budget) -> SatResult {
        if let Some(stall) = chaos_stall(budget) {
            return stall;
        }
        self.inc
            .check_assuming(self.pool, &self.assertions, assumptions, budget)
    }

    /// Work counters from the most recent check.
    pub fn last_stats(&self) -> SolveStats {
        self.inc.last_stats()
    }
}

/// Injected solver stall ([`er_chaos::Fault::SolverStall`]): models the
/// paper's 30-second wall-clock timeout tripping before the search decides.
/// Reported as an ordinary conflict-budget stall so every caller's existing
/// stall handling — key data value selection, retry on the next occurrence —
/// exercises unchanged; no caller can tell an injected stall from a real one.
fn chaos_stall(budget: &Budget) -> Option<SatResult> {
    if er_chaos::inject(er_chaos::Fault::SolverStall).is_some() {
        er_chaos::note_degraded(er_chaos::Domain::Solver);
        return Some(SatResult::Unknown(StallReason::Conflicts {
            conflicts: budget.max_conflicts,
        }));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BvOp, CmpKind};

    #[test]
    fn linear_equation() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 32);
        let three = pool.bv_const(3, 32);
        let five = pool.bv_const(5, 32);
        let hundred = pool.bv_const(100, 32);
        let t = pool.bin(BvOp::Mul, x, three);
        let t = pool.bin(BvOp::Add, t, five);
        let eq = pool.cmp(CmpKind::Eq, t, hundred);
        let mut s = Solver::new(&mut pool);
        s.assert(eq);
        let SatResult::Sat(m) = s.check(&Budget::default()) else {
            panic!("expected SAT");
        };
        // 3x + 5 == 100 has no integer solution... except modular: check it.
        let xv = m.value(VarId(0));
        assert_eq!(xv.wrapping_mul(3).wrapping_add(5) & 0xffff_ffff, 100);
    }

    #[test]
    fn unsat_detected() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let ten = pool.bv_const(10, 8);
        let lt = pool.cmp(CmpKind::Ult, x, ten);
        let ge = pool.cmp(CmpKind::Ule, ten, x);
        let mut s = Solver::new(&mut pool);
        s.assert(lt);
        s.assert(ge);
        assert_eq!(s.check(&Budget::default()), SatResult::Unsat);
    }

    #[test]
    fn trivially_true_needs_no_search() {
        let mut pool = ExprPool::new();
        let t = pool.bool_const(true);
        let mut s = Solver::new(&mut pool);
        s.assert(t);
        assert!(matches!(s.check(&Budget::default()), SatResult::Sat(_)));
        assert_eq!(s.last_stats().cnf_clauses, 0);
    }

    #[test]
    fn trivially_false_is_unsat() {
        let mut pool = ExprPool::new();
        let f = pool.bool_const(false);
        let mut s = Solver::new(&mut pool);
        s.assert(f);
        assert_eq!(s.check(&Budget::default()), SatResult::Unsat);
    }

    #[test]
    fn check_assuming_does_not_retain() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let one = pool.bv_const(1, 8);
        let two = pool.bv_const(2, 8);
        let is1 = pool.cmp(CmpKind::Eq, x, one);
        let is2 = pool.cmp(CmpKind::Eq, x, two);
        let mut s = Solver::new(&mut pool);
        s.assert(is1);
        assert_eq!(
            s.check_assuming(&[is2], &Budget::default()),
            SatResult::Unsat
        );
        // Without the assumption it is satisfiable again.
        assert!(matches!(s.check(&Budget::default()), SatResult::Sat(_)));
    }

    #[test]
    fn array_stall_reports_unknown() {
        let mut pool = ExprPool::new();
        let arr = pool.array("BIG", 1 << 20, 32, None);
        let i = pool.var("i", 64);
        let r = pool.read(arr, i);
        let zero = pool.bv_const(0, 32);
        let eq = pool.cmp(CmpKind::Eq, r, zero);
        let mut s = Solver::new(&mut pool);
        s.assert(eq);
        let res = s.check(&Budget::small());
        assert!(matches!(
            res,
            SatResult::Unknown(StallReason::ArrayCells { .. })
        ));
    }

    #[test]
    fn model_eval_handles_arrays() {
        let mut pool = ExprPool::new();
        let arr = pool.array("V", 4, 32, Some(vec![5, 6, 7, 8]));
        let i = pool.var("i", 64);
        let r = pool.read(arr, i);
        let seven = pool.bv_const(7, 32);
        let eq = pool.cmp(CmpKind::Eq, r, seven);
        let mut s = Solver::new(&mut pool);
        s.assert(eq);
        let SatResult::Sat(m) = s.check(&Budget::default()) else {
            panic!("SAT expected");
        };
        assert_eq!(m.value(VarId(0)), 2);
        assert!(m.eval_bool(&pool, eq));
    }

    #[test]
    fn paper_example_constraints() {
        // The Fig. 3 flavor: x = a + b, x < 256, V[x] = 1 then read back.
        let mut pool = ExprPool::new();
        let a = pool.var("a", 32);
        let b = pool.var("b", 32);
        let x = pool.bin(BvOp::Add, a, b);
        let lim = pool.bv_const(256, 32);
        let in_range = pool.cmp(CmpKind::Ult, x, lim);
        let arr = pool.array("V", 256, 32, None);
        let x64 = pool.zext(x, 64);
        let one = pool.bv_const(1, 32);
        let w = pool.write(arr, x64, one);
        let r = pool.read(w, x64);
        let r_is_1 = pool.cmp(CmpKind::Eq, r, one);
        let neg = pool.not(r_is_1);
        let mut s = Solver::new(&mut pool);
        s.assert(in_range);
        s.assert(neg);
        assert_eq!(s.check(&Budget::default()), SatResult::Unsat);
    }

    #[test]
    fn stats_accumulate() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 16);
        let y = pool.var("y", 16);
        let m = pool.bin(BvOp::Mul, x, y);
        let target = pool.bv_const(143, 16);
        let eq = pool.cmp(CmpKind::Eq, m, target);
        let two = pool.bv_const(2, 16);
        let x_big = pool.cmp(CmpKind::Ule, two, x);
        let y_big = pool.cmp(CmpKind::Ule, two, y);
        let mut s = Solver::new(&mut pool);
        s.assert(eq);
        s.assert(x_big);
        s.assert(y_big);
        let SatResult::Sat(model) = s.check(&Budget::default()) else {
            panic!("11 * 13 = 143 should be found");
        };
        let (xv, yv) = (model.value(VarId(0)), model.value(VarId(1)));
        assert_eq!(xv.wrapping_mul(yv) & 0xffff, 143);
        assert!(s.last_stats().cnf_clauses > 0);
        assert!(s.last_stats().work_units() > 0);
    }
}
