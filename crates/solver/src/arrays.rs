//! Array-theory elimination.
//!
//! `Read(Write(...), i)` chains become ITE chains (one comparison per
//! store), and reads of base arrays at symbolic indices become fresh
//! variables constrained by one axiom per array cell. Elimination work is
//! therefore proportional to **write-chain length × array size** — the two
//! constraint-complexity sources §3.3.1 of the paper identifies — and a
//! configurable cell budget turns excessive work into a reported *stall*
//! instead of an unbounded solve.

use crate::expr::{ArrayNode, ArrayRef, ExprPool, ExprRef, Node};
use std::collections::HashMap;
use std::fmt;

/// Elimination exceeded its cell budget: the solver stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayBudgetExceeded {
    /// Cells instantiated before giving up.
    pub cells: u64,
    /// The configured budget.
    pub budget: u64,
}

impl fmt::Display for ArrayBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "array elimination stalled: {} cells exceeds budget {}",
            self.cells, self.budget
        )
    }
}

impl std::error::Error for ArrayBudgetExceeded {}

/// Statistics from one elimination pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElimStats {
    /// Base-array cells instantiated as axioms.
    pub cells: u64,
    /// Store nodes traversed while expanding reads.
    pub stores_traversed: u64,
    /// Reads expanded symbolically.
    pub symbolic_reads: u64,
}

/// Rewrites `exprs` into array-free form, appending cell axioms.
///
/// # Errors
///
/// Returns [`ArrayBudgetExceeded`] when more than `max_cells` array cells
/// would need axioms — the deterministic analogue of a solver timeout.
pub fn eliminate(
    pool: &mut ExprPool,
    exprs: &[ExprRef],
    max_cells: u64,
) -> Result<(Vec<ExprRef>, ElimStats), ArrayBudgetExceeded> {
    let mut elim = Eliminator::new();
    let mut out = Vec::with_capacity(exprs.len());
    let mut axioms = Vec::new();
    for &e in exprs {
        out.push(elim.rewrite(pool, e, max_cells, &mut axioms)?);
    }
    out.extend(axioms);
    Ok((out, elim.stats()))
}

/// Persistent array-elimination state, reusable across queries.
///
/// Rewrite results and the fresh variables minted for base reads are cached
/// per [`ExprRef`] (the pool is hash-consed, so equal expressions share a
/// ref), which means a growing constraint prefix is only ever lowered once.
/// [`Eliminator::begin_scope`] / [`Eliminator::rollback_scope`] bracket
/// *assumption-only* lowering: anything learned inside the scope (including
/// the in-bounds axiom a base read emits, which is a real constraint on the
/// index) is undone so it cannot leak into later prefix-only queries.
#[derive(Debug, Default, Clone)]
pub struct Eliminator {
    cache: HashMap<ExprRef, ExprRef>,
    /// Fresh variable per (base array, rewritten index) pair.
    base_reads: HashMap<(u32, ExprRef), ExprRef>,
    stats: ElimStats,
    scope: Option<ElimScope>,
}

#[derive(Debug, Clone)]
struct ElimScope {
    cache_keys: Vec<ExprRef>,
    base_read_keys: Vec<(u32, ExprRef)>,
    stats_before: ElimStats,
}

impl Eliminator {
    /// Empty persistent state.
    pub fn new() -> Self {
        Eliminator::default()
    }

    /// Cumulative statistics over every committed rewrite.
    pub fn stats(&self) -> ElimStats {
        self.stats
    }

    /// Starts recording insertions for a later rollback or commit.
    ///
    /// # Panics
    ///
    /// Panics if a scope is already open (scopes do not nest).
    pub fn begin_scope(&mut self) {
        assert!(self.scope.is_none(), "elimination scopes do not nest");
        self.scope = Some(ElimScope {
            cache_keys: Vec::new(),
            base_read_keys: Vec::new(),
            stats_before: self.stats,
        });
    }

    /// Keeps everything added since [`Eliminator::begin_scope`].
    pub fn commit_scope(&mut self) {
        self.scope = None;
    }

    /// Undoes everything added since [`Eliminator::begin_scope`].
    pub fn rollback_scope(&mut self) {
        let scope = self.scope.take().expect("scope open");
        for k in scope.cache_keys {
            self.cache.remove(&k);
        }
        for k in scope.base_read_keys {
            self.base_reads.remove(&k);
        }
        self.stats = scope.stats_before;
    }

    /// Rewrites `e` into array-free form, appending any new axioms to
    /// `axioms`. Cached sub-results are reused; `max_cells` bounds the
    /// *cumulative* cells instantiated by this eliminator, which matches
    /// what a fresh whole-query elimination would count (the cache dedups
    /// identical reads exactly as a single pass would).
    ///
    /// # Errors
    ///
    /// Returns [`ArrayBudgetExceeded`] when the cumulative cell count
    /// crosses `max_cells`.
    pub fn rewrite(
        &mut self,
        pool: &mut ExprPool,
        e: ExprRef,
        max_cells: u64,
        axioms: &mut Vec<ExprRef>,
    ) -> Result<ExprRef, ArrayBudgetExceeded> {
        if let Some(&r) = self.cache.get(&e) {
            return Ok(r);
        }
        let node = pool.node(e).clone();
        let r = match node {
            Node::Const { .. } | Node::BoolConst(_) | Node::Var { .. } => e,
            Node::Bin { op, a, b } => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                let b = self.rewrite(pool, b, max_cells, axioms)?;
                pool.bin(op, a, b)
            }
            Node::Cmp { op, a, b } => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                let b = self.rewrite(pool, b, max_cells, axioms)?;
                pool.cmp(op, a, b)
            }
            Node::Not(a) => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                pool.not(a)
            }
            Node::AndB(a, b) => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                let b = self.rewrite(pool, b, max_cells, axioms)?;
                pool.and(a, b)
            }
            Node::OrB(a, b) => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                let b = self.rewrite(pool, b, max_cells, axioms)?;
                pool.or(a, b)
            }
            Node::Ite {
                cond,
                then_e,
                else_e,
            } => {
                let c = self.rewrite(pool, cond, max_cells, axioms)?;
                let t = self.rewrite(pool, then_e, max_cells, axioms)?;
                let el = self.rewrite(pool, else_e, max_cells, axioms)?;
                pool.ite(c, t, el)
            }
            Node::ZExt { a, bits } => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                pool.zext(a, bits)
            }
            Node::Trunc { a, bits } => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                pool.trunc(a, bits)
            }
            Node::BoolToBv { a, bits } => {
                let a = self.rewrite(pool, a, max_cells, axioms)?;
                pool.bool_to_bv(a, bits)
            }
            Node::Read { arr, index } => {
                let idx = self.rewrite(pool, index, max_cells, axioms)?;
                self.stats.symbolic_reads += 1;
                self.expand_read(pool, arr, idx, max_cells, axioms)?
            }
        };
        self.cache.insert(e, r);
        if let Some(scope) = &mut self.scope {
            scope.cache_keys.push(e);
        }
        Ok(r)
    }

    fn expand_read(
        &mut self,
        pool: &mut ExprPool,
        arr: ArrayRef,
        idx: ExprRef,
        max_cells: u64,
        axioms: &mut Vec<ExprRef>,
    ) -> Result<ExprRef, ArrayBudgetExceeded> {
        match pool.array_node(arr).clone() {
            ArrayNode::Store {
                arr: below,
                index: si,
                value,
            } => {
                self.stats.stores_traversed += 1;
                let si = self.rewrite(pool, si, max_cells, axioms)?;
                let value = self.rewrite(pool, value, max_cells, axioms)?;
                // Fast path: both indices concrete.
                if let (Some(a), Some(b)) = (pool.as_const(si), pool.as_const(idx)) {
                    return if a == b {
                        Ok(value)
                    } else {
                        self.expand_read(pool, below, idx, max_cells, axioms)
                    };
                }
                let cond = pool.cmp(crate::expr::CmpKind::Eq, idx, si);
                let under = self.expand_read(pool, below, idx, max_cells, axioms)?;
                Ok(pool.ite(cond, value, under))
            }
            ArrayNode::Base(id) => {
                let decl = pool.array_decl(id).clone();
                if let Some(k) = pool.as_const(idx) {
                    let v = decl
                        .init
                        .as_ref()
                        .map(|init| init.get(k as usize).copied().unwrap_or(0))
                        .unwrap_or(0);
                    return Ok(pool.bv_const(v, decl.elem_bits));
                }
                if let Some(&var) = self.base_reads.get(&(id, idx)) {
                    return Ok(var);
                }
                self.stats.cells += decl.len;
                if self.stats.cells > max_cells {
                    return Err(ArrayBudgetExceeded {
                        cells: self.stats.cells,
                        budget: max_cells,
                    });
                }
                let fresh = pool.var(format!("{}[{}]", decl.name, idx), decl.elem_bits);
                self.base_reads.insert((id, idx), fresh);
                if let Some(scope) = &mut self.scope {
                    scope.base_read_keys.push((id, idx));
                }
                // One axiom per cell: (idx == k) -> fresh == init[k].
                let idx_bits = pool.sort(idx).bits();
                for k in 0..decl.len {
                    let kv = pool.bv_const(k, idx_bits);
                    let hit = pool.cmp(crate::expr::CmpKind::Eq, idx, kv);
                    let nhit = pool.not(hit);
                    let v = decl
                        .init
                        .as_ref()
                        .map(|init| init.get(k as usize).copied().unwrap_or(0))
                        .unwrap_or(0);
                    let cv = pool.bv_const(v, decl.elem_bits);
                    let eqv = pool.cmp(crate::expr::CmpKind::Eq, fresh, cv);
                    let ax = pool.or(nhit, eqv);
                    axioms.push(ax);
                }
                // In-bounds axiom: the memory model faults on out-of-range
                // accesses, and the trace says this access did not fault.
                let len_v = pool.bv_const(decl.len, idx_bits);
                let inb = pool.cmp(crate::expr::CmpKind::Ult, idx, len_v);
                axioms.push(inb);
                Ok(fresh)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpKind;
    use crate::sat::{SatOutcome, SatSolver};

    fn check(pool: &mut ExprPool, exprs: &[ExprRef], max_cells: u64) -> SatOutcome {
        let (flat, _) = eliminate(pool, exprs, max_cells).unwrap();
        let mut bb = crate::bitblast::BitBlaster::new();
        for e in flat {
            bb.assert_true(pool, e).unwrap();
        }
        let (cnf, _) = bb.finish();
        SatSolver::new(&cnf).solve(1_000_000)
    }

    #[test]
    fn store_then_read_same_symbolic_index() {
        // V[i] = 7; V[i] == 7 must be valid (negation UNSAT).
        let mut p = ExprPool::new();
        let arr = p.array("V", 16, 32, None);
        let i = p.var("i", 64);
        let seven = p.bv_const(7, 32);
        let w = p.write(arr, i, seven);
        let r = p.read(w, i);
        let neq = p.ne(r, seven);
        assert_eq!(check(&mut p, &[neq], 1_000), SatOutcome::Unsat);
    }

    #[test]
    fn aliasing_reasoning() {
        // V[i] = 1; V[j] = 2; read V[i]. If i == j the read is 2.
        let mut p = ExprPool::new();
        let arr = p.array("V", 8, 32, None);
        let i = p.var("i", 64);
        let j = p.var("j", 64);
        let one = p.bv_const(1, 32);
        let two = p.bv_const(2, 32);
        let w1 = p.write(arr, i, one);
        let w2 = p.write(w1, j, two);
        let r = p.read(w2, i);
        let ieqj = p.cmp(CmpKind::Eq, i, j);
        let r_is_1 = p.cmp(CmpKind::Eq, r, one);
        // i == j AND V[i] == 1 is UNSAT (it must be 2).
        let both = p.and(ieqj, r_is_1);
        assert_eq!(check(&mut p, &[both], 1_000), SatOutcome::Unsat);
        // i != j AND V[i] == 1 is SAT.
        let mut p2 = ExprPool::new();
        let arr = p2.array("V", 8, 32, None);
        let i = p2.var("i", 64);
        let j = p2.var("j", 64);
        let one = p2.bv_const(1, 32);
        let two = p2.bv_const(2, 32);
        let w1 = p2.write(arr, i, one);
        let w2 = p2.write(w1, j, two);
        let r = p2.read(w2, i);
        let ineqj = p2.ne(i, j);
        let r_is_1 = p2.cmp(CmpKind::Eq, r, one);
        let both = p2.and(ineqj, r_is_1);
        assert!(matches!(check(&mut p2, &[both], 1_000), SatOutcome::Sat(_)));
    }

    #[test]
    fn base_init_contents_respected() {
        // V initialized to squares; read at symbolic i with V[i] == 9 forces
        // i == 3 (within bounds).
        let mut p = ExprPool::new();
        let init: Vec<u64> = (0..8).map(|k| k * k).collect();
        let arr = p.array("V", 8, 32, Some(init));
        let i = p.var("i", 64);
        let r = p.read(arr, i);
        let nine = p.bv_const(9, 32);
        let eq9 = p.cmp(CmpKind::Eq, r, nine);
        let three = p.bv_const(3, 64);
        let not3 = p.ne(i, three);
        assert_eq!(check(&mut p, &[eq9, not3], 1_000), SatOutcome::Unsat);
    }

    #[test]
    fn in_bounds_axiom_enforced() {
        let mut p = ExprPool::new();
        let arr = p.array("V", 8, 32, None);
        let i = p.var("i", 64);
        let r = p.read(arr, i);
        let zero = p.bv_const(0, 32);
        let eq = p.cmp(CmpKind::Eq, r, zero);
        let eight = p.bv_const(8, 64);
        let oob = p.cmp(CmpKind::Ule, eight, i);
        assert_eq!(check(&mut p, &[eq, oob], 1_000), SatOutcome::Unsat);
    }

    #[test]
    fn budget_exceeded_is_a_stall() {
        let mut p = ExprPool::new();
        let arr = p.array("BIG", 100_000, 32, None);
        let i = p.var("i", 64);
        let r = p.read(arr, i);
        let zero = p.bv_const(0, 32);
        let eq = p.cmp(CmpKind::Eq, r, zero);
        let err = eliminate(&mut p, &[eq], 1_000).unwrap_err();
        assert!(err.cells > 1_000);
        assert_eq!(err.budget, 1_000);
    }

    #[test]
    fn chain_cost_scales_with_length() {
        // Same array, growing symbolic write chains: stores_traversed grows.
        let mut costs = Vec::new();
        for n in [1usize, 4, 16] {
            let mut p = ExprPool::new();
            let mut arr = p.array("V", 8, 32, None);
            for k in 0..n {
                let i = p.var(format!("i{k}"), 64);
                let v = p.bv_const(k as u64, 32);
                arr = p.write(arr, i, v);
            }
            let j = p.var("j", 64);
            let r = p.read(arr, j);
            let zero = p.bv_const(0, 32);
            let eq = p.cmp(CmpKind::Eq, r, zero);
            let (_, stats) = eliminate(&mut p, &[eq], 10_000).unwrap();
            costs.push(stats.stores_traversed);
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
    }

    #[test]
    fn concrete_chain_costs_nothing() {
        let mut p = ExprPool::new();
        let arr = p.array("V", 256, 32, None);
        let i0 = p.bv_const(3, 64);
        let v0 = p.bv_const(77, 32);
        let w = p.write(arr, i0, v0);
        let r = p.read(w, i0); // folds in the pool already
        assert_eq!(p.as_const(r), Some(77));
        let c = p.bool_const(true);
        let (_, stats) = eliminate(&mut p, &[c], 10).unwrap();
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn shared_reads_reuse_the_same_fresh_var() {
        let mut p = ExprPool::new();
        let arr = p.array("V", 4, 32, None);
        let i = p.var("i", 64);
        let r1 = p.read(arr, i);
        let r2 = p.read(arr, i);
        assert_eq!(r1, r2, "hash consing");
        let diff = p.ne(r1, r2);
        // r1 != r2 is trivially UNSAT.
        assert_eq!(check(&mut p, &[diff], 100), SatOutcome::Unsat);
    }
}
