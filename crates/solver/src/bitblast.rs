//! Tseitin bit-blasting: pure bitvector expressions to CNF.
//!
//! Arrays must be eliminated first (see [`crate::arrays`]); encountering a
//! `Read` node here is an internal error surfaced as [`BlastError`].

use crate::cnf::{Cnf, CnfMark, Lit, Var};
use crate::expr::{BvOp, CmpKind, ExprPool, ExprRef, Node, VarId};
use std::collections::HashMap;
use std::fmt;

/// Bit-blasting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlastError {
    /// A `Read` node survived array elimination.
    UnexpectedRead(ExprRef),
}

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlastError::UnexpectedRead(e) => {
                write!(f, "array read {e} reached the bit-blaster")
            }
        }
    }
}

impl std::error::Error for BlastError {}

#[derive(Debug, Clone)]
enum Blasted {
    Bits(Vec<Lit>),
    Bool(Lit),
}

/// Converts expressions to CNF, caching shared subterms.
///
/// The blaster holds no pool borrow — each call takes the pool — so it can
/// persist across queries and keep its Tseitin cache warm. Gates and
/// variable encodings are definitional (they constrain nothing by
/// themselves), so cached entries stay sound as the formula grows.
/// [`BitBlaster::begin_scope`] / [`BitBlaster::rollback_scope`] bracket
/// assumption-only blasting so its clauses and cache entries can be undone.
#[derive(Debug, Default, Clone)]
pub struct BitBlaster {
    /// The CNF being built.
    pub cnf: Cnf,
    cache: HashMap<ExprRef, Blasted>,
    var_bits: HashMap<VarId, Vec<Var>>,
    scope: Option<BlastScope>,
}

#[derive(Debug, Clone)]
struct BlastScope {
    cache_keys: Vec<ExprRef>,
    var_keys: Vec<VarId>,
    cnf_mark: CnfMark,
}

impl BitBlaster {
    /// An empty blaster.
    pub fn new() -> Self {
        BitBlaster::default()
    }

    /// Asserts boolean expression `e` as a unit constraint.
    ///
    /// # Errors
    ///
    /// Returns [`BlastError`] if `e` contains array reads.
    pub fn assert_true(&mut self, pool: &ExprPool, e: ExprRef) -> Result<(), BlastError> {
        let l = self.blast_bool(pool, e)?;
        self.cnf.add_clause(&[l]);
        Ok(())
    }

    /// Finishes, returning the CNF and the expression-variable bit map used
    /// for model extraction.
    pub fn finish(self) -> (Cnf, HashMap<VarId, Vec<Var>>) {
        (self.cnf, self.var_bits)
    }

    /// The expression-variable bit map, without consuming the blaster.
    pub fn var_bits(&self) -> &HashMap<VarId, Vec<Var>> {
        &self.var_bits
    }

    /// Starts recording CNF growth and cache insertions for rollback.
    ///
    /// # Panics
    ///
    /// Panics if a scope is already open (scopes do not nest).
    pub fn begin_scope(&mut self) {
        assert!(self.scope.is_none(), "blast scopes do not nest");
        self.scope = Some(BlastScope {
            cache_keys: Vec::new(),
            var_keys: Vec::new(),
            cnf_mark: self.cnf.mark(),
        });
    }

    /// Keeps everything added since [`BitBlaster::begin_scope`].
    pub fn commit_scope(&mut self) {
        self.scope = None;
    }

    /// Undoes everything added since [`BitBlaster::begin_scope`].
    pub fn rollback_scope(&mut self) {
        let scope = self.scope.take().expect("scope open");
        for k in scope.cache_keys {
            self.cache.remove(&k);
        }
        for k in scope.var_keys {
            self.var_bits.remove(&k);
        }
        self.cnf.rollback(&scope.cnf_mark);
    }

    fn blast_bool(&mut self, pool: &ExprPool, e: ExprRef) -> Result<Lit, BlastError> {
        match self.blast(pool, e)? {
            Blasted::Bool(l) => Ok(l),
            Blasted::Bits(bits) => {
                // Nonzero test.
                let mut acc = self.cnf.false_lit();
                for b in bits {
                    acc = self.cnf.or_gate(acc, b);
                }
                Ok(acc)
            }
        }
    }

    fn blast_bits(&mut self, pool: &ExprPool, e: ExprRef) -> Result<Vec<Lit>, BlastError> {
        match self.blast(pool, e)? {
            Blasted::Bits(b) => Ok(b),
            Blasted::Bool(l) => Ok(vec![l]),
        }
    }

    fn blast(&mut self, pool: &ExprPool, e: ExprRef) -> Result<Blasted, BlastError> {
        if let Some(b) = self.cache.get(&e) {
            return Ok(b.clone());
        }
        let result = match pool.node(e).clone() {
            Node::Const { bits, value } => {
                let t = self.cnf.true_lit();
                let f = !t;
                Blasted::Bits(
                    (0..bits)
                        .map(|i| if value >> i & 1 == 1 { t } else { f })
                        .collect(),
                )
            }
            Node::BoolConst(b) => {
                let t = self.cnf.true_lit();
                Blasted::Bool(if b { t } else { !t })
            }
            Node::Var { id, bits } => {
                let vars: Vec<Var> = (0..bits).map(|_| self.cnf.new_var()).collect();
                self.var_bits.insert(id, vars.clone());
                if let Some(scope) = &mut self.scope {
                    scope.var_keys.push(id);
                }
                Blasted::Bits(vars.into_iter().map(Lit::pos).collect())
            }
            Node::Bin { op, a, b } => {
                let av = self.blast_bits(pool, a)?;
                let bv = self.blast_bits(pool, b)?;
                Blasted::Bits(self.bin_op(op, &av, &bv))
            }
            Node::Cmp { op, a, b } => {
                let av = self.blast_bits(pool, a)?;
                let bv = self.blast_bits(pool, b)?;
                Blasted::Bool(self.cmp_op(op, &av, &bv))
            }
            Node::Not(a) => {
                let l = self.blast_bool(pool, a)?;
                Blasted::Bool(!l)
            }
            Node::AndB(a, b) => {
                let la = self.blast_bool(pool, a)?;
                let lb = self.blast_bool(pool, b)?;
                Blasted::Bool(self.cnf.and_gate(la, lb))
            }
            Node::OrB(a, b) => {
                let la = self.blast_bool(pool, a)?;
                let lb = self.blast_bool(pool, b)?;
                Blasted::Bool(self.cnf.or_gate(la, lb))
            }
            Node::Ite {
                cond,
                then_e,
                else_e,
            } => {
                let c = self.blast_bool(pool, cond)?;
                let t = self.blast_bits(pool, then_e)?;
                let el = self.blast_bits(pool, else_e)?;
                Blasted::Bits(
                    t.iter()
                        .zip(&el)
                        .map(|(&ti, &ei)| self.cnf.ite_gate(c, ti, ei))
                        .collect(),
                )
            }
            Node::ZExt { a, bits } => {
                let mut v = self.blast_bits(pool, a)?;
                let f = self.cnf.false_lit();
                v.resize(bits as usize, f);
                Blasted::Bits(v)
            }
            Node::Trunc { a, bits } => {
                let v = self.blast_bits(pool, a)?;
                Blasted::Bits(v[..bits as usize].to_vec())
            }
            Node::BoolToBv { a, bits } => {
                let l = self.blast_bool(pool, a)?;
                let f = self.cnf.false_lit();
                let mut v = vec![f; bits as usize];
                v[0] = l;
                Blasted::Bits(v)
            }
            Node::Read { .. } => return Err(BlastError::UnexpectedRead(e)),
        };
        self.cache.insert(e, result.clone());
        if let Some(scope) = &mut self.scope {
            scope.cache_keys.push(e);
        }
        Ok(result)
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.cnf.full_adder(x, y, carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// Adder that also returns the final carry (for comparisons).
    fn adder_with_carry(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.cnf.full_adder(x, y, carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    fn bin_op(&mut self, op: BvOp, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        match op {
            BvOp::Add => {
                let f = self.cnf.false_lit();
                self.adder(a, b, f)
            }
            BvOp::Sub => {
                let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
                let t = self.cnf.true_lit();
                self.adder(a, &nb, t)
            }
            BvOp::Mul => {
                let f = self.cnf.false_lit();
                let mut acc = vec![f; w];
                for (i, &bi) in b.iter().enumerate() {
                    // partial = (a << i) & bi, added into acc.
                    let mut partial = vec![f; w];
                    for j in 0..w - i {
                        partial[i + j] = self.cnf.and_gate(a[j], bi);
                    }
                    acc = self.adder(&acc, &partial, f);
                }
                acc
            }
            BvOp::UDiv => self.divide(a, b).0,
            BvOp::URem => self.divide(a, b).1,
            BvOp::And => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.cnf.and_gate(x, y))
                .collect(),
            BvOp::Or => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.cnf.or_gate(x, y))
                .collect(),
            BvOp::Xor => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.cnf.xor_gate(x, y))
                .collect(),
            BvOp::Shl => self.shifter(a, b, ShiftKind::Left),
            BvOp::LShr => self.shifter(a, b, ShiftKind::LogicalRight),
            BvOp::AShr => self.shifter(a, b, ShiftKind::ArithRight),
        }
    }

    /// Restoring long division producing (quotient, remainder); matches
    /// SMT-LIB semantics for a zero divisor (quotient all-ones, remainder =
    /// dividend).
    fn divide(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let f = self.cnf.false_lit();
        // rem uses w+1 bits to absorb the shifted-in bit before compare.
        let mut rem: Vec<Lit> = vec![f; w + 1];
        let mut q = vec![f; w];
        let b_ext: Vec<Lit> = b.iter().copied().chain(std::iter::once(f)).collect();
        for i in (0..w).rev() {
            // rem = (rem << 1) | a[i]
            rem.rotate_right(1);
            rem[0] = a[i];
            // ge = rem >= b  (unsigned, w+1 bits): carry of rem + ~b + 1.
            let nb: Vec<Lit> = b_ext.iter().map(|&l| !l).collect();
            let t = self.cnf.true_lit();
            let (diff, carry) = self.adder_with_carry(&rem, &nb, t);
            let ge = carry; // carry-out 1 means rem >= b
            q[i] = ge;
            // rem = ge ? diff : rem
            rem = rem
                .iter()
                .zip(&diff)
                .map(|(&r, &d)| self.cnf.ite_gate(ge, d, r))
                .collect();
        }
        rem.truncate(w);
        (q, rem)
    }

    fn shifter(&mut self, a: &[Lit], b: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let stages = w.trailing_zeros() as usize; // w is a power of two
        let fill_base = match kind {
            ShiftKind::ArithRight => a[w - 1],
            _ => self.cnf.false_lit(),
        };
        let mut cur: Vec<Lit> = a.to_vec();
        for (stage, &sel) in b.iter().enumerate().take(stages) {
            let amount = 1usize << stage;
            let mut shifted = vec![fill_base; w];
            match kind {
                ShiftKind::Left => {
                    let f = self.cnf.false_lit();
                    for slot in shifted.iter_mut().take(amount.min(w)) {
                        *slot = f;
                    }
                    let n = w - amount.min(w);
                    shifted[amount.min(w)..].copy_from_slice(&cur[..n]);
                }
                ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                    let n = w.saturating_sub(amount);
                    shifted[..n].copy_from_slice(&cur[amount..amount + n]);
                }
            }
            cur = cur
                .iter()
                .zip(&shifted)
                .map(|(&c, &sh)| self.cnf.ite_gate(sel, sh, c))
                .collect();
        }
        cur
    }

    fn cmp_op(&mut self, op: CmpKind, a: &[Lit], b: &[Lit]) -> Lit {
        match op {
            CmpKind::Eq => {
                let mut acc = self.cnf.true_lit();
                for (&x, &y) in a.iter().zip(b) {
                    let eq = self.cnf.iff_gate(x, y);
                    acc = self.cnf.and_gate(acc, eq);
                }
                acc
            }
            CmpKind::Ult => self.ult(a, b),
            CmpKind::Ule => {
                let gt = self.ult(b, a);
                !gt
            }
            CmpKind::Slt => self.slt(a, b),
            CmpKind::Sle => {
                let gt = self.slt(b, a);
                !gt
            }
        }
    }

    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  iff  carry-out of a + ~b + 1 is 0.
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let t = self.cnf.true_lit();
        let (_, carry) = self.adder_with_carry(a, &nb, t);
        !carry
    }

    fn slt(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let w = a.len();
        let sa = a[w - 1];
        let sb = b[w - 1];
        let ult = self.ult(a, b);
        // signs differ: a < b iff sign(a)=1; signs equal: unsigned compare.
        let diff = self.cnf.xor_gate(sa, sb);
        self.cnf.ite_gate(diff, sa, ult)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatOutcome, SatSolver};

    /// Asserts `lhs op rhs == expected` is SAT and `!= expected` is UNSAT
    /// for concrete inputs pushed in as equality constraints on variables.
    fn check_bin(op: BvOp, bits: u32, x: u64, y: u64) {
        let mut pool = ExprPool::new();
        let a = pool.var("a", bits);
        let b = pool.var("b", bits);
        let r = pool.intern(Node::Bin { op, a, b });
        let xa = pool.bv_const(x, bits);
        let xb = pool.bv_const(y, bits);
        let expect = pool.bv_const(op.eval(bits, x, y), bits);
        let c1 = pool.cmp(CmpKind::Eq, a, xa);
        let c2 = pool.cmp(CmpKind::Eq, b, xb);
        let c3 = pool.cmp(CmpKind::Eq, r, expect);
        let mut bb = BitBlaster::new();
        bb.assert_true(&pool, c1).unwrap();
        bb.assert_true(&pool, c2).unwrap();
        bb.assert_true(&pool, c3).unwrap();
        let (cnf, _) = bb.finish();
        match SatSolver::new(&cnf).solve(1_000_000) {
            SatOutcome::Sat(m) => assert!(cnf.eval(&m)),
            other => panic!("{op:?}({x},{y})@{bits}: expected SAT, got {other:?}"),
        }
        // Negative check: forcing a different result must be UNSAT.
        let mut pool2 = ExprPool::new();
        let a2 = pool2.var("a", bits);
        let b2 = pool2.var("b", bits);
        let r2 = pool2.intern(Node::Bin { op, a: a2, b: b2 });
        let xa2 = pool2.bv_const(x, bits);
        let xb2 = pool2.bv_const(y, bits);
        let wrong = pool2.bv_const(op.eval(bits, x, y) ^ 1, bits);
        let c1 = pool2.cmp(CmpKind::Eq, a2, xa2);
        let c2 = pool2.cmp(CmpKind::Eq, b2, xb2);
        let c3 = pool2.cmp(CmpKind::Eq, r2, wrong);
        let mut bb = BitBlaster::new();
        bb.assert_true(&pool2, c1).unwrap();
        bb.assert_true(&pool2, c2).unwrap();
        bb.assert_true(&pool2, c3).unwrap();
        let (cnf, _) = bb.finish();
        assert_eq!(
            SatSolver::new(&cnf).solve(1_000_000),
            SatOutcome::Unsat,
            "{op:?}({x},{y})@{bits}: wrong result must be UNSAT"
        );
    }

    #[test]
    fn add_sub_mul_blast_correctly() {
        for &(x, y) in &[(0u64, 0u64), (1, 1), (200, 100), (255, 255), (37, 219)] {
            check_bin(BvOp::Add, 8, x, y);
            check_bin(BvOp::Sub, 8, x, y);
            check_bin(BvOp::Mul, 8, x, y);
        }
        check_bin(BvOp::Add, 32, 0xffff_ffff, 2);
        check_bin(BvOp::Mul, 16, 300, 300);
    }

    #[test]
    fn division_blasts_correctly_including_zero() {
        for &(x, y) in &[(100u64, 7u64), (7, 100), (0, 3), (255, 1), (13, 0), (0, 0)] {
            check_bin(BvOp::UDiv, 8, x, y);
            check_bin(BvOp::URem, 8, x, y);
        }
    }

    #[test]
    fn bitwise_and_shifts_blast_correctly() {
        for &(x, y) in &[(0b1100u64, 0b1010u64), (0xff, 0x0f), (5, 3), (128, 7)] {
            check_bin(BvOp::And, 8, x, y);
            check_bin(BvOp::Or, 8, x, y);
            check_bin(BvOp::Xor, 8, x, y);
            check_bin(BvOp::Shl, 8, x, y);
            check_bin(BvOp::LShr, 8, x, y);
            check_bin(BvOp::AShr, 8, x, y);
        }
        check_bin(BvOp::Shl, 8, 1, 9); // shift mod width
    }

    #[test]
    fn comparisons_blast_correctly() {
        let cases = [
            (3u64, 5u64),
            (5, 3),
            (5, 5),
            (0xff, 0),
            (0, 0xff),
            (0x80, 0x7f),
        ];
        for op in [
            CmpKind::Eq,
            CmpKind::Ult,
            CmpKind::Ule,
            CmpKind::Slt,
            CmpKind::Sle,
        ] {
            for &(x, y) in &cases {
                let mut pool = ExprPool::new();
                let a = pool.var("a", 8);
                let b = pool.var("b", 8);
                let c = pool.intern(Node::Cmp { op, a, b });
                let xa = pool.bv_const(x, 8);
                let xb = pool.bv_const(y, 8);
                let e1 = pool.cmp(CmpKind::Eq, a, xa);
                let e2 = pool.cmp(CmpKind::Eq, b, xb);
                let expected = op.eval(8, x, y);
                let goal = if expected { c } else { pool.not(c) };
                let mut bb = BitBlaster::new();
                bb.assert_true(&pool, e1).unwrap();
                bb.assert_true(&pool, e2).unwrap();
                bb.assert_true(&pool, goal).unwrap();
                let (cnf, _) = bb.finish();
                assert!(
                    matches!(SatSolver::new(&cnf).solve(100_000), SatOutcome::Sat(_)),
                    "{op:?}({x},{y}) should be {expected}"
                );
            }
        }
    }

    #[test]
    fn solve_for_variable() {
        // x + 7 == 50 at 32 bits has exactly x = 43.
        let mut pool = ExprPool::new();
        let x = pool.var("x", 32);
        let seven = pool.bv_const(7, 32);
        let fifty = pool.bv_const(50, 32);
        let sum = pool.bin(BvOp::Add, x, seven);
        let eq = pool.cmp(CmpKind::Eq, sum, fifty);
        let mut bb = BitBlaster::new();
        bb.assert_true(&pool, eq).unwrap();
        let (cnf, var_bits) = bb.finish();
        let SatOutcome::Sat(m) = SatSolver::new(&cnf).solve(100_000) else {
            panic!("SAT expected");
        };
        let bits = &var_bits[&VarId(0)];
        let val: u64 = bits
            .iter()
            .enumerate()
            .map(|(i, v)| u64::from(m[v.0 as usize]) << i)
            .sum();
        assert_eq!(val, 43);
    }

    #[test]
    fn read_nodes_are_rejected() {
        let mut pool = ExprPool::new();
        let arr = pool.array("A", 4, 32, None);
        let i = pool.var("i", 64);
        let r = pool.read(arr, i);
        let zero = pool.bv_const(0, 32);
        let c = pool.cmp(CmpKind::Eq, r, zero);
        let mut bb = BitBlaster::new();
        assert!(matches!(
            bb.assert_true(&pool, c),
            Err(BlastError::UnexpectedRead(_))
        ));
    }

    #[test]
    fn zext_trunc_booltobv() {
        let mut pool = ExprPool::new();
        let x = pool.var("x", 8);
        let z = pool.zext(x, 16);
        let big = pool.bv_const(0x00ff, 16);
        let le = pool.cmp(CmpKind::Ule, z, big);
        // zext(x,16) <= 0xff for all x: negation must be UNSAT.
        let neg = pool.not(le);
        let mut bb = BitBlaster::new();
        bb.assert_true(&pool, neg).unwrap();
        let (cnf, _) = bb.finish();
        assert_eq!(SatSolver::new(&cnf).solve(100_000), SatOutcome::Unsat);
    }
}
